//! Root facade for the repository; see the `modelardb` crate.
pub use modelardb::*;

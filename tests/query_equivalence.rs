//! Property-based equivalence of the two query interfaces (Section 6): for
//! any aggregate over any tid subset and time range, executing on *models*
//! via the Segment View must agree with executing on *reconstructed points*
//! via the Data Point View — that is the paper's licence to answer OLAP
//! queries from segments in constant time per segment.

use proptest::prelude::*;

use mdb_bench::{build_engine, ingest_engine};
use mdb_datagen::{ep, Scale};
use modelardb::ModelarDb;

const TICKS: u64 = 300;

fn database() -> ModelarDb {
    // One shared instance per test run would race proptest's shrinking, so
    // build fresh per case — the scale is tiny.
    let ds = ep(7, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, TICKS);
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aggregates_agree_between_views(
        func_idx in 0usize..5,
        tids in proptest::collection::btree_set(1u32..=6, 1..4),
        window in 0u64..250,
        span in 10u64..200,
    ) {
        let db = database();
        let ds = ep(7, Scale::tiny()).unwrap();
        let func = ["COUNT", "MIN", "MAX", "SUM", "AVG"][func_idx];
        let tid_list = tids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let from = ds.timestamp(window);
        let to = ds.timestamp((window + span).min(TICKS - 1));
        let sv = db
            .sql(&format!(
                "SELECT {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) AND TS >= {from} AND TS <= {to}"
            ))
            .unwrap();
        let dpv = db
            .sql(&format!(
                "SELECT {func}(Value) FROM DataPoint WHERE Tid IN ({tid_list}) AND TS >= {from} AND TS <= {to}"
            ))
            .unwrap();
        prop_assert_eq!(sv.rows.len(), dpv.rows.len());
        if sv.rows.is_empty() {
            return Ok(());
        }
        match (sv.rows[0][0].as_f64(), dpv.rows[0][0].as_f64()) {
            (Some(a), Some(b)) => {
                // The Segment View may use closed-form sums over the ideal
                // model line; tolerance covers the f32 reconstruction delta.
                prop_assert!(
                    (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                    "{} over {:?}: segment {} vs data point {}", func, tids, a, b
                );
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn group_by_tid_partitions_the_global_aggregate(
        window in 0u64..200,
        span in 20u64..250,
    ) {
        let db = database();
        let ds = ep(7, Scale::tiny()).unwrap();
        let from = ds.timestamp(window);
        let to = ds.timestamp((window + span).min(TICKS - 1));
        let total = db
            .sql(&format!("SELECT SUM_S(*) FROM Segment WHERE TS >= {from} AND TS <= {to}"))
            .unwrap();
        let per_tid = db
            .sql(&format!(
                "SELECT Tid, SUM_S(*) FROM Segment WHERE TS >= {from} AND TS <= {to} GROUP BY Tid"
            ))
            .unwrap();
        let total = total.rows.first().and_then(|r| r[0].as_f64()).unwrap_or(0.0);
        let sum: f64 = per_tid.rows.iter().filter_map(|r| r[1].as_f64()).sum();
        prop_assert!((sum - total).abs() <= 1e-6 * total.abs().max(1.0), "{sum} vs {total}");
    }

    #[test]
    fn count_matches_point_listing(
        tid in 1u32..=6,
        window in 0u64..250,
        span in 1u64..100,
    ) {
        let db = database();
        let ds = ep(7, Scale::tiny()).unwrap();
        let from = ds.timestamp(window);
        let to = ds.timestamp((window + span).min(TICKS - 1));
        let count = db
            .sql(&format!("SELECT COUNT_S(*) FROM Segment WHERE Tid = {tid} AND TS >= {from} AND TS <= {to}"))
            .unwrap();
        let listing = db
            .sql(&format!("SELECT TS FROM DataPoint WHERE Tid = {tid} AND TS >= {from} AND TS <= {to}"))
            .unwrap();
        let count = count.rows.first().and_then(|r| r[0].as_i64()).unwrap_or(0);
        prop_assert_eq!(count as usize, listing.rows.len());
    }
}

//! Property-based equivalence of the two query interfaces (Section 6): for
//! any aggregate over any tid subset and time range, executing on *models*
//! via the Segment View must agree with executing on *reconstructed points*
//! via the Data Point View — that is the paper's licence to answer OLAP
//! queries from segments in constant time per segment.

use proptest::prelude::*;

use mdb_bench::{build_engine, ingest_engine};
use mdb_datagen::{ep, Scale};
use modelardb::{DimensionSchema, ErrorBound, ModelarDb, ModelarDbBuilder, SeriesSpec};

const TICKS: u64 = 300;

fn database() -> ModelarDb {
    // One shared instance per test run would race proptest's shrinking, so
    // build fresh per case — the scale is tiny.
    let ds = ep(7, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, TICKS);
    db
}

/// Two engines over byte-identical segments: the plain sequential scan
/// (pruning off, one worker) and the pruned-parallel path (zone-map pruning
/// on, four scan workers). The ingest pattern mixes per-series gaps,
/// whole-group gap ticks, and a decorrelation phase noisy enough to force
/// dynamic split and join episodes (asserted below).
fn sequential_and_parallel() -> (ModelarDb, ModelarDb) {
    let build = |parallelism: usize, pruning: bool| {
        let mut b = ModelarDbBuilder::new();
        b.config_mut().compression.error_bound = ErrorBound::absolute(0.5);
        b.config_mut().compression.split_fraction = 2.0;
        b.config_mut().query_parallelism = parallelism;
        b.config_mut().zone_pruning = pruning;
        b.add_dimension(
            DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()])
                .unwrap(),
        )
        .add_series(SeriesSpec::new("a", 100).with_members("Location", &["Aalborg", "1"]))
        .add_series(SeriesSpec::new("b", 100).with_members("Location", &["Aalborg", "2"]))
        .correlate("Location 1");
        b.build().unwrap()
    };
    let mut sequential = build(1, false);
    let mut parallel = build(4, true);
    let mut x = 99u32;
    for t in 0..SJ_TICKS {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let noise = (x >> 16) as f32 / 65536.0;
        // Correlated → series b decorrelates wildly (split) → correlated
        // again (join), with per-series gaps and whole-group gap ticks.
        let row = if (150..320).contains(&t) {
            [Some(5.0 + noise * 0.2), Some(500.0 + noise * 120.0)]
        } else if t % 97 == 13 {
            [None, None]
        } else {
            [(t % 37 != 0).then_some(5.0), Some(5.1)]
        };
        sequential.ingest_row(t * 100, &row).unwrap();
        parallel.ingest_row(t * 100, &row).unwrap();
    }
    sequential.flush().unwrap();
    parallel.flush().unwrap();
    let stats = sequential.stats();
    assert!(stats.splits >= 1, "fixture must exercise dynamic splits");
    assert!(stats.joins >= 1, "fixture must exercise dynamic joins");
    assert_eq!(
        sequential.segments().unwrap(),
        parallel.segments().unwrap(),
        "both engines must hold byte-identical segments"
    );
    (sequential, parallel)
}

/// Ticks ingested by [`sequential_and_parallel`] (timestamps `t * 100`).
const SJ_TICKS: i64 = 900;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aggregates_agree_between_views(
        func_idx in 0usize..5,
        tids in proptest::collection::btree_set(1u32..=6, 1..4),
        window in 0u64..250,
        span in 10u64..200,
    ) {
        let db = database();
        let ds = ep(7, Scale::tiny()).unwrap();
        let func = ["COUNT", "MIN", "MAX", "SUM", "AVG"][func_idx];
        let tid_list = tids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let from = ds.timestamp(window);
        let to = ds.timestamp((window + span).min(TICKS - 1));
        let sv = db
            .sql(&format!(
                "SELECT {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) AND TS >= {from} AND TS <= {to}"
            ))
            .unwrap();
        let dpv = db
            .sql(&format!(
                "SELECT {func}(Value) FROM DataPoint WHERE Tid IN ({tid_list}) AND TS >= {from} AND TS <= {to}"
            ))
            .unwrap();
        prop_assert_eq!(sv.rows.len(), dpv.rows.len());
        if sv.rows.is_empty() {
            return Ok(());
        }
        match (sv.rows[0][0].as_f64(), dpv.rows[0][0].as_f64()) {
            (Some(a), Some(b)) => {
                // The Segment View may use closed-form sums over the ideal
                // model line; tolerance covers the f32 reconstruction delta.
                prop_assert!(
                    (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                    "{} over {:?}: segment {} vs data point {}", func, tids, a, b
                );
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn group_by_tid_partitions_the_global_aggregate(
        window in 0u64..200,
        span in 20u64..250,
    ) {
        let db = database();
        let ds = ep(7, Scale::tiny()).unwrap();
        let from = ds.timestamp(window);
        let to = ds.timestamp((window + span).min(TICKS - 1));
        let total = db
            .sql(&format!("SELECT SUM_S(*) FROM Segment WHERE TS >= {from} AND TS <= {to}"))
            .unwrap();
        let per_tid = db
            .sql(&format!(
                "SELECT Tid, SUM_S(*) FROM Segment WHERE TS >= {from} AND TS <= {to} GROUP BY Tid"
            ))
            .unwrap();
        let total = total.rows.first().and_then(|r| r[0].as_f64()).unwrap_or(0.0);
        let sum: f64 = per_tid.rows.iter().filter_map(|r| r[1].as_f64()).sum();
        prop_assert!((sum - total).abs() <= 1e-6 * total.abs().max(1.0), "{sum} vs {total}");
    }

    #[test]
    fn pruned_parallel_aggregates_are_bit_identical(
        func_idx in 0usize..5,
        tids in proptest::collection::btree_set(1u32..=2, 1..3),
        window in 0i64..850,
        span in 1i64..600,
        group_by_tid in proptest::bool::ANY,
    ) {
        let (sequential, parallel) = sequential_and_parallel();
        let func = ["COUNT", "MIN", "MAX", "SUM", "AVG"][func_idx];
        let tid_list = tids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let from = window * 100;
        let to = (window + span).min(SJ_TICKS - 1) * 100;
        let sql = if group_by_tid {
            format!(
                "SELECT Tid, {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to} GROUP BY Tid ORDER BY Tid"
            )
        } else {
            format!(
                "SELECT {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to}"
            )
        };
        let a = sequential.sql(&sql).unwrap();
        let b = parallel.sql(&sql).unwrap();
        // Bit-identical, not approximately equal: the pruned-parallel path
        // folds fixed segment groups in scan order, so it performs exactly
        // the same float operations as the sequential scan.
        prop_assert_eq!(a.columns, b.columns);
        prop_assert_eq!(a.rows, b.rows, "{}", sql);
    }

    #[test]
    fn pruned_parallel_value_filters_are_bit_identical(
        bound in -20.0f64..520.0,
        ge in proptest::bool::ANY,
        window in 0i64..850,
    ) {
        let (sequential, parallel) = sequential_and_parallel();
        let from = window * 100;
        let op = if ge { ">=" } else { "<" };
        let sql = format!(
            "SELECT Tid, SUM_S(*), COUNT_S(*) FROM Segment WHERE Value {op} {bound:.3} \
             AND TS >= {from} GROUP BY Tid ORDER BY Tid"
        );
        let a = sequential.sql(&sql).unwrap();
        let b = parallel.sql(&sql).unwrap();
        prop_assert_eq!(a.rows, b.rows, "{}", sql);
    }

    #[test]
    fn count_matches_point_listing(
        tid in 1u32..=6,
        window in 0u64..250,
        span in 1u64..100,
    ) {
        let db = database();
        let ds = ep(7, Scale::tiny()).unwrap();
        let from = ds.timestamp(window);
        let to = ds.timestamp((window + span).min(TICKS - 1));
        let count = db
            .sql(&format!("SELECT COUNT_S(*) FROM Segment WHERE Tid = {tid} AND TS >= {from} AND TS <= {to}"))
            .unwrap();
        let listing = db
            .sql(&format!("SELECT TS FROM DataPoint WHERE Tid = {tid} AND TS >= {from} AND TS <= {to}"))
            .unwrap();
        let count = count.rows.first().and_then(|r| r[0].as_i64()).unwrap_or(0);
        prop_assert_eq!(count as usize, listing.rows.len());
    }
}

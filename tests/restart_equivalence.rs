//! Restart equivalence: `ModelarDb::reopen` over a flushed disk directory
//! must be indistinguishable from the engine that wrote it — identical
//! segment sequence, identical zone map, and bit-identical SQL results —
//! whether the reopen goes through the sidecar index or (sidecar deleted)
//! through the streaming log rebuild.

use std::sync::Arc;

use mdb_testutil::TempDir;

use modelardb::{
    Config, DimensionSchema, ErrorBound, ModelRegistry, ModelarDb, ModelarDbBuilder, SeriesSpec,
    StorageSpec,
};

const TICKS: i64 = 900;
const BULK_WRITE: usize = 32;

const QUERIES: [&str; 6] = [
    "SELECT COUNT_S(*) FROM Segment",
    "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
    "SELECT Tid, AVG_S(*) FROM Segment WHERE TS >= 20000 AND TS <= 70000 GROUP BY Tid ORDER BY Tid",
    "SELECT Tid, SUM_S(*), COUNT_S(*) FROM Segment WHERE Value >= 5.05 GROUP BY Tid ORDER BY Tid",
    "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment GROUP BY Tid ORDER BY Tid",
    "SELECT Tid, TS, Value FROM DataPoint WHERE TS >= 30000 AND TS <= 42000",
];

/// A scoped case directory, removed on drop — on failure too, so a broken
/// run never poisons the next (see `mdb_testutil::TempDir`).
fn dir_for(tag: &str) -> TempDir {
    TempDir::new(&format!("restart-{tag}"))
}

fn config(dir: &std::path::Path) -> Config {
    let mut config = Config::default();
    config.compression.error_bound = ErrorBound::absolute(0.5);
    config.compression.split_fraction = 2.0;
    config.bulk_write_size = BULK_WRITE;
    config.storage = StorageSpec::Disk(dir.to_path_buf());
    config
}

/// A disk-backed engine over two correlated series, ingested with per-series
/// gaps, whole-group gap ticks, and a decorrelation episode that forces
/// dynamic split and join (the same pattern the query-equivalence suite
/// uses), flushed so everything is durable.
fn populated_engine(dir: &std::path::Path) -> ModelarDb {
    let mut b = ModelarDbBuilder::new();
    *b.config_mut() = config(dir);
    b.add_dimension(
        DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()]).unwrap(),
    )
    .add_series(SeriesSpec::new("a", 100).with_members("Location", &["Aalborg", "1"]))
    .add_series(SeriesSpec::new("b", 100).with_members("Location", &["Aalborg", "2"]))
    .correlate("Location 1");
    let mut db = b.build().unwrap();
    let mut x = 99u32;
    for t in 0..TICKS {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let noise = (x >> 16) as f32 / 65536.0;
        let row = if (150..320).contains(&t) {
            [Some(5.0 + noise * 0.2), Some(500.0 + noise * 120.0)]
        } else if t % 97 == 13 {
            [None, None]
        } else {
            [(t % 37 != 0).then_some(5.0), Some(5.1)]
        };
        db.ingest_row(t * 100, &row).unwrap();
    }
    db.flush().unwrap();
    let stats = db.stats();
    assert!(stats.splits >= 1, "fixture must exercise dynamic splits");
    assert!(stats.joins >= 1, "fixture must exercise dynamic joins");
    db
}

fn assert_equivalent(before: &ModelarDb, after: &ModelarDb, label: &str) {
    assert_eq!(
        before.segments().unwrap(),
        after.segments().unwrap(),
        "{label}: segment sequence"
    );
    assert_eq!(
        before.zones().unwrap(),
        after.zones().unwrap(),
        "{label}: zone map"
    );
    for q in QUERIES {
        let a = before.sql(q).unwrap();
        let b = after.sql(q).unwrap();
        assert_eq!(a.columns, b.columns, "{label}: {q}");
        assert_eq!(a.rows, b.rows, "{label}: {q}");
    }
}

#[test]
fn reopen_with_sidecar_is_equivalent() {
    let case = dir_for("with-sidecar");
    let dir = case.path();
    let before = populated_engine(dir);
    assert!(dir.join("segments.idx").exists(), "flush wrote the sidecar");
    let after = ModelarDb::reopen(dir, Arc::new(ModelRegistry::standard()), config(dir)).unwrap();
    assert_equivalent(&before, &after, "sidecar reopen");
}

#[test]
fn reopen_without_sidecar_is_equivalent() {
    let case = dir_for("without-sidecar");
    let dir = case.path();
    let before = populated_engine(dir);
    std::fs::remove_file(dir.join("segments.idx")).unwrap();
    let after = ModelarDb::reopen(dir, Arc::new(ModelRegistry::standard()), config(dir)).unwrap();
    assert_equivalent(&before, &after, "log-rebuild reopen");
    assert!(
        dir.join("segments.idx").exists(),
        "the rebuild rewrote the sidecar"
    );
}

#[test]
fn reopen_chain_stays_equivalent_under_a_bounded_cache() {
    // reopen → reopen again with a tiny block-cache budget: the second
    // engine re-reads blocks on demand yet answers identically.
    let case = dir_for("chain");
    let dir = case.path();
    let before = populated_engine(dir);
    let registry = Arc::new(ModelRegistry::standard());
    let middle = ModelarDb::reopen(dir, Arc::clone(&registry), config(dir)).unwrap();
    assert_equivalent(&before, &middle, "first reopen");
    drop(middle);
    let mut bounded = config(dir);
    bounded.memory_budget_bytes = Some(0);
    let after = ModelarDb::reopen(dir, registry, bounded).unwrap();
    assert_equivalent(&before, &after, "bounded reopen");
    assert_eq!(
        after.resident_segments(),
        0,
        "budget 0 keeps nothing parked"
    );
}

//! Integration: the networked front-end under concurrent clients.
//!
//! * Many writers (each owning disjoint groups) and many readers drive one
//!   server; the final query results are **bit-identical** to an in-process
//!   run of the same deployment — over the embedded engine and the cluster.
//! * A protocol damage matrix: truncated, oversized, garbage, and
//!   zero-length frames each produce a typed error frame (and close the
//!   connection only when the framing itself is broken) — never a panic, a
//!   hang, or a silent drop.

use std::net::TcpStream;
use std::sync::Arc;

use mdb_bench::{build_engine, catalog_from_dataset, ingest_engine_batched};
use mdb_server::protocol::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use mdb_server::ErrorCode;
use modelardb::{
    Client, Cluster, CompressionConfig, ErrorBound, MdbError, ModelRegistry, RowBatch, Server,
    ServerOptions, SharedDatastore,
};

const TICKS: u64 = 600;
const WRITERS: usize = 6;
const READERS: usize = 6;
const BATCH: u64 = 64;

fn queries() -> Vec<String> {
    vec![
        "SELECT COUNT_S(*) FROM Segment".into(),
        "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid".into(),
        "SELECT Type, AVG_S(*) FROM Segment GROUP BY Type ORDER BY Type".into(),
        "SELECT Entity, MIN_S(*), MAX_S(*) FROM Segment GROUP BY Entity ORDER BY Entity".into(),
        "SELECT Tid, CUBE_SUM_DAY(*) FROM Segment WHERE Tid IN (1,2,5) GROUP BY Tid".into(),
        "SELECT SUM(Value) FROM DataPoint WHERE Tid = 3".into(),
    ]
}

/// Writes `ds`'s ticks through `writers` concurrent connections, each owning
/// a disjoint set of groups and sending full-width batches (None for every
/// unowned column). Whole-group-missing rows are skipped as gaps, so the
/// per-group segment streams are independent of the interleaving.
fn concurrent_ingest(addr: std::net::SocketAddr, ds: &Arc<mdb_datagen::Dataset>) {
    let catalog = catalog_from_dataset(ds, &ds.correlation_spec()).unwrap();
    let n_series = ds.n_series();
    // Column index of each tid in catalog order (tids are 1-based here).
    let column_of = |tid: modelardb::Tid| {
        catalog
            .series
            .iter()
            .position(|m| m.tid == tid)
            .expect("tid in catalog")
    };
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let ds = Arc::clone(ds);
            let owned: Vec<usize> = catalog
                .groups
                .iter()
                .enumerate()
                .filter(|(i, _)| i % WRITERS == writer)
                .flat_map(|(_, g)| g.tids.iter().map(|&t| column_of(t)).collect::<Vec<_>>())
                .collect();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("writer connect");
                let mut tick = 0u64;
                while tick < TICKS {
                    let len = BATCH.min(TICKS - tick);
                    let mut batch = RowBatch::with_capacity(n_series, len as usize);
                    for t in tick..tick + len {
                        let full = ds.row(t);
                        let row: Vec<Option<f32>> = (0..n_series)
                            .map(|col| {
                                if owned.contains(&col) {
                                    full[col]
                                } else {
                                    None
                                }
                            })
                            .collect();
                        batch.push_row(ds.timestamp(t), &row);
                    }
                    client.ingest_batch(&batch).expect("ingest over wire");
                    tick += len;
                }
                client.close().expect("writer close");
            });
        }
    });
}

/// Runs a query panel through `READERS` concurrent connections and checks
/// every result for exact (bit-identical) equality with `expected`.
fn concurrent_read_and_compare_panel(
    addr: std::net::SocketAddr,
    panel: &[String],
    expected: &[modelardb::QueryResult],
) {
    std::thread::scope(|scope| {
        for reader in 0..READERS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                for (q, want) in panel.iter().zip(expected) {
                    let got = client.sql(q).expect("remote query");
                    assert_eq!(&got, want, "reader {reader}: {q}");
                }
                client.close().expect("reader close");
            });
        }
    });
}

/// [`concurrent_read_and_compare_panel`] over the default [`queries`] panel.
fn concurrent_read_and_compare(addr: std::net::SocketAddr, expected: &[modelardb::QueryResult]) {
    concurrent_read_and_compare_panel(addr, &queries(), expected);
}

#[test]
fn engine_over_wire_is_bit_identical_to_in_process() {
    let ds = Arc::new(mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap());

    // In-process reference: same engine configuration, same data.
    let mut reference = build_engine(&ds, true, 5.0);
    ingest_engine_batched(&mut reference, &ds, TICKS, BATCH);
    let expected: Vec<_> = queries()
        .iter()
        .map(|q| reference.sql(q).unwrap())
        .collect();

    let datastore = SharedDatastore::new(build_engine(&ds, true, 5.0));
    let server = Server::start(datastore.clone(), ServerOptions::default()).unwrap();
    let addr = server.local_addr();

    concurrent_ingest(addr, &ds);
    // One global flush after every writer finished (flushing mid-stream
    // would cut other writers' open segments early).
    Client::connect(addr).unwrap().flush().unwrap();
    concurrent_read_and_compare(addr, &expected);

    let mut probe = Client::connect(addr).unwrap();
    let health = probe.health().unwrap();
    assert_eq!(health.backend, "engine");
    assert!(!health.degraded);
    probe.close().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn cluster_over_wire_is_bit_identical_to_in_process() {
    let ds = Arc::new(mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap());
    let compression = CompressionConfig {
        error_bound: ErrorBound::relative(5.0),
        ..Default::default()
    };

    // In-process reference cluster, ingested serially with full rows.
    let reference = Cluster::start(
        catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap(),
        Arc::new(ModelRegistry::standard()),
        compression.clone(),
        3,
    )
    .unwrap();
    for tick in 0..TICKS {
        reference
            .ingest_row(ds.timestamp(tick), &ds.row(tick))
            .unwrap();
    }
    reference.flush().unwrap();
    let expected: Vec<_> = queries()
        .iter()
        .map(|q| reference.sql(q).unwrap())
        .collect();

    let served = Cluster::start(
        catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap(),
        Arc::new(ModelRegistry::standard()),
        compression,
        3,
    )
    .unwrap();
    let server = Server::start(SharedDatastore::new(served), ServerOptions::default()).unwrap();
    let addr = server.local_addr();

    concurrent_ingest(addr, &ds);
    Client::connect(addr).unwrap().flush().unwrap();
    concurrent_read_and_compare(addr, &expected);

    let mut probe = Client::connect(addr).unwrap();
    assert_eq!(probe.health().unwrap().backend, "cluster");
    probe.close().unwrap();
    server.shutdown().unwrap();
    reference.shutdown().unwrap();
}

/// The rollup-servable panel: CUBE aggregates at materialized levels and
/// whole-bucket time-ranged plain aggregates — the queries the engine
/// answers from its continuous-aggregate cells instead of segment scans.
fn rollup_queries(ds: &mdb_datagen::Dataset) -> Vec<String> {
    const HOUR_MS: i64 = 3_600_000;
    vec![
        "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment GROUP BY Tid ORDER BY Tid".into(),
        "SELECT Entity, CUBE_AVG_DAY(*) FROM Segment GROUP BY Entity ORDER BY Entity".into(),
        "SELECT CUBE_MIN_HOUR(*), CUBE_MAX_HOUR(*) FROM Segment".into(),
        format!(
            "SELECT SUM_S(*), COUNT_S(*) FROM Segment WHERE TS >= {} AND TS <= {}",
            ds.start + HOUR_MS,
            ds.start + 4 * HOUR_MS - 1
        ),
        "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid".into(),
    ]
}

#[test]
fn rollup_served_queries_over_wire_match_in_process_scans() {
    let ds = Arc::new(mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap());
    let panel = rollup_queries(&ds);

    // In-process reference, ingested over its normal path. The served
    // results must be bit-identical to the same engine's full scans —
    // the continuous-aggregate contract — before they become the wire
    // expectation.
    let mut reference = build_engine(&ds, true, 5.0);
    ingest_engine_batched(&mut reference, &ds, TICKS, BATCH);
    let expected: Vec<_> = panel.iter().map(|q| reference.sql(q).unwrap()).collect();
    reference.set_rollup_serve(false);
    for (q, want) in panel.iter().zip(&expected) {
        let scanned = reference.sql(q).unwrap();
        assert_eq!(&scanned, want, "serve/scan divergence in-process: {q}");
    }

    // Engine behind the server: concurrent wire ingest, concurrent wire
    // reads, every answer served from cells and equal to the reference.
    let server = Server::start(
        SharedDatastore::new(build_engine(&ds, true, 5.0)),
        ServerOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    concurrent_ingest(addr, &ds);
    Client::connect(addr).unwrap().flush().unwrap();
    concurrent_read_and_compare_panel(addr, &panel, &expected);
    server.shutdown().unwrap();

    // Cluster behind the server: workers answer from their own cells and
    // the master merges the partials — still the same bits as the
    // embedded engine's answers.
    let compression = CompressionConfig {
        error_bound: ErrorBound::relative(5.0),
        ..Default::default()
    };
    let cluster = Cluster::start(
        catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap(),
        Arc::new(ModelRegistry::standard()),
        compression,
        3,
    )
    .unwrap();
    let server = Server::start(SharedDatastore::new(cluster), ServerOptions::default()).unwrap();
    let addr = server.local_addr();
    concurrent_ingest(addr, &ds);
    Client::connect(addr).unwrap().flush().unwrap();
    concurrent_read_and_compare_panel(addr, &panel, &expected);
    server.shutdown().unwrap();
}

#[test]
fn query_errors_are_frames_not_disconnects() {
    let ds = mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap();
    let server = Server::start(
        SharedDatastore::new(build_engine(&ds, true, 5.0)),
        ServerOptions::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A bad statement is a typed error; the session keeps working.
    match client.sql("SELECT nonsense FROM nowhere") {
        Err(MdbError::Query(_)) => {}
        other => panic!("expected Query error, got {other:?}"),
    }
    client
        .ingest_points(&[(1, 0, 1.0), (1, 60_000, 1.1)])
        .unwrap();
    client.flush().unwrap();
    assert_eq!(
        client
            .sql("SELECT COUNT_S(*) FROM Segment")
            .unwrap()
            .rows
            .len(),
        1
    );

    // Prepared statements are session state.
    client
        .prepare("count", "SELECT COUNT_S(*) FROM Segment")
        .unwrap();
    assert_eq!(
        client.exec_prepared("count").unwrap(),
        client.sql("SELECT COUNT_S(*) FROM Segment").unwrap()
    );
    match client.exec_prepared("ghost") {
        Err(MdbError::NotFound(_)) => {}
        other => panic!("expected NotFound, got {other:?}"),
    }
    match client.prepare("bad", "SELEKT oops") {
        Err(MdbError::Query(_)) => {}
        other => panic!("expected Query error, got {other:?}"),
    }

    // Session options validate their values.
    client.set_option("errors", "deferred").unwrap();
    client.set_option("errors", "strict").unwrap();
    match client.set_option("errors", "sometimes") {
        Err(MdbError::Config(_)) => {}
        other => panic!("expected Config error, got {other:?}"),
    }

    // A second session does not see the first session's statements.
    let mut other = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(
        other.exec_prepared("count"),
        Err(MdbError::NotFound(_))
    ));
    other.close().unwrap();
    client.close().unwrap();
    server.shutdown().unwrap();
}

/// Raw-socket helper: performs the Hello handshake manually.
fn raw_hello(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .unwrap();
    let reply = read_frame(&mut stream).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&reply).unwrap(),
        Response::Hello { .. }
    ));
    stream
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) {
    let payload = read_frame(stream).unwrap().expect("an error frame");
    match Response::decode(&payload).unwrap() {
        Response::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected error frame, got {other:?}"),
    }
}

#[test]
fn protocol_damage_matrix() {
    let ds = mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap();
    let server = Server::start(
        SharedDatastore::new(build_engine(&ds, true, 5.0)),
        ServerOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Unknown request kind after a valid handshake: error frame, session
    // still answers the next well-formed request.
    {
        let mut stream = raw_hello(addr);
        write_frame(&mut stream, &[0x7f, 1, 2, 3]).unwrap();
        expect_error(&mut stream, ErrorCode::Protocol);
        write_frame(&mut stream, &Request::Health.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Health(_)
        ));
    }

    // Truncated payload (a string length pointing past the frame end).
    {
        let mut stream = raw_hello(addr);
        write_frame(&mut stream, &[0x02, 200, 0, 0, 0, b'S']).unwrap();
        expect_error(&mut stream, ErrorCode::Protocol);
        write_frame(&mut stream, &Request::Bye.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&payload).unwrap(),
            Response::Ok { .. }
        ));
    }

    // Oversized length prefix: the framing is broken, so the server answers
    // with an error frame and closes.
    {
        use std::io::Write;
        let mut stream = raw_hello(addr);
        stream.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        expect_error(&mut stream, ErrorCode::Protocol);
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    // Zero-length frame: same — unrecoverable framing damage.
    {
        use std::io::Write;
        let mut stream = raw_hello(addr);
        stream.write_all(&0u32.to_le_bytes()).unwrap();
        expect_error(&mut stream, ErrorCode::Protocol);
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    // Garbage instead of Hello: typed error, then close.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
        expect_error(&mut stream, ErrorCode::Protocol);
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    // Wrong protocol version: typed error, then close.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &Request::Hello { version: 999 }.encode()).unwrap();
        expect_error(&mut stream, ErrorCode::Protocol);
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    // A client vanishing mid-frame must not poison the server.
    {
        use std::io::Write;
        let mut stream = raw_hello(addr);
        stream.write_all(&[64, 0, 0, 0, 0x02]).unwrap(); // promises 64 bytes…
        drop(stream); // …and leaves.
    }

    // After all of the above, a normal session still works end to end.
    let mut client = Client::connect(addr).unwrap();
    client.ingest_points(&[(1, 0, 42.0)]).unwrap();
    client.flush().unwrap();
    assert!(!client
        .sql("SELECT COUNT_S(*) FROM Segment")
        .unwrap()
        .rows
        .is_empty());
    client.close().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn admission_permits_recycle_and_shutdown_flushes() {
    let ds = mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap();
    let datastore = SharedDatastore::new(build_engine(&ds, true, 5.0));
    let server = Server::start(
        datastore.clone(),
        ServerOptions {
            max_connections: 1,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // With one permit, sequential sessions must still all be served.
    for round in 0..3 {
        let mut client = Client::connect(addr).unwrap();
        client
            .ingest_points(&[(1, round * 60_000, round as f32)])
            .unwrap();
        client.close().unwrap();
    }

    // No client ever flushed; shutdown drains sessions and flushes the
    // datastore through its normal path.
    server.shutdown().unwrap();
    let count = datastore.sql("SELECT COUNT(Value) FROM DataPoint").unwrap();
    assert_eq!(count.rows[0][0].as_f64(), Some(3.0));
}

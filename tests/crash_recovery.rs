//! Crash-injection recovery: whatever happens to the *tail* of the segment
//! log (truncation at an arbitrary byte, a flipped byte in the last block,
//! appended garbage from a torn write) and whatever state the sidecar index
//! is in (fresh, deleted, stale from an earlier flush, or replaced by
//! garbage), reopening the store must recover **exactly** the segments of
//! the surviving valid blocks — never an error, never a partial block, never
//! a resurrected one — rebuild the same zone map those segments imply, and
//! leave behind a fresh sidecar describing the recovered state. When the
//! store maintains sketches, recovery must also regenerate them: a sidecar
//! that predates the sketch section (or whose sketch bytes are damaged) is
//! rejected in favour of a streaming rescan that rebuilds the sketches from
//! the surviving blocks.

use std::sync::Arc;

use mdb_testutil::TempDir;
use proptest::prelude::*;

use modelardb::{
    checksum_v2, scan_to_vec, BlockFormat, BlockSketch, DiskStore, DiskStoreOptions, GapsMask, Gid,
    RollupAcc, RollupCells, RollupDelta, RollupFeed, SegmentPredicate, SegmentRecord, SegmentStore,
    SketchFeedFn, Tid, TimeLevel, Timestamp, ValueBoundsFn, ValueInterval, ZoneMap,
};

/// Size of a block header in `segments.log`: six u32 fields (magic,
/// payload_len, checksum, count, min_gid, max_gid) plus two i64 end-time
/// bounds = 40 bytes, matching `crates/storage/src/disk.rs`.
const HEADER_BYTES: u64 = 40;

/// A scoped case directory, removed on drop — on failure too, so a broken
/// run never poisons the next (see `mdb_testutil::TempDir`).
fn case_dir() -> TempDir {
    TempDir::new("crash")
}

/// A deterministic segment: varying gid, times, params length, and gaps.
fn seg(i: usize) -> SegmentRecord {
    SegmentRecord {
        gid: (i % 4) as u32 + 1,
        start_time: i as i64 * 1_000,
        end_time: i as i64 * 1_000 + 900,
        sampling_interval: 100,
        mid: (i % 3) as u8,
        params: bytes::Bytes::from(vec![i as u8; i % 13 + 1]),
        gaps: GapsMask((i % 5) as u64),
    }
}

/// A value-bounds provider with deliberate holes (gid 3 is unknown), so the
/// rebuilt zone map exercises Bounded *and* Unbounded statistics.
fn bounds() -> ValueBoundsFn {
    Arc::new(|s: &SegmentRecord| {
        (s.gid != 3).then(|| ValueInterval::new(s.start_time as f64, s.end_time as f64))
    })
}

/// A synthetic sketch feed over the synthetic segments of this suite: the
/// sketches derive from segment fields alone, so the sketch state a recovery
/// must regenerate is computable directly from the expected segment list.
fn feed() -> SketchFeedFn {
    Arc::new(|s: &SegmentRecord, sketch: &mut BlockSketch| {
        sketch.quantiles.insert(s.start_time as f64);
        sketch.distinct.insert(u64::from(s.gid));
        sketch.topk.add(s.gid, 1);
        true
    })
}

/// The sketch state any store holding exactly `segments` must report
/// (sketch merging is order-independent, so one flat pass suffices).
fn expected_sketch(segments: &[SegmentRecord]) -> BlockSketch {
    let feed = feed();
    let mut sketch = BlockSketch::new();
    for s in segments {
        feed(s, &mut sketch);
    }
    sketch
}

fn options(with_bounds: bool, with_feed: bool) -> DiskStoreOptions {
    DiskStoreOptions {
        // Larger than any case writes: blocks are cut by explicit flushes.
        bulk_write_size: 1 << 20,
        memory_budget_bytes: None,
        value_bounds: with_bounds.then(bounds),
        sketch_feed: with_feed.then(feed),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reopen_recovers_exactly_the_surviving_valid_blocks(
        block_sizes in proptest::collection::vec(1usize..20, 1..6),
        log_action in 0usize..3,
        cut_frac in 0.0f64..1.0,
        sidecar_action in 0usize..4,
        stale_frac in 0.0f64..1.0,
        with_bounds in proptest::bool::ANY,
        with_feed in proptest::bool::ANY,
    ) {
        let case = case_dir();
        let dir = case.path();
        // Write the log: one block per explicit flush, recording each
        // block's segments, its end offset, and the sidecar bytes as of
        // that flush (for the stale-sidecar scenario).
        let mut block_segments: Vec<Vec<SegmentRecord>> = Vec::new();
        let mut block_ends: Vec<u64> = Vec::new();
        let mut sidecar_snapshots: Vec<Vec<u8>> = Vec::new();
        {
            let mut store = DiskStore::open_with(dir, options(with_bounds, with_feed)).unwrap();
            let mut i = 0;
            for size in &block_sizes {
                let mut block = Vec::new();
                for _ in 0..*size {
                    let s = seg(i);
                    store.insert(s.clone()).unwrap();
                    block.push(s);
                    i += 1;
                }
                store.flush().unwrap();
                block_segments.push(block);
                block_ends.push(store.persistent_bytes());
                sidecar_snapshots.push(std::fs::read(store.sidecar_path()).unwrap());
            }
        }
        let log_path = dir.join("segments.log");
        let sidecar_path = dir.join("segments.idx");
        let log_len = std::fs::metadata(&log_path).unwrap().len();
        prop_assert_eq!(log_len, *block_ends.last().unwrap());

        // Damage the log tail; `surviving` = blocks that stay fully intact.
        let surviving = match log_action {
            0 => {
                // Truncate at an arbitrary byte offset.
                let cut = (log_len as f64 * cut_frac) as u64;
                let file = std::fs::OpenOptions::new().write(true).open(&log_path).unwrap();
                file.set_len(cut).unwrap();
                block_ends.iter().filter(|end| **end <= cut).count()
            }
            1 => {
                // Flip a byte inside the last block's payload.
                let n = block_ends.len();
                let start = if n >= 2 { block_ends[n - 2] } else { 0 };
                let payload_start = start + HEADER_BYTES;
                let payload_len = block_ends[n - 1] - payload_start;
                let target = payload_start + ((payload_len as f64 * cut_frac) as u64).min(payload_len - 1);
                let mut bytes = std::fs::read(&log_path).unwrap();
                bytes[target as usize] ^= 0x5A;
                std::fs::write(&log_path, &bytes).unwrap();
                n - 1
            }
            _ => {
                // Append garbage (a torn write that never completed).
                let mut bytes = std::fs::read(&log_path).unwrap();
                let garbage = (cut_frac * 60.0) as usize + 1;
                bytes.extend(std::iter::repeat_n(0xAB, garbage));
                std::fs::write(&log_path, &bytes).unwrap();
                block_ends.len()
            }
        };
        match sidecar_action {
            0 => {} // keep the (now possibly wrong) fresh sidecar
            1 => std::fs::remove_file(&sidecar_path).unwrap(),
            2 => {
                // Stale: put back the sidecar from an earlier flush.
                let k = ((sidecar_snapshots.len() - 1) as f64 * stale_frac) as usize;
                std::fs::write(&sidecar_path, &sidecar_snapshots[k]).unwrap();
            }
            _ => std::fs::write(&sidecar_path, b"not a sidecar at all").unwrap(),
        }

        // Reopen: exactly the surviving blocks' segments, in log order.
        let expected: Vec<SegmentRecord> = block_segments[..surviving]
            .iter()
            .flatten()
            .cloned()
            .collect();
        let store = DiskStore::open_with(dir, options(with_bounds, with_feed)).unwrap();
        let recovered = scan_to_vec(&store, &SegmentPredicate::all()).unwrap();
        prop_assert_eq!(&recovered, &expected);
        prop_assert_eq!(store.len(), expected.len());

        // A sketch-maintaining store regenerates exactly the sketches the
        // surviving segments imply, whatever happened to the log or sidecar.
        if with_feed {
            prop_assert_eq!(
                store.merge_sketches(None).unwrap().as_ref(),
                Some(&expected_sketch(&expected))
            );
        }

        // The zone map equals the one those segments imply.
        let mut expected_zones = ZoneMap::new();
        let value_bounds = with_bounds.then(bounds);
        for s in &expected {
            let range = value_bounds.as_ref().and_then(|f| f(s));
            expected_zones.insert(s, range);
        }
        prop_assert_eq!(store.zones(), Some(&expected_zones));

        // The log was truncated to the last valid block and the sidecar was
        // rebuilt to describe exactly the recovered state: a second reopen
        // (which trusts the sidecar) agrees bit-for-bit.
        let truncated_len = store.persistent_bytes();
        drop(store);
        prop_assert_eq!(std::fs::metadata(&log_path).unwrap().len(), truncated_len);
        if !expected.is_empty() {
            prop_assert!(sidecar_path.exists(), "sidecar must be rebuilt");
        }
        let store = DiskStore::open_with(dir, options(with_bounds, with_feed)).unwrap();
        prop_assert_eq!(&scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), &expected);
        prop_assert_eq!(store.zones(), Some(&expected_zones));
        if with_feed {
            // The rebuilt sidecar persisted the sketches; the adopted copy
            // answers identically to the rescan that produced it.
            prop_assert_eq!(
                store.merge_sketches(None).unwrap().as_ref(),
                Some(&expected_sketch(&expected))
            );
        }
    }
}

/// Version migration: a sidecar written before the store maintained
/// sketches (`sketched: false`) must NOT be adopted by an open that has a
/// sketch feed — adopting it would leave sketch queries permanently
/// unanswerable. Instead the open falls back to the streaming rescan, which
/// regenerates the sketches from the blocks and rewrites the sidecar; the
/// next open adopts that rewritten, sketch-bearing sidecar and agrees.
#[test]
fn pre_sketch_sidecar_falls_back_to_rescan_that_regenerates_sketches() {
    let case = case_dir();
    let dir = case.path();
    let mut all = Vec::new();
    {
        // The "old version": no sketch feed, sidecar has no sketches.
        let mut store = DiskStore::open_with(dir, options(true, false)).unwrap();
        for i in 0..25 {
            let s = seg(i);
            store.insert(s.clone()).unwrap();
            all.push(s);
            if i % 8 == 7 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        assert_eq!(store.merge_sketches(None).unwrap(), None);
    }

    // "Upgrade": reopen with a feed. The sketch-less sidecar is rejected,
    // the rescan recovers every segment and regenerates their sketches.
    let store = DiskStore::open_with(dir, options(true, true)).unwrap();
    assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), all);
    let merged = store.merge_sketches(None).unwrap();
    assert_eq!(merged.as_ref(), Some(&expected_sketch(&all)));

    // Scoped merges see only the requested gids' segments.
    let scope = [1u32, 3];
    let in_scope: Vec<SegmentRecord> = all
        .iter()
        .filter(|s| scope.contains(&s.gid))
        .cloned()
        .collect();
    assert_eq!(
        store.merge_sketches(Some(&scope)).unwrap().as_ref(),
        Some(&expected_sketch(&in_scope))
    );
    drop(store);

    // The rescan rewrote the sidecar with the sketch section; a third open
    // adopts it (no rescan this time) and answers identically.
    let store = DiskStore::open_with(dir, options(true, true)).unwrap();
    assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), all);
    assert_eq!(
        store.merge_sketches(None).unwrap().as_ref(),
        Some(&expected_sketch(&all))
    );
}

/// A damaged sketch section — the sidecar's trailing bytes — fails the body
/// checksum, so the whole sidecar is rejected and the rescan regenerates
/// both the segments and their sketches.
#[test]
fn corrupt_or_truncated_sketch_section_triggers_sketch_rebuilding_rescan() {
    let case = case_dir();
    let dir = case.path();
    let mut all = Vec::new();
    {
        let mut store = DiskStore::open_with(dir, options(true, true)).unwrap();
        for i in 0..20 {
            let s = seg(i);
            store.insert(s.clone()).unwrap();
            all.push(s);
            if i % 7 == 6 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
    }
    let sidecar_path = dir.join("segments.idx");
    let pristine = std::fs::read(&sidecar_path).unwrap();

    // Damage modes aimed at the sketch section, which trails the file:
    // flip the last byte, flip a byte a little further in, truncate one
    // byte, truncate a whole sketch-sized chunk.
    let damaged: Vec<Vec<u8>> = vec![
        {
            let mut b = pristine.clone();
            *b.last_mut().unwrap() ^= 0xFF;
            b
        },
        {
            let mut b = pristine.clone();
            let at = b.len() - 40;
            b[at] ^= 0x01;
            b
        },
        pristine[..pristine.len() - 1].to_vec(),
        pristine[..pristine.len() - 120].to_vec(),
    ];
    for bytes in damaged {
        std::fs::write(&sidecar_path, &bytes).unwrap();
        let store = DiskStore::open_with(dir, options(true, true)).unwrap();
        assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), all);
        assert_eq!(
            store.merge_sketches(None).unwrap().as_ref(),
            Some(&expected_sketch(&all))
        );
    }
}

/// A deterministic synthetic rollup feed over this suite's segments: one
/// delta per segment, bucketed coarsely enough that cells merge, so the
/// cell state a recovery must regenerate is computable from the expected
/// segment list alone.
fn rollup() -> RollupFeed {
    RollupFeed {
        levels: vec![TimeLevel::Hour],
        feed: Arc::new(|s: &SegmentRecord| {
            Some(vec![RollupDelta {
                tid: s.gid * 10,
                level: TimeLevel::Hour,
                bucket: s.start_time.div_euclid(10_000) * 10_000,
                acc: RollupAcc {
                    count: 1,
                    sum: s.end_time as f64 * 0.5,
                    min: s.start_time as f64,
                    max: s.end_time as f64,
                },
            }])
        }),
    }
}

/// One rollup cell flattened for exact comparison (float fields as raw
/// bits, so "equal" means bit-identical).
type FlatCell = (Gid, Tid, Timestamp, u64, u64, u64, u64);

/// The cells any store holding exactly `segments` must serve.
fn expected_cells(segments: &[SegmentRecord]) -> Vec<FlatCell> {
    let feed = rollup();
    let mut cells = RollupCells::new(feed.levels.clone());
    for s in segments {
        cells.feed_segment(&feed.feed, s);
    }
    let mut flat = Vec::new();
    cells.for_each(TimeLevel::Hour, None, &mut |g, t, b, a| {
        flat.push((
            g,
            t,
            b,
            a.count,
            a.sum.to_bits(),
            a.min.to_bits(),
            a.max.to_bits(),
        ));
    });
    flat
}

fn collect_cells(store: &DiskStore) -> Vec<FlatCell> {
    let mut flat = Vec::new();
    assert!(
        store
            .rollup_cells(TimeLevel::Hour, None, &mut |g, t, b, a| {
                flat.push((
                    g,
                    t,
                    b,
                    a.count,
                    a.sum.to_bits(),
                    a.min.to_bits(),
                    a.max.to_bits(),
                ));
            })
            .unwrap(),
        "the feed-ful store must serve its cells"
    );
    flat
}

/// Damage aimed at the *rollup section* — the sidecar's trailing bytes,
/// behind a perfectly valid sketch section. The body checksum covers the
/// whole file, so every mode rejects the sidecar as one unit; the streaming
/// rescan must then rebuild the rollup cells *and* still regenerate the
/// sketches — recovering from rollup damage never costs the sketch restore.
#[test]
fn damaged_rollup_section_rebuilds_cells_without_losing_sketches() {
    let case = case_dir();
    let dir = case.path();
    let with_rollups = || DiskStoreOptions {
        rollup_feed: Some(rollup()),
        ..options(true, true)
    };
    let mut all = Vec::new();
    {
        let mut store = DiskStore::open_with(dir, with_rollups()).unwrap();
        for i in 0..20 {
            let s = seg(i);
            store.insert(s.clone()).unwrap();
            all.push(s);
            if i % 7 == 6 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        assert_eq!(collect_cells(&store), expected_cells(&all));
    }
    let sidecar_path = dir.join("segments.idx");
    let pristine = std::fs::read(&sidecar_path).unwrap();
    // The rollup section's size, from its layout: a flag byte, a level
    // count, one tag per level, a u64 cell count, then 49 bytes per cell.
    let section = 3 + 8 + 49 * expected_cells(&all).len();
    assert!(pristine.len() > section + 16, "the section trails the file");

    let damaged: Vec<Vec<u8>> = vec![
        // Truncated one byte into the last cell.
        pristine[..pristine.len() - 1].to_vec(),
        // Truncated mid-section: only the flag byte survives.
        pristine[..pristine.len() - (section - 1)].to_vec(),
        // A flipped byte in the last cell's accumulator.
        {
            let mut b = pristine.clone();
            *b.last_mut().unwrap() ^= 0xFF;
            b
        },
        // A flipped byte around the middle of the cell list.
        {
            let mut b = pristine.clone();
            let at = b.len() - section / 2;
            b[at] ^= 0x01;
            b
        },
    ];
    for bytes in damaged {
        std::fs::write(&sidecar_path, &bytes).unwrap();
        let store = DiskStore::open_with(dir, with_rollups()).unwrap();
        assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), all);
        assert_eq!(
            store.merge_sketches(None).unwrap().as_ref(),
            Some(&expected_sketch(&all)),
            "sketch restore must survive rollup-section damage"
        );
        assert_eq!(collect_cells(&store), expected_cells(&all));
        drop(store);
        // The rescan rewrote the sidecar; the next open adopts it (no
        // rescan) and serves identical cells.
        let adopted = DiskStore::open_with(dir, with_rollups()).unwrap();
        assert_eq!(collect_cells(&adopted), expected_cells(&all));
    }
}

/// v2 structural damage: payloads whose *outer checksum is valid* (patched
/// with `checksum_v2` after the corruption) but whose columnar layout fails
/// `BlockView` validation — a truncated parameter heap, a misaligned section
/// offset, and a corrupt column (a zero sampling interval). A checksum-valid
/// but structurally invalid block cannot come from a torn write, so the
/// recovery rescan must *reject it as corruption* — an `Err`, never a panic,
/// never silently adopting garbage segments.
#[test]
fn checksum_valid_but_structurally_damaged_v2_blocks_are_rejected_without_panic() {
    // Header field offsets within a block, per `crates/storage/src/disk.rs`:
    // magic @0, payload_len @4, checksum @8 (all u32 little-endian).
    const LEN_AT: usize = 4;
    const SUM_AT: usize = 8;
    let case = case_dir();
    let dir = case.path();
    {
        let mut store = DiskStore::open_with(dir, options(true, false)).unwrap();
        assert_eq!(store.write_format(), BlockFormat::V2);
        for i in 0..30 {
            store.insert(seg(i)).unwrap();
            if i % 10 == 9 {
                store.flush().unwrap();
            }
        }
    }
    let log_path = dir.join("segments.log");
    let pristine = std::fs::read(&log_path).unwrap();
    // Locate the last block by walking the headers.
    let mut start = 0usize;
    loop {
        let len = u32::from_le_bytes(
            pristine[start + LEN_AT..start + LEN_AT + 4]
                .try_into()
                .unwrap(),
        );
        let next = start + HEADER_BYTES as usize + len as usize;
        if next == pristine.len() {
            break;
        }
        start = next;
    }
    let body = start + HEADER_BYTES as usize;

    // Each damage mode corrupts the last block's payload, then re-seals the
    // outer header so the checksum is not what rejects it.
    let damaged: Vec<Vec<u8>> = vec![
        {
            // Truncate the parameter heap: the recorded total length and
            // section offsets now point past the buffer.
            let mut b = pristine[..pristine.len() - 3].to_vec();
            let len = (b.len() - body) as u32;
            b[start + LEN_AT..start + LEN_AT + 4].copy_from_slice(&len.to_le_bytes());
            b
        },
        {
            // Misalign a section offset: shift `off_sis` (table entry 3,
            // bytes 12..16 of the payload) by four bytes.
            let mut b = pristine.clone();
            let at = body + 12;
            let off = u32::from_le_bytes(b[at..at + 4].try_into().unwrap()) + 4;
            b[at..at + 4].copy_from_slice(&off.to_le_bytes());
            b
        },
        {
            // Corrupt a column: zero the first sampling interval (`off_sis`
            // names the SI section; SI < 1 is structurally invalid).
            let mut b = pristine.clone();
            let at = body + 12;
            let off = u32::from_le_bytes(b[at..at + 4].try_into().unwrap()) as usize;
            b[body + off..body + off + 8].copy_from_slice(&0i64.to_le_bytes());
            b
        },
    ];
    for mut bytes in damaged {
        let sum = checksum_v2(&bytes[body..]);
        bytes[start + SUM_AT..start + SUM_AT + 4].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&log_path, &bytes).unwrap();
        // Force the rescan: the sidecar (which would defer validation to
        // fetch time) is gone, so the open itself walks every block.
        let _ = std::fs::remove_file(dir.join("segments.idx"));
        let err = DiskStore::open_with(dir, options(true, false))
            .err()
            .expect("structurally damaged block must be rejected");
        assert!(
            err.to_string().contains("layout validation"),
            "unexpected error: {err}"
        );
    }

    // Control: the pristine bytes still open and hold all 30 segments.
    std::fs::write(&log_path, &pristine).unwrap();
    let store = DiskStore::open_with(dir, options(true, false)).unwrap();
    assert_eq!(store.len(), 30);
}

/// Lazy v1→v2 migration: a log written entirely in the v1 row-major format
/// must reopen bit-identically under a v2-writing store — old blocks keep
/// their format and decode through the owned path while new appends go down
/// in v2 — and a further reopen of the now mixed-format log still agrees.
#[test]
fn v1_logs_reopen_bit_identically_and_mix_with_v2_appends() {
    let case = case_dir();
    let dir = case.path();
    let v1_options = || DiskStoreOptions {
        write_format: BlockFormat::V1,
        ..options(true, true)
    };
    let mut all = Vec::new();
    {
        let mut store = DiskStore::open_with(dir, v1_options()).unwrap();
        for i in 0..25 {
            let s = seg(i);
            store.insert(s.clone()).unwrap();
            all.push(s);
            if i % 8 == 7 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
    }
    let v1_log = std::fs::read(dir.join("segments.log")).unwrap();

    // "Upgrade": reopen with the v2 default. Reads are bit-identical and
    // the v1 bytes on disk are untouched (migration is lazy, not a rewrite).
    {
        let mut store = DiskStore::open_with(dir, options(true, true)).unwrap();
        assert_eq!(store.write_format(), BlockFormat::V2);
        assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), all);
        assert_eq!(std::fs::read(dir.join("segments.log")).unwrap(), v1_log);
        assert_eq!(
            store.merge_sketches(None).unwrap().as_ref(),
            Some(&expected_sketch(&all))
        );
        // New appends extend the same log in v2.
        for i in 25..30 {
            let s = seg(i);
            store.insert(s.clone()).unwrap();
            all.push(s);
        }
        store.flush().unwrap();
    }

    // The mixed-format log reopens to the full segment list, from the
    // sidecar and — after deleting it — from the raw rescan.
    for delete_sidecar in [false, true] {
        if delete_sidecar {
            std::fs::remove_file(dir.join("segments.idx")).unwrap();
        }
        let store = DiskStore::open_with(dir, options(true, true)).unwrap();
        assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), all);
        assert_eq!(
            store.merge_sketches(None).unwrap().as_ref(),
            Some(&expected_sketch(&all))
        );
    }
}

/// Deterministic companion: recovery must also *append* correctly — after a
/// crash loses the tail, new writes continue the log and a subsequent clean
/// reopen sees old survivors plus new segments.
#[test]
fn writes_after_recovery_extend_the_truncated_log() {
    let case = case_dir();
    let dir = case.path();
    {
        let mut store = DiskStore::open_with(dir, options(true, false)).unwrap();
        for i in 0..30 {
            store.insert(seg(i)).unwrap();
            if i % 10 == 9 {
                store.flush().unwrap();
            }
        }
    }
    // Lose the last block (bytes beyond block 2) and the sidecar.
    let log_path = dir.join("segments.log");
    let len = std::fs::metadata(&log_path).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&log_path)
        .unwrap();
    file.set_len(len - 1).unwrap();
    std::fs::remove_file(dir.join("segments.idx")).unwrap();

    let mut store = DiskStore::open_with(dir, options(true, false)).unwrap();
    assert_eq!(store.len(), 20, "two intact blocks survive");
    for i in 30..35 {
        store.insert(seg(i)).unwrap();
    }
    store.flush().unwrap();
    drop(store);

    let store = DiskStore::open_with(dir, options(true, false)).unwrap();
    let expected: Vec<SegmentRecord> = (0..20).chain(30..35).map(seg).collect();
    assert_eq!(
        scan_to_vec(&store, &SegmentPredicate::all()).unwrap(),
        expected
    );
}

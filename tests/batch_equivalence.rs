//! Batch/row ingestion equivalence: `ModelarDb::ingest_batch` must be
//! indistinguishable from feeding the same ticks through
//! `ModelarDb::ingest_row` one at a time — byte-identical segments and
//! identical Segment View aggregates — including rows with gaps, ticks the
//! whole group missed, and value patterns that trigger dynamic splits and
//! joins (Section 4.2).

use modelardb::{
    DimensionSchema, ErrorBound, ModelarDb, ModelarDbBuilder, RowBatch, SeriesSpec, Value,
};

fn engine() -> ModelarDb {
    engine_with_split_fraction(10.0)
}

fn engine_with_split_fraction(split_fraction: f64) -> ModelarDb {
    let mut builder = ModelarDbBuilder::new();
    builder.config_mut().compression.error_bound = ErrorBound::relative(5.0);
    builder.config_mut().compression.split_fraction = split_fraction;
    builder
        .add_dimension(
            DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()])
                .unwrap(),
        )
        .add_series(SeriesSpec::new("a", 100).with_members("Location", &["Aalborg", "1"]))
        .add_series(SeriesSpec::new("b", 100).with_members("Location", &["Aalborg", "2"]))
        .add_series(SeriesSpec::new("c", 100).with_members("Location", &["Aalborg", "3"]))
        .correlate("Location 1");
    builder.build().unwrap()
}

const QUERIES: [&str; 3] = [
    "SELECT COUNT_S(*) FROM Segment",
    "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
    "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
];

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
    #[test]
    fn ingest_batch_matches_ingest_row(
        pattern in proptest::collection::vec(
            (
                proptest::bool::weighted(0.9),
                proptest::bool::weighted(0.9),
                proptest::bool::weighted(0.9),
                -50.0f32..50.0,
                // Occasionally series c goes wild: decorrelation that can
                // trigger dynamic splits (and later joins).
                proptest::bool::weighted(0.2),
            ),
            1..220,
        ),
        chunk in 1usize..48,
    ) {
        let mut by_row = engine();
        let mut by_batch = engine();
        let mut batch = RowBatch::with_capacity(3, chunk);
        let mut buffered = 0usize;
        for (t, (p0, p1, p2, v, wild)) in pattern.iter().enumerate() {
            let c: Value = if *wild { v * 25.0 + 400.0 } else { v + 0.1 };
            let row = [p0.then_some(*v), p1.then_some(v * 1.01), p2.then_some(c)];
            let ts = t as i64 * 100;
            by_row.ingest_row(ts, &row).unwrap();
            batch.push_row(ts, &row);
            buffered += 1;
            if buffered == chunk {
                by_batch.ingest_batch(&batch).unwrap();
                batch.clear();
                buffered = 0;
            }
        }
        if buffered > 0 {
            by_batch.ingest_batch(&batch).unwrap();
        }
        by_row.flush().unwrap();
        by_batch.flush().unwrap();

        // Byte-identical segments…
        proptest::prop_assert_eq!(by_row.segments().unwrap(), by_batch.segments().unwrap());
        // …and identical compression statistics and query results.
        proptest::prop_assert_eq!(by_row.stats().rows, by_batch.stats().rows);
        proptest::prop_assert_eq!(by_row.stats().data_points, by_batch.stats().data_points);
        for q in QUERIES {
            let a = by_row.sql(q).unwrap();
            let b = by_batch.sql(q).unwrap();
            proptest::prop_assert_eq!(a.rows, b.rows, "{}", q);
        }
    }
}

/// A deterministic companion covering the split/join lifecycle end-to-end
/// (the proptest only hits it probabilistically): a long decorrelation
/// episode forces dynamic splits, recovery forces joins, and both ingestion
/// paths must agree throughout.
#[test]
fn batch_equivalence_across_dynamic_split_and_join() {
    let mut by_row = engine_with_split_fraction(2.0);
    let mut by_batch = engine_with_split_fraction(2.0);
    let mut batch = RowBatch::with_capacity(3, 64);
    let mut x = 99u32;
    let mut push = |t: i64, by_row: &mut ModelarDb, batch: &mut RowBatch| {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let noise = (x >> 16) as f32 / 65536.0;
        let (a, b) = (5.0 + noise * 0.1, 5.1 + noise * 0.1);
        // Ticks 150..320: series c decorrelates hard; elsewhere it tracks.
        let c = if (150..320).contains(&t) {
            500.0 + noise * 120.0
        } else {
            5.2 + noise * 0.1
        };
        // Sprinkle per-series gaps and a whole-group gap window.
        let row = [
            (t % 71 != 0).then_some(a),
            (t % 89 != 0).then_some(b),
            (!(410..430).contains(&t)).then_some(c),
        ];
        let row = if (500..505).contains(&t) {
            [None, None, None]
        } else {
            row
        };
        by_row.ingest_row(t * 100, &row).unwrap();
        batch.push_row(t * 100, &row);
    };
    for chunk_start in (0..900i64).step_by(64) {
        batch.clear();
        for t in chunk_start..(chunk_start + 64).min(900) {
            push(t, &mut by_row, &mut batch);
        }
        by_batch.ingest_batch(&batch).unwrap();
    }
    by_row.flush().unwrap();
    by_batch.flush().unwrap();
    let row_stats = by_row.stats();
    assert!(
        row_stats.splits >= 1,
        "expected a dynamic split, got {row_stats:?}"
    );
    assert_eq!(by_row.segments().unwrap(), by_batch.segments().unwrap());
    assert_eq!(row_stats.splits, by_batch.stats().splits);
    assert_eq!(row_stats.joins, by_batch.stats().joins);
    for q in QUERIES {
        assert_eq!(
            by_row.sql(q).unwrap().rows,
            by_batch.sql(q).unwrap().rows,
            "{q}"
        );
    }
}

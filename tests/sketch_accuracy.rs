//! Accuracy pins for the sketch-answered functions (`P50_S`/`P99_S`/
//! `PCTL_S`, `COUNT_DISTINCT`, `TOP_K_S`): their answers must stay within
//! the error bounds `mdb_sketch` documents — imported here as constants, so
//! the docs, the implementation, and this suite cannot drift apart — when
//! compared against exact answers computed by a full Data Point View scan.
//! Separately, the sketch path must be *placement-invariant*: a sequential
//! engine, a pooled-parallel engine, and a replicated cluster must return
//! bit-identical sketch answers. And on a disk-backed store the whole point
//! of the feature is pinned: sketch queries resolve from block metadata
//! without fetching a single segment body.

use std::sync::Arc;

use mdb_bench::{
    build_disk_engine, build_engine, build_engine_with, catalog_from_dataset, ingest_cluster,
    ingest_engine, scalar,
};
use mdb_datagen::{ep, Scale};
use mdb_sketch::{DISTINCT_RELATIVE_ERROR, QUANTILE_RELATIVE_ERROR, QUANTILE_ZERO_THRESHOLD};
use mdb_testutil::TempDir;
use proptest::prelude::*;

use modelardb::{
    sketch_feed, value_bounds_fn, Cluster, ClusterConfig, CompressionConfig, DiskStore,
    DiskStoreOptions, ErrorBound, ModelRegistry, ModelarDb, QueryEngine, SegmentStore,
};

/// Exact reconstructed values of every stored data point, via the Data
/// Point View — the same values the ingest-time sketch feed saw.
fn exact_values(db: &ModelarDb) -> Vec<f64> {
    db.sql("SELECT Value FROM DataPoint")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_f64().unwrap())
        .collect()
}

/// Exact per-series point counts, heaviest first with ties broken by Tid —
/// the order `TOP_K_S` documents.
fn exact_counts(db: &ModelarDb) -> Vec<(i64, i64)> {
    let result = db
        .sql("SELECT Tid, COUNT(*) FROM DataPoint GROUP BY Tid")
        .unwrap();
    let mut counts: Vec<(i64, i64)> = result
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
}

/// The exact nearest-rank percentile (the definition `PCTL_S` approximates).
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The documented quantile guarantee: relative error at most
/// [`QUANTILE_RELATIVE_ERROR`] (plus the zero-bucket threshold), with a few
/// ulps of slack for the float round trip.
fn quantile_close(approx: f64, exact: f64) -> bool {
    (approx - exact).abs()
        <= QUANTILE_RELATIVE_ERROR * exact.abs() * (1.0 + 1e-9) + QUANTILE_ZERO_THRESHOLD
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Sketch answers vs. exact full-scan answers, within the documented
    // bounds, across datasets and ingest lengths.
    #[test]
    fn sketch_answers_stay_within_documented_error(
        seed in 0u64..256,
        ticks in 60u64..300,
        k in 1usize..6,
    ) {
        let ds = ep(seed, Scale::tiny()).unwrap();
        let mut db = build_engine(&ds, true, 5.0);
        ingest_engine(&mut db, &ds, ticks);

        let mut values = exact_values(&db);
        prop_assert!(!values.is_empty());
        values.sort_by(f64::total_cmp);

        // Percentiles: P50_S / P99_S sugar and the general PCTL_S form.
        for (sql, q) in [
            ("SELECT P50_S(*) FROM Segment", 50.0),
            ("SELECT P99_S(*) FROM Segment", 99.0),
            ("SELECT PCTL_S(25.5) FROM Segment", 25.5),
        ] {
            let approx = scalar(&db.sql(sql).unwrap());
            let exact = nearest_rank(&values, q);
            prop_assert!(
                quantile_close(approx, exact),
                "{sql}: approx {approx} vs exact {exact}"
            );
        }

        // Distinct series: within the documented relative error (and never
        // off by less than one for the tiny cardinalities of this scale).
        let approx = scalar(&db.sql("SELECT COUNT_DISTINCT(Tid) FROM Segment").unwrap());
        let exact = exact_counts(&db).len() as f64;
        prop_assert!(
            (approx - exact).abs() <= (DISTINCT_RELATIVE_ERROR * exact).max(1.0),
            "COUNT_DISTINCT: approx {approx} vs exact {exact}"
        );

        // Top-k: the count-min hash family has no fully-colliding key pair
        // below 4096 (pinned in mdb_sketch), so for these Tids the heavy
        // hitters and their counts are exact — a superset-ordered match.
        let truth: Vec<(i64, i64)> = exact_counts(&db).into_iter().take(k).collect();
        let got: Vec<(i64, i64)> = db
            .sql(&format!("SELECT TOP_K_S({k}) FROM Segment"))
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        prop_assert_eq!(got, truth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Sketch answers are placement-invariant: a sequential engine, a
    // pooled-parallel engine, and an rf=2 cluster (any worker count) agree
    // exactly — sketch merging is commutative and associative over integer
    // state, so every merge tree produces the same bits.
    #[test]
    fn sequential_pooled_and_replicated_cluster_agree_exactly(
        seed in 0u64..64,
        ticks in 60u64..200,
        n_workers in 2usize..5,
    ) {
        let ds = ep(seed, Scale::tiny()).unwrap();
        let mut sequential = build_engine_with(&ds, true, 5.0, 1, true);
        let mut pooled = build_engine_with(&ds, true, 5.0, 4, true);
        ingest_engine(&mut sequential, &ds, ticks);
        ingest_engine(&mut pooled, &ds, ticks);

        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let cluster = Cluster::start_with(
            catalog,
            Arc::new(ModelRegistry::standard()),
            ClusterConfig {
                replication_factor: 2,
                ..ClusterConfig::with_compression(CompressionConfig {
                    error_bound: ErrorBound::relative(5.0),
                    ..Default::default()
                })
            },
            n_workers,
        )
        .unwrap();
        ingest_cluster(&cluster, &ds, ticks);

        for sql in [
            "SELECT P50_S(*) FROM Segment",
            "SELECT P99_S(*), COUNT_DISTINCT(Tid) FROM Segment",
            "SELECT PCTL_S(10) FROM Segment",
            "SELECT TOP_K_S(3) FROM Segment",
        ] {
            let expected = sequential.sql(sql).unwrap();
            prop_assert_eq!(&pooled.sql(sql).unwrap(), &expected, "{} (pooled)", sql);
            prop_assert_eq!(
                &cluster.sql(sql).unwrap(),
                &expected,
                "{} ({} workers, rf=2)",
                sql,
                n_workers
            );
        }
        cluster.shutdown().unwrap();
    }
}

/// The tentpole guarantee on a disk-backed store: sketch queries resolve
/// from block metadata alone — zero block-cache traffic — and a reopened
/// store answers them identically from the sidecar-persisted sketches.
#[test]
fn disk_sketch_queries_fetch_no_block_bodies() {
    let ds = ep(5, Scale::tiny()).unwrap();
    let case = TempDir::new("sketch-disk");
    let dir = case.path();
    let mut db = build_disk_engine(&ds, dir, 5.0, 16, None);
    ingest_engine(&mut db, &ds, 400);
    let expected = [
        db.sql("SELECT P50_S(*), P99_S(*) FROM Segment").unwrap(),
        db.sql("SELECT COUNT_DISTINCT(Tid) FROM Segment").unwrap(),
        db.sql("SELECT TOP_K_S(3) FROM Segment").unwrap(),
    ];
    drop(db);

    // Reopen at the store level so the cache counters are observable.
    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
    let registry = Arc::new(ModelRegistry::standard());
    let store = DiskStore::open_with(
        dir,
        DiskStoreOptions {
            bulk_write_size: 16,
            memory_budget_bytes: None,
            value_bounds: Some(value_bounds_fn(&catalog, &registry)),
            sketch_feed: Some(sketch_feed(&catalog, &registry)),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        store.block_count() > 1,
        "need several blocks to be meaningful"
    );
    let engine = QueryEngine::new(&catalog, &registry, &store);
    let got = [
        engine
            .sql("SELECT P50_S(*), P99_S(*) FROM Segment")
            .unwrap(),
        engine
            .sql("SELECT COUNT_DISTINCT(Tid) FROM Segment")
            .unwrap(),
        engine.sql("SELECT TOP_K_S(3) FROM Segment").unwrap(),
    ];
    assert_eq!(
        got, expected,
        "sidecar-restored sketches answer identically"
    );
    let stats = store.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 0),
        "sketch queries must not touch the block cache"
    );

    // Control: an exact aggregate over the same store *does* fetch bodies,
    // proving the counters would have caught any sketch-path fetch.
    engine.sql("SELECT AVG(Value) FROM DataPoint").unwrap();
    let stats = store.cache_stats();
    assert!(
        stats.hits + stats.misses > 0,
        "control query fetches blocks"
    );
}

/// Sketch queries are whole-store statistics: filtering, grouping, mixing
/// with exact aggregates, and sketch-less stores are rejected with clear
/// errors instead of silently answering something else.
#[test]
fn invalid_sketch_queries_and_sketchless_stores_error() {
    let ds = ep(3, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, 100);
    for sql in [
        "SELECT P50_S(*) FROM Segment WHERE Tid = 1",
        "SELECT P50_S(*) FROM Segment GROUP BY Tid",
        "SELECT P50_S(*), AVG_S(*) FROM Segment",
        "SELECT Tid, P50_S(*) FROM Segment",
        "SELECT P50_S(*) FROM DataPoint",
        "SELECT TOP_K_S(2), COUNT_DISTINCT(Tid) FROM Segment",
    ] {
        assert!(db.sql(sql).is_err(), "{sql} must be rejected");
    }

    // A store built without a sketch feed cannot answer sketch queries.
    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
    let registry = Arc::new(ModelRegistry::standard());
    let store = modelardb::MemoryStore::new();
    let engine = QueryEngine::new(&catalog, &registry, &store);
    let err = engine.sql("SELECT P50_S(*) FROM Segment").unwrap_err();
    assert!(err.to_string().contains("sketch"), "unhelpful error: {err}");
}

//! Integration: the cluster runtime must agree with the embedded engine on
//! every query class, at any worker count — the distributed execution of
//! Algorithms 5 and 6 (scatter partials, merge at the master) is an
//! implementation detail, never a semantic one.

use std::sync::Arc;

use mdb_bench::{build_engine, catalog_from_dataset, ingest_engine};
use modelardb::{Cluster, CompressionConfig, ErrorBound, ModelRegistry};

const TICKS: u64 = 400;

fn queries() -> Vec<String> {
    vec![
        "SELECT COUNT_S(*) FROM Segment".into(),
        "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid".into(),
        "SELECT Type, AVG_S(*) FROM Segment GROUP BY Type ORDER BY Type".into(),
        "SELECT Entity, MIN_S(*), MAX_S(*) FROM Segment GROUP BY Entity ORDER BY Entity".into(),
        "SELECT Tid, CUBE_SUM_DAY(*) FROM Segment WHERE Tid IN (1,2,5) GROUP BY Tid".into(),
        "SELECT CUBE_AVG_HOUR(*) FROM Segment WHERE Category = 'ProductionMWh'".into(),
        "SELECT SUM(Value) FROM DataPoint WHERE Tid = 3".into(),
    ]
}

#[test]
fn cluster_agrees_with_embedded_engine() {
    let ds = mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap();

    // Embedded reference.
    let mut embedded = build_engine(&ds, true, 5.0);
    ingest_engine(&mut embedded, &ds, TICKS);

    for n_workers in [1usize, 2, 4] {
        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let cluster = Cluster::start(
            catalog,
            Arc::new(ModelRegistry::standard()),
            CompressionConfig {
                error_bound: ErrorBound::relative(5.0),
                ..Default::default()
            },
            n_workers,
        )
        .unwrap();
        for tick in 0..TICKS {
            cluster
                .ingest_row(ds.timestamp(tick), &ds.row(tick))
                .unwrap();
        }
        cluster.flush().unwrap();

        for q in queries() {
            let expected = embedded.sql(&q).unwrap();
            let got = cluster.sql(&q).unwrap();
            assert_eq!(got.columns, expected.columns, "{q} ({n_workers} workers)");
            assert_eq!(
                got.rows.len(),
                expected.rows.len(),
                "{q} ({n_workers} workers)"
            );
            for (a, b) in got.rows.iter().zip(&expected.rows) {
                for (x, y) in a.iter().zip(b) {
                    match (x.as_f64(), y.as_f64()) {
                        (Some(x), Some(y)) => assert!(
                            (x - y).abs() <= 1e-6 * y.abs().max(1.0),
                            "{q} ({n_workers} workers): {x} vs {y}"
                        ),
                        _ => assert_eq!(x, y, "{q} ({n_workers} workers)"),
                    }
                }
            }
        }
        cluster.shutdown().unwrap();
    }
}

#[test]
fn cluster_storage_equals_embedded_storage() {
    // The same groups produce the same segments regardless of placement.
    let ds = mdb_datagen::ep(13, mdb_datagen::Scale::tiny()).unwrap();
    let mut embedded = build_engine(&ds, true, 5.0);
    ingest_engine(&mut embedded, &ds, TICKS);

    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
    let cluster = Cluster::start(
        catalog,
        Arc::new(ModelRegistry::standard()),
        CompressionConfig {
            error_bound: ErrorBound::relative(5.0),
            ..Default::default()
        },
        3,
    )
    .unwrap();
    for tick in 0..TICKS {
        cluster
            .ingest_row(ds.timestamp(tick), &ds.row(tick))
            .unwrap();
    }
    cluster.flush().unwrap();
    let (stats, bytes, segments) = cluster.stats().unwrap();
    assert_eq!(bytes, embedded.storage_bytes());
    assert_eq!(segments, embedded.segment_count());
    assert_eq!(stats.data_points, embedded.stats().data_points);
    cluster.shutdown().unwrap();
}

//! Smoke test for the root facade: the crate surface promised by the README
//! must be reachable both through the `modelardb` crate and through the root
//! `modelardb-repro` re-export, and the minimal build-ingest-query loop must
//! work through those paths alone.

use modelardb::{DimensionSchema, ErrorBound, ModelarDbBuilder, SeriesSpec};

#[test]
fn facade_reexports_are_reachable_from_the_root_crate() {
    // The root package re-exports `modelardb::*`, so the same names must
    // resolve via `modelardb_repro::` — referenced here in type and value
    // position so a dropped re-export fails to compile.
    let _builder: modelardb_repro::ModelarDbBuilder = modelardb_repro::ModelarDbBuilder::new();
    let _spec: modelardb_repro::SeriesSpec = modelardb_repro::SeriesSpec::new("t1", 100);
    let _schema: modelardb_repro::DimensionSchema =
        modelardb_repro::DimensionSchema::from_leaf_up("Location", vec!["Turbine".into()]).unwrap();
    let _bound: modelardb_repro::ErrorBound = modelardb_repro::ErrorBound::relative(1.0);

    // Component-crate re-exports on both paths.
    let _registry = modelardb_repro::ModelRegistry::standard();
    let _config: modelardb::CompressionConfig = modelardb_repro::CompressionConfig::default();
    let _result: modelardb::Result<()> = modelardb_repro::Result::Ok(());
}

#[test]
fn facade_supports_the_minimal_ingest_query_loop() {
    let mut builder = ModelarDbBuilder::new();
    builder.config_mut().compression.error_bound = ErrorBound::relative(5.0);
    builder
        .add_dimension(
            DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()])
                .unwrap(),
        )
        .add_series(SeriesSpec::new("t1", 100).with_members("Location", &["Aalborg", "1"]))
        .add_series(SeriesSpec::new("t2", 100).with_members("Location", &["Aalborg", "2"]))
        .correlate("Location 1");
    let mut db = builder.build().unwrap();

    for tick in 0..200i64 {
        let v = (tick as f32 * 0.05).sin() + 10.0;
        db.ingest_row(tick * 100, &[Some(v), Some(v + 0.01)])
            .unwrap();
    }
    db.flush().unwrap();

    let result = db
        .sql("SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
        .unwrap();
    assert_eq!(result.rows.len(), 2);
    for row in &result.rows {
        assert_eq!(row[1].as_i64().unwrap(), 200);
    }
}

//! The continuous-aggregate pinning harness: serving a bucketed aggregate
//! from the incrementally materialized rollup cells must be **bit-identical**
//! to scanning the segments — for any query shape, any ingestion cadence,
//! any restart, and any cluster layout. The cells are maintained with the
//! same per-(tid, bucket) left fold the bucketed scan uses, so toggling
//! `rollup_serve` may change how many segment bodies are read but never a
//! single output bit. Fully covered buckets are answered without touching
//! the block cache at all (asserted on [`modelardb::CacheStats`]).

use std::sync::Arc;

use proptest::prelude::*;

use mdb_bench::{build_disk_engine, build_engine, catalog_from_dataset, ingest_engine};
use mdb_datagen::{ep, Dataset, Scale};
use mdb_testutil::TempDir;
use modelardb::{
    Cell, Cluster, ClusterConfig, CompressionConfig, Config, ErrorBound, ModelRegistry, ModelarDb,
    QueryResult, StorageSpec,
};

const TICKS: u64 = 400;
const HOUR_MS: i64 = 3_600_000;

/// Bit-level equality: floats compare by `to_bits`, so a `-0.0` vs `0.0` or
/// an association drift that ordinary `==` would forgive still fails.
fn assert_bit_identical(a: &QueryResult, b: &QueryResult, label: &str) {
    assert_eq!(a.columns, b.columns, "{label}: columns");
    assert_eq!(a.rows.len(), b.rows.len(), "{label}: row count");
    for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        for (x, y) in ra.iter().zip(rb) {
            match (x, y) {
                (Cell::Float(fa), Cell::Float(fb)) => {
                    assert_eq!(fa.to_bits(), fb.to_bits(), "{label}: row {i}, {fa} vs {fb}")
                }
                _ => assert_eq!(x, y, "{label}: row {i}"),
            }
        }
    }
}

/// The query panel every fixture is checked against: explicit `CUBE_*`
/// roll-ups at several levels and group-bys, plain aggregates over the whole
/// store, and `TS`-ranged plain aggregates both bucket-aligned (served
/// entirely from cells) and unaligned (cells plus scanned edge buckets).
fn panel(ds: &Dataset) -> Vec<String> {
    let aligned_from = ds.start + HOUR_MS;
    let aligned_to = ds.start + 4 * HOUR_MS - 1;
    let ragged_from = ds.timestamp(37);
    let ragged_to = ds.timestamp(TICKS - 23);
    vec![
        "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment GROUP BY Tid ORDER BY Tid".into(),
        "SELECT CUBE_AVG_HOUR(*) FROM Segment".into(),
        "SELECT Entity, CUBE_MIN_DAY(*), CUBE_MAX_DAY(*) FROM Segment \
         GROUP BY Entity ORDER BY Entity"
            .into(),
        "SELECT CUBE_COUNT_HOUR(*) FROM Segment WHERE Tid IN (1, 3, 5)".into(),
        "SELECT SUM_S(*) FROM Segment".into(),
        "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid".into(),
        format!(
            "SELECT Tid, SUM_S(*), COUNT_S(*) FROM Segment \
             WHERE TS >= {aligned_from} AND TS <= {aligned_to} GROUP BY Tid ORDER BY Tid"
        ),
        format!(
            "SELECT Tid, MIN_S(*), MAX_S(*) FROM Segment \
             WHERE TS >= {ragged_from} AND TS <= {ragged_to} GROUP BY Tid ORDER BY Tid"
        ),
    ]
}

/// Runs `queries` twice on the same engine — rollup serving on, then off —
/// and demands bit-identity, returning the served results.
fn served_equals_scanned(db: &mut ModelarDb, queries: &[String], label: &str) -> Vec<QueryResult> {
    let mut served = Vec::new();
    for q in queries {
        db.set_rollup_serve(true);
        let on = db.sql(q).unwrap();
        db.set_rollup_serve(false);
        let off = db.sql(q).unwrap();
        assert_bit_identical(&on, &off, &format!("{label}: {q}"));
        served.push(on);
    }
    db.set_rollup_serve(true);
    served
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Any aggregate shape, any TS window (aligned or ragged), any flush
    // cadence: the materialized path and the scan produce the same bits.
    #[test]
    fn served_aggregates_are_bit_identical_to_scans(
        func_idx in 0usize..5,
        cube in proptest::bool::ANY,
        level_idx in 0usize..2,
        tids in proptest::collection::btree_set(1u32..=6, 1..4),
        window in 0u64..300,
        span in 1u64..400,
        align in proptest::bool::ANY,
        group_by_tid in proptest::bool::ANY,
        flush_every in 40u64..400,
    ) {
        let ds = ep(7, Scale::tiny()).unwrap();
        let mut db = build_engine(&ds, true, 5.0);
        for tick in 0..TICKS {
            db.ingest_row(ds.timestamp(tick), &ds.row(tick)).unwrap();
            if tick % flush_every == flush_every - 1 {
                db.flush().unwrap();
            }
        }
        db.flush().unwrap();

        let func = ["COUNT", "MIN", "MAX", "SUM", "AVG"][func_idx];
        let agg = if cube {
            let level = ["HOUR", "DAY"][level_idx];
            format!("CUBE_{func}_{level}(*)")
        } else {
            format!("{func}_S(*)")
        };
        let tid_list = tids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let mut from = ds.timestamp(window);
        let mut to = ds.timestamp((window + span).min(TICKS - 1));
        if align {
            // Snap to hour boundaries so every surviving bucket is fully
            // covered and the serve path reads no segment at all.
            from -= from.rem_euclid(HOUR_MS);
            to = to - to.rem_euclid(HOUR_MS) + HOUR_MS - 1;
        }
        let sql = if group_by_tid {
            format!(
                "SELECT Tid, {agg} FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to} GROUP BY Tid ORDER BY Tid"
            )
        } else {
            format!(
                "SELECT {agg} FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to}"
            )
        };
        db.set_rollup_serve(true);
        let on = db.sql(&sql).unwrap();
        db.set_rollup_serve(false);
        let off = db.sql(&sql).unwrap();
        assert_bit_identical(&on, &off, &sql);
    }
}

#[test]
fn panel_is_served_bit_identically() {
    let ds = ep(7, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, TICKS);
    served_equals_scanned(&mut db, &panel(&ds), "memory engine");
}

#[test]
fn restarts_preserve_rollup_answers() {
    // Reopening through the sidecar's rollups section, and through the
    // streaming rescan when the sidecar is gone, must both reproduce the
    // writer's served results bit-for-bit — and keep agreeing with a scan.
    let case = TempDir::new("rollup-restart");
    let dir = case.path();
    let ds = ep(7, Scale::tiny()).unwrap();
    let mut db = build_disk_engine(&ds, dir, 5.0, 32, None);
    for tick in 0..TICKS {
        db.ingest_row(ds.timestamp(tick), &ds.row(tick)).unwrap();
        if tick % 150 == 149 {
            db.flush().unwrap();
        }
    }
    db.flush().unwrap();
    let queries = panel(&ds);
    let want = served_equals_scanned(&mut db, &queries, "writer");
    drop(db);

    let registry = Arc::new(ModelRegistry::standard());
    let config = || {
        let mut config = Config::default();
        config.compression.error_bound = ErrorBound::relative(5.0);
        config.storage = StorageSpec::Disk(dir.to_path_buf());
        config.bulk_write_size = 32;
        config
    };

    // Sidecar intact: the rollup cells are adopted, not rebuilt.
    let mut reopened = ModelarDb::reopen(dir, Arc::clone(&registry), config()).unwrap();
    for (q, want) in queries.iter().zip(&want) {
        assert_bit_identical(
            &reopened.sql(q).unwrap(),
            want,
            &format!("sidecar reopen: {q}"),
        );
    }
    served_equals_scanned(&mut reopened, &queries, "sidecar reopen");
    drop(reopened);

    // Sidecar deleted: the streaming rescan rebuilds the cells from the log.
    std::fs::remove_file(dir.join("segments.idx")).unwrap();
    let mut rebuilt = ModelarDb::reopen(dir, registry, config()).unwrap();
    for (q, want) in queries.iter().zip(&want) {
        assert_bit_identical(
            &rebuilt.sql(q).unwrap(),
            want,
            &format!("rescan reopen: {q}"),
        );
    }
    served_equals_scanned(&mut rebuilt, &queries, "rescan reopen");
}

#[test]
fn fully_covered_queries_read_no_segment_bodies() {
    // A cold reopened disk engine answers whole-bucket aggregates without a
    // single block-cache fetch; the scan path for the same queries fetches.
    let case = TempDir::new("rollup-zero-fetch");
    let dir = case.path();
    let ds = ep(7, Scale::tiny()).unwrap();
    let mut db = build_disk_engine(&ds, dir, 5.0, 32, None);
    ingest_engine(&mut db, &ds, TICKS);
    drop(db);

    let mut config = Config::default();
    config.compression.error_bound = ErrorBound::relative(5.0);
    config.storage = StorageSpec::Disk(dir.to_path_buf());
    config.bulk_write_size = 32;
    let mut db = ModelarDb::reopen(dir, Arc::new(ModelRegistry::standard()), config).unwrap();

    let covered = [
        "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment GROUP BY Tid ORDER BY Tid".to_string(),
        "SELECT CUBE_AVG_DAY(*) FROM Segment".to_string(),
        "SELECT SUM_S(*) FROM Segment".to_string(),
        format!(
            "SELECT Tid, SUM_S(*) FROM Segment WHERE TS >= {} AND TS <= {} \
             GROUP BY Tid ORDER BY Tid",
            ds.start + HOUR_MS,
            ds.start + 3 * HOUR_MS - 1
        ),
    ];
    let before = db.cache_stats();
    let served: Vec<QueryResult> = covered.iter().map(|q| db.sql(q).unwrap()).collect();
    let after = db.cache_stats();
    assert_eq!(
        after.hits, before.hits,
        "served queries must not hit the cache"
    );
    assert_eq!(
        after.misses, before.misses,
        "served queries must not fetch blocks"
    );
    assert_eq!(
        after.bytes_read, before.bytes_read,
        "served queries must not read the log"
    );

    db.set_rollup_serve(false);
    for (q, want) in covered.iter().zip(&served) {
        assert_bit_identical(&db.sql(q).unwrap(), want, q);
    }
    let post = db.cache_stats();
    assert!(
        post.hits + post.misses > after.hits + after.misses,
        "the scan path control must actually fetch blocks"
    );
    assert!(
        !served[0].rows.is_empty(),
        "the served results must be non-trivial"
    );
}

/// Starts a cluster over `catalog` with the shared compression settings and
/// the given worker count / replication factor.
fn start_cluster(
    catalog: &Arc<modelardb::Catalog>,
    n_workers: usize,
    replication_factor: usize,
) -> Cluster {
    let mut config = ClusterConfig::with_compression(CompressionConfig {
        error_bound: ErrorBound::relative(5.0),
        ..Default::default()
    });
    config.replication_factor = replication_factor;
    Cluster::start_with(
        Arc::clone(catalog),
        Arc::new(ModelRegistry::standard()),
        config,
        n_workers,
    )
    .unwrap()
}

fn ingest_cluster(cluster: &Cluster, ds: &Dataset) {
    for tick in 0..TICKS {
        cluster
            .ingest_row(ds.timestamp(tick), &ds.row(tick))
            .unwrap();
    }
    cluster.flush().unwrap();
}

#[test]
fn cluster_serving_matches_the_embedded_scan_at_any_layout() {
    // The embedded engine with serving OFF is the ground truth: a cluster
    // with serving ON (the default) must reproduce it bit-for-bit at every
    // worker count — per-(tid, bucket) partials merge in global gid order,
    // so placement never leaks into the float association.
    let ds = ep(13, Scale::tiny()).unwrap();
    let mut embedded = build_engine(&ds, true, 5.0);
    ingest_engine(&mut embedded, &ds, TICKS);
    let queries = panel(&ds);
    let want = served_equals_scanned(&mut embedded, &queries, "embedded");

    for n_workers in [1usize, 2, 4] {
        let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
        let cluster = start_cluster(&catalog, n_workers, 1);
        ingest_cluster(&cluster, &ds);
        for (q, want) in queries.iter().zip(&want) {
            assert_bit_identical(
                &cluster.sql(q).unwrap(),
                want,
                &format!("{q} ({n_workers} workers)"),
            );
        }
        cluster.shutdown().unwrap();
    }
}

#[test]
fn cluster_rollups_survive_replication_failover_and_membership_changes() {
    let ds = ep(13, Scale::tiny()).unwrap();
    let mut embedded = build_engine(&ds, true, 5.0);
    ingest_engine(&mut embedded, &ds, TICKS);
    let queries = panel(&ds);
    let want = served_equals_scanned(&mut embedded, &queries, "embedded");

    // RF=2: killing a worker promotes replicas; the promoted copies carry
    // the same cells, so served results stay bit-identical to the reference.
    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
    let cluster = start_cluster(&catalog, 3, 2);
    ingest_cluster(&cluster, &ds);
    assert!(cluster.kill_worker(1));
    for (q, want) in queries.iter().zip(&want) {
        assert_bit_identical(&cluster.sql(q).unwrap(), want, &format!("{q} (after kill)"));
    }
    cluster.shutdown().unwrap();

    // Grow then shrink: group handoff re-feeds the receiving store's cells
    // through the ordinary insert path, so answers never change.
    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
    let cluster = start_cluster(&catalog, 2, 1);
    ingest_cluster(&cluster, &ds);
    let added = cluster.add_worker().unwrap();
    for (q, want) in queries.iter().zip(&want) {
        assert_bit_identical(&cluster.sql(q).unwrap(), want, &format!("{q} (after grow)"));
    }
    cluster.remove_worker(added).unwrap();
    for (q, want) in queries.iter().zip(&want) {
        assert_bit_identical(
            &cluster.sql(q).unwrap(),
            want,
            &format!("{q} (after shrink)"),
        );
    }
    cluster.shutdown().unwrap();
}

//! Cache equivalence: the block cache is a performance knob, never a
//! semantics knob. Three disk-backed engines over byte-identical segments —
//! cache capacity zero (every scan re-reads disk), roughly one block per
//! shard (constant eviction), and unbounded (everything stays resident) —
//! must return **bit-identical** SQL aggregates and DataPoint listings for
//! arbitrary time ranges and value predicates, over data with per-series
//! gaps, whole-group gap ticks, and dynamic split/join episodes (the same
//! ingest pattern as `tests/query_equivalence.rs`).

use mdb_testutil::TempDir;
use proptest::prelude::*;

use modelardb::{
    DimensionSchema, ErrorBound, ModelarDb, ModelarDbBuilder, SegmentRecord, SeriesSpec,
    StorageSpec,
};

/// Ticks ingested by [`engines`] (timestamps `t * 100`).
const SJ_TICKS: i64 = 900;
/// Segments per log block.
const BULK_WRITE: usize = 32;

/// Roughly one cached block per shard: enough to exercise hit/evict cycles,
/// far too small to hold the store.
fn one_block_budget() -> u64 {
    (8 * BULK_WRITE * (std::mem::size_of::<SegmentRecord>() + 16)) as u64
}

/// Three engines over byte-identical segments, differing only in block-cache
/// capacity. The ingest mixes per-series gaps, whole-group gap ticks, and a
/// decorrelation phase noisy enough to force dynamic split and join episodes
/// (asserted below). The returned `TempDir`s own the engines' directories:
/// keep them alive as long as the engines, drop the engines first.
fn engines() -> (Vec<TempDir>, Vec<ModelarDb>) {
    let budgets = [Some(0u64), Some(one_block_budget()), None];
    let dirs: Vec<TempDir> = (0..budgets.len())
        .map(|_| TempDir::new("cache-eq"))
        .collect();
    let mut engines: Vec<ModelarDb> = budgets
        .iter()
        .zip(&dirs)
        .map(|(budget, dir)| {
            let mut b = ModelarDbBuilder::new();
            b.config_mut().compression.error_bound = ErrorBound::absolute(0.5);
            b.config_mut().compression.split_fraction = 2.0;
            b.config_mut().bulk_write_size = BULK_WRITE;
            b.config_mut().storage = StorageSpec::Disk(dir.path().to_path_buf());
            b.config_mut().memory_budget_bytes = *budget;
            b.add_dimension(
                DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()])
                    .unwrap(),
            )
            .add_series(SeriesSpec::new("a", 100).with_members("Location", &["Aalborg", "1"]))
            .add_series(SeriesSpec::new("b", 100).with_members("Location", &["Aalborg", "2"]))
            .correlate("Location 1");
            b.build().unwrap()
        })
        .collect();
    let mut x = 99u32;
    for t in 0..SJ_TICKS {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        let noise = (x >> 16) as f32 / 65536.0;
        let row = if (150..320).contains(&t) {
            [Some(5.0 + noise * 0.2), Some(500.0 + noise * 120.0)]
        } else if t % 97 == 13 {
            [None, None]
        } else {
            [(t % 37 != 0).then_some(5.0), Some(5.1)]
        };
        for db in &mut engines {
            db.ingest_row(t * 100, &row).unwrap();
        }
    }
    for db in &mut engines {
        db.flush().unwrap();
    }
    let stats = engines[0].stats();
    assert!(stats.splits >= 1, "fixture must exercise dynamic splits");
    assert!(stats.joins >= 1, "fixture must exercise dynamic joins");
    let reference = engines[0].segments().unwrap();
    for db in &engines[1..] {
        assert_eq!(
            db.segments().unwrap(),
            reference,
            "all engines must hold byte-identical segments"
        );
    }
    (dirs, engines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn aggregates_are_bit_identical_across_cache_capacities(
        func_idx in 0usize..5,
        tids in proptest::collection::btree_set(1u32..=2, 1..3),
        window in 0i64..850,
        span in 1i64..600,
        group_by_tid in proptest::bool::ANY,
    ) {
        let (_dirs, engines) = engines();
        let func = ["COUNT", "MIN", "MAX", "SUM", "AVG"][func_idx];
        let tid_list = tids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let from = window * 100;
        let to = (window + span).min(SJ_TICKS - 1) * 100;
        let sql = if group_by_tid {
            format!(
                "SELECT Tid, {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to} GROUP BY Tid ORDER BY Tid"
            )
        } else {
            format!(
                "SELECT {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to}"
            )
        };
        let reference = engines[0].sql(&sql).unwrap();
        for db in &engines[1..] {
            let got = db.sql(&sql).unwrap();
            prop_assert_eq!(&got.columns, &reference.columns);
            prop_assert_eq!(&got.rows, &reference.rows, "{}", sql);
        }
        // A second pass must agree with the first: the zero-capacity engine
        // re-reads disk, the bounded one hits a churned cache.
        for db in &engines {
            prop_assert_eq!(&db.sql(&sql).unwrap().rows, &reference.rows, "second pass: {}", sql);
        }
        drop(engines);
    }

    #[test]
    fn value_filters_and_listings_are_bit_identical_across_cache_capacities(
        bound in -20.0f64..520.0,
        ge in proptest::bool::ANY,
        window in 0i64..850,
        span in 1i64..300,
    ) {
        let (_dirs, engines) = engines();
        let from = window * 100;
        let to = (window + span).min(SJ_TICKS - 1) * 100;
        let op = if ge { ">=" } else { "<" };
        for sql in [
            format!(
                "SELECT Tid, SUM_S(*), COUNT_S(*) FROM Segment WHERE Value {op} {bound:.3} \
                 AND TS >= {from} GROUP BY Tid ORDER BY Tid"
            ),
            format!(
                "SELECT Tid, TS, Value FROM DataPoint WHERE TS >= {from} AND TS <= {to}"
            ),
            format!(
                "SELECT Tid, TS, Value FROM DataPoint WHERE Value {op} {bound:.3} \
                 AND TS >= {from} AND TS <= {to}"
            ),
        ] {
            let reference = engines[0].sql(&sql).unwrap();
            for db in &engines[1..] {
                let got = db.sql(&sql).unwrap();
                prop_assert_eq!(&got.columns, &reference.columns);
                prop_assert_eq!(&got.rows, &reference.rows, "{}", sql);
            }
        }
        drop(engines);
    }
}

//! Cache equivalence: the block cache, the prefetcher, and the block format
//! are performance knobs, never semantics knobs. Twelve disk-backed engines
//! over byte-identical segments — every combination of cache capacity zero
//! (every scan re-reads disk), roughly one block per shard (constant
//! eviction), and unbounded (everything stays resident), × prefetch off/on,
//! × v1 row-major and v2 columnar block layouts — must return
//! **bit-identical** SQL aggregates and DataPoint listings for arbitrary
//! time ranges and value predicates, over data with per-series gaps,
//! whole-group gap ticks, and dynamic split/join episodes (the same ingest
//! pattern as `tests/query_equivalence.rs`).

use mdb_testutil::TempDir;
use proptest::prelude::*;

use modelardb::{
    BlockFormat, DimensionSchema, ErrorBound, ModelarDb, ModelarDbBuilder, SeriesSpec, StorageSpec,
};

/// Ticks ingested by [`engines`] (timestamps `t * 100`).
const SJ_TICKS: i64 = 900;
/// Segments per log block.
const BULK_WRITE: usize = 32;

/// The deterministic ingest row for tick `t` given the PRNG state `x`:
/// per-series gaps, whole-group gap ticks, and a decorrelation phase noisy
/// enough to force dynamic split and join episodes (asserted in `engines`).
fn row(t: i64, x: &mut u32) -> [Option<f32>; 2] {
    *x = x.wrapping_mul(1103515245).wrapping_add(12345);
    let noise = (*x >> 16) as f32 / 65536.0;
    if (150..320).contains(&t) {
        [Some(5.0 + noise * 0.2), Some(500.0 + noise * 120.0)]
    } else if t % 97 == 13 {
        [None, None]
    } else {
        [(t % 37 != 0).then_some(5.0), Some(5.1)]
    }
}

fn build(dir: &TempDir, budget: Option<u64>, prefetch: usize, format: BlockFormat) -> ModelarDb {
    let mut b = ModelarDbBuilder::new();
    b.config_mut().compression.error_bound = ErrorBound::absolute(0.5);
    b.config_mut().compression.split_fraction = 2.0;
    b.config_mut().bulk_write_size = BULK_WRITE;
    b.config_mut().storage = StorageSpec::Disk(dir.path().to_path_buf());
    b.config_mut().memory_budget_bytes = budget;
    b.config_mut().prefetch_depth = prefetch;
    b.config_mut().block_format = format;
    b.add_dimension(
        DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()]).unwrap(),
    )
    .add_series(SeriesSpec::new("a", 100).with_members("Location", &["Aalborg", "1"]))
    .add_series(SeriesSpec::new("b", 100).with_members("Location", &["Aalborg", "2"]))
    .correlate("Location 1");
    b.build().unwrap()
}

fn ingest(db: &mut ModelarDb) {
    let mut x = 99u32;
    for t in 0..SJ_TICKS {
        let r = row(t, &mut x);
        db.ingest_row(t * 100, &r).unwrap();
    }
    db.flush().unwrap();
}

/// Twelve engines over byte-identical segments: cache budget {0, ~one block
/// per shard, unbounded} × prefetch {off, on} × block format {v1, v2}. The
/// one-block budget is derived from the reference engine's actual on-disk
/// bytes — cache accounting charges stored file bytes, so the budget must be
/// in the same unit to mean "hit/evict churn" rather than "cache nothing" or
/// "cache everything". The returned `TempDir`s own the engines' directories:
/// keep them alive as long as the engines, drop the engines first.
fn engines() -> (Vec<TempDir>, Vec<ModelarDb>) {
    // The reference engine is built first so the churn budget below can be
    // measured from its segment log instead of guessed from record sizes.
    let reference_dir = TempDir::new("cache-eq");
    let mut reference = build(&reference_dir, None, 0, BlockFormat::V2);
    ingest(&mut reference);
    let stats = reference.stats();
    assert!(stats.splits >= 1, "fixture must exercise dynamic splits");
    assert!(stats.joins >= 1, "fixture must exercise dynamic joins");
    let log_len = std::fs::metadata(reference_dir.path().join("segments.log"))
        .unwrap()
        .len();
    let segments = reference.segments().unwrap();
    // ~8 blocks of stored bytes: one per cache shard, so every scan cycles
    // through hits and evictions without degenerating to either extreme.
    let one_block_budget = 8 * log_len * BULK_WRITE as u64 / segments.len() as u64;

    let mut dirs = vec![reference_dir];
    let mut engines = vec![reference];
    for budget in [Some(0u64), Some(one_block_budget), None] {
        for prefetch in [0usize, 2] {
            for format in [BlockFormat::V1, BlockFormat::V2] {
                if (budget, prefetch, format) == (None, 0, BlockFormat::V2) {
                    continue; // the reference engine already covers this cell
                }
                let dir = TempDir::new("cache-eq");
                let mut db = build(&dir, budget, prefetch, format);
                ingest(&mut db);
                assert_eq!(
                    db.segments().unwrap(),
                    segments,
                    "all engines must hold byte-identical segments"
                );
                dirs.push(dir);
                engines.push(db);
            }
        }
    }
    (dirs, engines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn aggregates_are_bit_identical_across_cache_capacities(
        func_idx in 0usize..5,
        tids in proptest::collection::btree_set(1u32..=2, 1..3),
        window in 0i64..850,
        span in 1i64..600,
        group_by_tid in proptest::bool::ANY,
    ) {
        let (_dirs, engines) = engines();
        let func = ["COUNT", "MIN", "MAX", "SUM", "AVG"][func_idx];
        let tid_list = tids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let from = window * 100;
        let to = (window + span).min(SJ_TICKS - 1) * 100;
        let sql = if group_by_tid {
            format!(
                "SELECT Tid, {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to} GROUP BY Tid ORDER BY Tid"
            )
        } else {
            format!(
                "SELECT {func}_S(*) FROM Segment WHERE Tid IN ({tid_list}) \
                 AND TS >= {from} AND TS <= {to}"
            )
        };
        let reference = engines[0].sql(&sql).unwrap();
        for db in &engines[1..] {
            let got = db.sql(&sql).unwrap();
            prop_assert_eq!(&got.columns, &reference.columns);
            prop_assert_eq!(&got.rows, &reference.rows, "{}", sql);
        }
        // A second pass must agree with the first: the zero-capacity engine
        // re-reads disk, the bounded one hits a churned cache.
        for db in &engines {
            prop_assert_eq!(&db.sql(&sql).unwrap().rows, &reference.rows, "second pass: {}", sql);
        }
        drop(engines);
    }

    #[test]
    fn value_filters_and_listings_are_bit_identical_across_cache_capacities(
        bound in -20.0f64..520.0,
        ge in proptest::bool::ANY,
        window in 0i64..850,
        span in 1i64..300,
    ) {
        let (_dirs, engines) = engines();
        let from = window * 100;
        let to = (window + span).min(SJ_TICKS - 1) * 100;
        let op = if ge { ">=" } else { "<" };
        for sql in [
            format!(
                "SELECT Tid, SUM_S(*), COUNT_S(*) FROM Segment WHERE Value {op} {bound:.3} \
                 AND TS >= {from} GROUP BY Tid ORDER BY Tid"
            ),
            format!(
                "SELECT Tid, TS, Value FROM DataPoint WHERE TS >= {from} AND TS <= {to}"
            ),
            format!(
                "SELECT Tid, TS, Value FROM DataPoint WHERE Value {op} {bound:.3} \
                 AND TS >= {from} AND TS <= {to}"
            ),
        ] {
            let reference = engines[0].sql(&sql).unwrap();
            for db in &engines[1..] {
                let got = db.sql(&sql).unwrap();
                prop_assert_eq!(&got.columns, &reference.columns);
                prop_assert_eq!(&got.rows, &reference.rows, "{}", sql);
            }
        }
        drop(engines);
    }
}

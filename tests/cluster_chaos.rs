//! Chaos harness: workers are killed at random points mid-ingest — silently
//! (the thread just stops, like a machine losing power) or announced — and
//! the cluster must keep its promises anyway.
//!
//! At replication factor 2, losing any single worker at any moment must be
//! invisible in query results: the master promotes the surviving replica,
//! ingestion continues, and every SQL result is **bit-identical** to a run
//! that never failed (per-group partials merged in global gid order make
//! results placement-independent). At replication factor 1 the data is
//! gone — the run must *say so* through [`modelardb::Cluster::health`]
//! instead of failing silently, while queries keep answering from the
//! survivors. Membership changes get the same treatment: `add_worker` /
//! `remove_worker` ship whole groups between disk-backed workers and must
//! preserve results bit-for-bit, across the handoff *and* across a restart
//! over the grown cluster's directory.

use std::sync::Arc;

use mdb_bench::catalog_from_dataset;
use mdb_datagen::{Dataset, Scale};
use mdb_testutil::TempDir;
use proptest::prelude::*;

use modelardb::{
    Catalog, Cluster, ClusterConfig, CompressionConfig, ErrorBound, ModelRegistry, QueryResult,
    WorkerState,
};

const TICKS: u64 = 240;

const QUERIES: [&str; 4] = [
    "SELECT COUNT_S(*) FROM Segment",
    "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
    "SELECT Entity, AVG_S(*) FROM Segment GROUP BY Entity ORDER BY Entity",
    "SELECT Tid, CUBE_SUM_DAY(*) FROM Segment WHERE Tid IN (1, 2) GROUP BY Tid",
];

fn dataset() -> (Dataset, Arc<Catalog>) {
    let ds = mdb_datagen::ep(7, Scale::tiny()).unwrap();
    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec()).unwrap();
    (ds, catalog)
}

fn start(
    catalog: &Arc<Catalog>,
    n_workers: usize,
    replication_factor: usize,
    storage_dir: Option<&std::path::Path>,
) -> Cluster {
    let mut config = ClusterConfig::with_compression(CompressionConfig {
        error_bound: ErrorBound::relative(5.0),
        ..Default::default()
    });
    config.replication_factor = replication_factor;
    config.storage_dir = storage_dir.map(|p| p.to_path_buf());
    // Small blocks so disk-backed cases exercise multi-block handoff.
    config.bulk_write_size = 16;
    Cluster::start_with(
        Arc::clone(catalog),
        Arc::new(ModelRegistry::standard()),
        config,
        n_workers,
    )
    .unwrap()
}

fn ingest_range(cluster: &Cluster, ds: &Dataset, ticks: std::ops::Range<u64>) {
    for tick in ticks {
        cluster
            .ingest_row(ds.timestamp(tick), &ds.row(tick))
            .unwrap();
    }
}

/// Flush, tolerating the one error that *reports* a silent death (the master
/// only learns of a crashed worker when it next talks to it).
fn flush_settling(cluster: &Cluster) {
    for _ in 0..4 {
        if cluster.flush().is_ok() {
            return;
        }
    }
    cluster.flush().unwrap();
}

fn results(cluster: &Cluster) -> Vec<QueryResult> {
    QUERIES.iter().map(|q| cluster.sql(q).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // RF=2: kill any worker, at any tick, silently or announced — every
    // query result equals the never-failed run bit-for-bit.
    #[test]
    fn replicated_cluster_survives_any_single_worker_death_mid_ingest(
        n_workers in 2usize..5,
        victim_frac in 0.0f64..1.0,
        kill_frac in 0.0f64..1.0,
        silent in proptest::bool::ANY,
    ) {
        let (ds, catalog) = dataset();
        let baseline = start(&catalog, n_workers, 2, None);
        ingest_range(&baseline, &ds, 0..TICKS);
        baseline.flush().unwrap();
        let want = results(&baseline);
        baseline.shutdown().unwrap();

        let cluster = start(&catalog, n_workers, 2, None);
        let victim = ((n_workers as f64 * victim_frac) as usize).min(n_workers - 1);
        let kill_tick = (TICKS as f64 * kill_frac) as u64;
        ingest_range(&cluster, &ds, 0..kill_tick);
        if silent {
            prop_assert!(cluster.crash_worker(victim));
        } else {
            prop_assert!(cluster.kill_worker(victim));
        }
        // Ingestion continues: the survivor of each of the victim's groups
        // accepts the batches; a silent death is declared at the first send
        // the master attempts on the dead channel.
        ingest_range(&cluster, &ds, kill_tick..TICKS);
        flush_settling(&cluster);

        let health = cluster.health();
        prop_assert_eq!(health.workers[victim].state, WorkerState::Dead);
        prop_assert!(health.lost_gids.is_empty(), "rf=2 must lose nothing");
        prop_assert!(health.is_degraded());
        let got = results(&cluster);
        for ((q, want), got) in QUERIES.iter().zip(&want).zip(&got) {
            prop_assert_eq!(want, got, "{} diverged after killing worker {}", q, victim);
        }
        cluster.shutdown().unwrap();
    }

    // RF=1: the data is gone and the cluster must say so — dead worker and
    // lost groups in the health report, refused ingestion pointing at it —
    // while queries keep answering from the survivors.
    #[test]
    fn unreplicated_worker_death_is_reported_not_hidden(
        n_workers in 2usize..5,
        victim_frac in 0.0f64..1.0,
        kill_frac in 0.0f64..1.0,
    ) {
        let (ds, catalog) = dataset();
        let cluster = start(&catalog, n_workers, 1, None);
        let victim = ((n_workers as f64 * victim_frac) as usize).min(n_workers - 1);
        let kill_tick = 1 + ((TICKS - 1) as f64 * kill_frac) as u64;
        let victim_held = cluster.assignment()[victim].clone();
        ingest_range(&cluster, &ds, 0..kill_tick);
        prop_assert!(cluster.kill_worker(victim));

        let health = cluster.health();
        prop_assert_eq!(health.workers[victim].state, WorkerState::Dead);
        prop_assert_eq!(&health.lost_gids, &victim_held, "every group died with its only holder");
        prop_assert!(health.is_degraded());

        if !victim_held.is_empty() {
            // Further rows touching a lost group are refused, with a pointer
            // at the health report.
            let refused = (kill_tick..TICKS)
                .map(|t| cluster.ingest_row(ds.timestamp(t), &ds.row(t)))
                .filter_map(|r| r.err())
                .next()
                .expect("ingesting into lost groups must error");
            prop_assert!(
                refused.to_string().contains("health"),
                "error must point at Cluster::health(): {}", refused
            );
        }
        flush_settling(&cluster);
        // Degraded but correct: the survivors still answer.
        for q in QUERIES {
            cluster.sql(q).unwrap();
        }
        cluster.shutdown().unwrap();
    }
}

/// Disk-backed elasticity: grow, rebalance, shrink — results must stay
/// bit-identical through every handoff and across a restart of the grown
/// cluster (the manifest routes around segments left behind in source logs).
#[test]
fn membership_changes_preserve_results_across_restarts() {
    let dir = TempDir::new("chaos-membership");
    let (ds, catalog) = dataset();
    let cluster = start(&catalog, 2, 1, Some(dir.path()));
    ingest_range(&cluster, &ds, 0..TICKS / 2);
    cluster.flush().unwrap();
    let want = results(&cluster);

    // Grow: the new worker must actually take over some groups.
    let added = cluster.add_worker().unwrap();
    assert_eq!(added, 2);
    let moved = cluster.assignment()[added].clone();
    assert!(!moved.is_empty(), "add_worker must rebalance ≥ 1 group");
    assert_eq!(results(&cluster), want, "handoff changed results");

    // The moved groups keep ingesting on their new holder.
    ingest_range(&cluster, &ds, TICKS / 2..TICKS);
    cluster.flush().unwrap();
    let want = results(&cluster);
    cluster.shutdown().unwrap();

    // Restart over the grown directory: the manifest restores the
    // post-handoff placement (and skips the segments the donors left
    // behind), so results are bit-identical.
    let reopened = start(&catalog, 3, 1, Some(dir.path()));
    assert_eq!(reopened.assignment()[added], moved);
    assert_eq!(results(&reopened), want, "restart changed results");

    // Shrink: decommission worker 0; its groups hand off, nothing is lost.
    reopened.remove_worker(0).unwrap();
    let health = reopened.health();
    assert_eq!(health.workers[0].state, WorkerState::Removed);
    assert!(health.workers[0].hosted_gids.is_empty());
    assert!(health.lost_gids.is_empty());
    assert_eq!(results(&reopened), want, "decommission changed results");
    reopened.shutdown().unwrap();

    // And the shrunken placement also survives a restart.
    let again = start(&catalog, 3, 1, Some(dir.path()));
    assert_eq!(again.health().workers[0].state, WorkerState::Removed);
    assert_eq!(results(&again), want, "second restart changed results");
    again.shutdown().unwrap();
}

//! Integration checks for the *shapes* of the paper's evaluation (Section
//! 7): who wins and in which regime, on the synthetic EP/EH data sets. The
//! exact factors live in EXPERIMENTS.md; these tests pin the qualitative
//! claims so regressions in any crate show up as failures here.

use mdb_bench::{baseline_stores, build_engine, ingest_baseline, ingest_engine};
use mdb_datagen::{eh, ep, Scale};

fn scale() -> Scale {
    Scale {
        clusters: 3,
        series_per_cluster: 4,
        ticks: 1_500,
    }
}

/// Figure 14's headline: on the correlated EP data set with a bound,
/// ModelarDBv2 (MMGC) stores less than every baseline format and less than
/// ModelarDBv1 (MMC).
#[test]
fn ep_storage_shape_mmgc_wins() {
    let ds = ep(42, scale()).unwrap();
    let ticks = ds.scale.ticks;
    let mut v2 = build_engine(&ds, true, 10.0);
    ingest_engine(&mut v2, &ds, ticks);
    let mut v1 = build_engine(&ds, false, 10.0);
    ingest_engine(&mut v1, &ds, ticks);
    assert!(
        v2.storage_bytes() < v1.storage_bytes(),
        "MMGC {} must beat MMC {}",
        v2.storage_bytes(),
        v1.storage_bytes()
    );
    for mut store in baseline_stores() {
        ingest_baseline(store.as_mut(), &ds, ticks);
        assert!(
            v2.storage_bytes() < store.size_bytes(),
            "MMGC {} must beat {} at {}",
            v2.storage_bytes(),
            store.name(),
            store.size_bytes()
        );
    }
}

/// Figure 14/15: higher error bounds never cost more storage.
#[test]
fn storage_is_monotone_in_the_error_bound() {
    for ds in [ep(42, scale()).unwrap(), eh(42, scale()).unwrap()] {
        let mut previous = u64::MAX;
        for pct in [0.0, 1.0, 5.0, 10.0] {
            let mut db = build_engine(&ds, true, pct);
            ingest_engine(&mut db, &ds, ds.scale.ticks);
            assert!(
                db.storage_bytes() <= previous,
                "{}: {pct}% grew the store: {} > {previous}",
                ds.name,
                db.storage_bytes()
            );
            previous = db.storage_bytes();
        }
    }
}

/// Figure 15's contrast: on the weakly correlated EH data set with a low
/// bound, grouping buys little — v1 and v2 are close (the paper reports v1
/// slightly ahead below 10%) — while EP shows a large MMGC advantage.
#[test]
fn eh_grouping_advantage_is_small_at_low_bounds() {
    let ds = eh(42, scale()).unwrap();
    let ticks = ds.scale.ticks;
    let mut v2 = build_engine(&ds, true, 1.0);
    ingest_engine(&mut v2, &ds, ticks);
    let mut v1 = build_engine(&ds, false, 1.0);
    ingest_engine(&mut v1, &ds, ticks);
    let ratio = v2.storage_bytes() as f64 / v1.storage_bytes() as f64;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "EH at 1% should be near parity, got v2/v1 = {ratio:.2}"
    );

    let ds = ep(42, scale()).unwrap();
    let mut v2 = build_engine(&ds, true, 10.0);
    ingest_engine(&mut v2, &ds, ticks);
    let mut v1 = build_engine(&ds, false, 10.0);
    ingest_engine(&mut v1, &ds, ticks);
    let ep_ratio = v2.storage_bytes() as f64 / v1.storage_bytes() as f64;
    assert!(
        ep_ratio < 0.75,
        "EP at 10% should show a clear MMGC win, got {ep_ratio:.2}"
    );
}

/// Figures 16–17: the model mix shifts with the error bound — lossless
/// Gorilla dominates at 0% and the lossy models take over as the bound
/// grows (PMC/Swing shares strictly increase from 0% to 10% on EP).
#[test]
fn model_mix_shifts_with_the_bound() {
    let ds = ep(42, scale()).unwrap();
    let share_of = |pct: f64| -> (f64, f64) {
        let mut db = build_engine(&ds, true, pct);
        ingest_engine(&mut db, &ds, ds.scale.ticks);
        let shares = db.stats().model_shares();
        let gorilla = shares.iter().find(|(n, _)| n == "Gorilla").unwrap().1;
        let lossy: f64 = shares
            .iter()
            .filter(|(n, _)| n != "Gorilla")
            .map(|(_, s)| *s)
            .sum();
        (gorilla, lossy)
    };
    let (g0, l0) = share_of(0.0);
    let (g10, l10) = share_of(10.0);
    assert!(
        g0 > 50.0,
        "lossless bound must rely on Gorilla, got {g0:.1}%"
    );
    assert!(
        l10 > l0,
        "lossy models must gain share with the bound: {l0:.1}% -> {l10:.1}%"
    );
    assert!(
        g10 < g0,
        "Gorilla must lose share with the bound: {g0:.1}% -> {g10:.1}%"
    );
}

/// Figure 13's online-analytics column: ModelarDB and the stores that
/// support it answer queries mid-ingestion; the columnar files do not.
#[test]
fn online_analytics_support_matches_the_paper() {
    let expectations = [
        ("InfluxDB-like", true),
        ("Cassandra-like", true),
        ("Parquet-like", false),
        ("ORC-like", false),
    ];
    for (store, &(name, online)) in baseline_stores().iter().zip(&expectations) {
        assert_eq!(store.name(), name);
        assert_eq!(store.supports_online_analytics(), online, "{name}");
    }
    // ModelarDB itself: segments emitted so far are queryable before flush.
    let ds = ep(42, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    for tick in 0..400 {
        db.ingest_row(ds.timestamp(tick), &ds.row(tick)).unwrap();
    }
    // No flush: finished segments are already visible.
    let r = db.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
    assert!(r.rows[0][0].as_i64().unwrap() > 0);
}

/// The Section 5.2 experiment shape: group compression reduces storage for
/// correlated series, and the reduction grows with the error bound.
#[test]
fn mgc_reduction_grows_with_the_bound() {
    let ds = ep(
        42,
        Scale {
            clusters: 1,
            series_per_cluster: 3,
            ticks: 4_000,
        },
    )
    .unwrap();
    let mut reductions = Vec::new();
    for pct in [1.0, 5.0, 10.0] {
        let mut v1 = build_engine(&ds, false, pct);
        ingest_engine(&mut v1, &ds, ds.scale.ticks);
        let mut v2 = build_engine(&ds, true, pct);
        ingest_engine(&mut v2, &ds, ds.scale.ticks);
        reductions.push(1.0 - v2.storage_bytes() as f64 / v1.storage_bytes() as f64);
    }
    assert!(
        reductions[0] > 0.0,
        "even 1% must show a reduction: {reductions:?}"
    );
    assert!(
        reductions[2] >= reductions[0] - 0.05,
        "reduction should not shrink materially with the bound: {reductions:?}"
    );
}

//! End-to-end integration: data generator → partitioner → MMGC ingestion →
//! segment store → SQL, with the paper's core guarantee checked against the
//! raw generated values: every reconstructed data point is within the
//! user-defined error bound of the value that was ingested.

use mdb_bench::{build_engine, ingest_engine};
use mdb_datagen::{eh, ep, Scale};
use modelardb::ErrorBound;

const TICKS: u64 = 400;

#[test]
fn every_reconstructed_point_is_within_the_error_bound() {
    for pct in [1.0, 5.0, 10.0] {
        let bound = ErrorBound::relative(pct);
        for ds in [ep(9, Scale::tiny()).unwrap(), eh(9, Scale::tiny()).unwrap()] {
            let mut db = build_engine(&ds, true, pct);
            ingest_engine(&mut db, &ds, TICKS);
            // Pull every stored point back through the Data Point View.
            let result = db.sql("SELECT Tid, TS, Value FROM DataPoint").unwrap();
            let mut seen = 0u64;
            for row in &result.rows {
                let tid = row[0].as_i64().unwrap() as u32;
                let ts = row[1].as_i64().unwrap();
                let value = row[2].as_f64().unwrap() as f32;
                let tick = ((ts - ds.start) / ds.profile.si_ms) as u64;
                let original = ds
                    .value(tid, tick)
                    .expect("stored point must exist in the source");
                assert!(
                    bound.within(value, original),
                    "{} tid {tid} tick {tick}: {value} vs {original} at {pct}%",
                    ds.name
                );
                seen += 1;
            }
            assert_eq!(
                seen,
                ds.count_data_points(TICKS),
                "{}: no point lost or invented",
                ds.name
            );
        }
    }
}

#[test]
fn lossless_mode_reproduces_values_exactly() {
    let ds = ep(3, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 0.0);
    ingest_engine(&mut db, &ds, 200);
    let result = db
        .sql("SELECT Tid, TS, Value FROM DataPoint WHERE Tid = 1")
        .unwrap();
    assert!(!result.rows.is_empty());
    for row in &result.rows {
        let ts = row[1].as_i64().unwrap();
        let value = row[2].as_f64().unwrap() as f32;
        let tick = ((ts - ds.start) / ds.profile.si_ms) as u64;
        let original = ds.value(1, tick).unwrap();
        assert_eq!(value.to_bits(), original.to_bits(), "tick {tick}");
    }
}

#[test]
fn segment_view_aggregates_match_data_point_view() {
    let ds = ep(17, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, TICKS);
    for (sv, dpv) in [
        (
            "SELECT SUM_S(*) FROM Segment",
            "SELECT SUM(Value) FROM DataPoint",
        ),
        (
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT COUNT(Value) FROM DataPoint",
        ),
        (
            "SELECT AVG_S(*) FROM Segment WHERE Tid IN (1,2,3)",
            "SELECT AVG(Value) FROM DataPoint WHERE Tid IN (1,2,3)",
        ),
        (
            "SELECT MIN_S(*) FROM Segment WHERE Tid = 2",
            "SELECT MIN(Value) FROM DataPoint WHERE Tid = 2",
        ),
        (
            "SELECT MAX_S(*) FROM Segment WHERE Tid = 2",
            "SELECT MAX(Value) FROM DataPoint WHERE Tid = 2",
        ),
    ] {
        let a = db.sql(sv).unwrap().rows[0][0].as_f64().unwrap();
        let b = db.sql(dpv).unwrap().rows[0][0].as_f64().unwrap();
        assert!(
            (a - b).abs() <= 1e-3 * b.abs().max(1.0),
            "{sv}: segment view {a} vs data point view {b}"
        );
    }
}

#[test]
fn cube_rollup_partitions_the_plain_aggregate() {
    let ds = ep(23, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, TICKS);
    let total = db.sql("SELECT SUM_S(*) FROM Segment").unwrap().rows[0][0]
        .as_f64()
        .unwrap();
    for level in ["HOUR", "DAY", "MONTH", "YEAR"] {
        let r = db
            .sql(&format!("SELECT CUBE_SUM_{level}(*) FROM Segment"))
            .unwrap();
        let sum: f64 = r.rows.iter().map(|row| row[1].as_f64().unwrap()).sum();
        assert!(
            (sum - total).abs() <= 1e-6 * total.abs().max(1.0),
            "{level}: buckets {sum} vs total {total}"
        );
    }
}

#[test]
fn dimension_filters_equal_explicit_tid_filters() {
    let ds = ep(29, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 5.0);
    ingest_engine(&mut db, &ds, TICKS);
    // entity0's meters are tids 1..=3 under Scale::tiny (3 per cluster).
    let by_member = db
        .sql("SELECT SUM_S(*) FROM Segment WHERE Entity = 'entity0'")
        .unwrap()
        .rows[0][0]
        .as_f64()
        .unwrap();
    let by_tids = db
        .sql("SELECT SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3)")
        .unwrap()
        .rows[0][0]
        .as_f64()
        .unwrap();
    assert!(
        (by_member - by_tids).abs() < 1e-9,
        "{by_member} vs {by_tids}"
    );
}

#[test]
fn point_queries_return_the_right_single_point() {
    let ds = eh(31, Scale::tiny()).unwrap();
    let mut db = build_engine(&ds, true, 10.0);
    ingest_engine(&mut db, &ds, TICKS);
    let bound = ErrorBound::relative(10.0);
    for tick in [3u64, 77, 200, 399] {
        let Some(original) = ds.value(2, tick) else {
            continue;
        };
        let ts = ds.timestamp(tick);
        let r = db
            .sql(&format!(
                "SELECT Value FROM DataPoint WHERE Tid = 2 AND TS = {ts}"
            ))
            .unwrap();
        assert_eq!(r.rows.len(), 1, "tick {tick}");
        let got = r.rows[0][0].as_f64().unwrap() as f32;
        assert!(
            bound.within(got, original),
            "tick {tick}: {got} vs {original}"
        );
    }
}

//! Offline shim for `proptest`.
//!
//! Covers the surface this workspace's property tests use: the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), `prop_assert!`/
//! `prop_assert_eq!`, range and `ANY` strategies, tuples,
//! `collection::{vec, btree_set}`, and `bool::weighted`.
//!
//! Differences from the real crate: cases are sampled from a seed derived
//! deterministically from the test name (reproducible across runs), and
//! there is **no shrinking** — a failing case panics with the sampled
//! values via the assertion message instead of a minimized counterexample.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub use rand::Rng;

/// Per-test-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Error type property bodies may `return Err(...)` with; the shim's
/// `prop_assert*` macros panic instead, so this mostly types `return Ok(())`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SmallRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategies!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
));

/// `&str` patterns are regex-like string strategies, as in the real crate.
///
/// The shim supports the subset used here: literal characters, character
/// classes (`[a-z0-9_]`, with ranges), the escapes `\d`/`\w`/`\\`, and the
/// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?` (unbounded repetition caps at
/// 8). Unsupported syntax panics with a clear message.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut SmallRng) -> String {
        string_pattern::sample(self, rng)
    }
}

mod string_pattern {
    use rand::rngs::SmallRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        /// Inclusive character ranges; a single char is a one-char range.
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().unwrap_or_else(|| {
                            panic!("unterminated character class in pattern {pattern:?}")
                        });
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().unwrap_or_else(|| {
                                panic!("unterminated range in pattern {pattern:?}")
                            });
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => match chars.next() {
                    Some('d') => Atom::Class(vec![('0', '9')]),
                    Some('w') => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    Some(escaped) => Atom::Literal(escaped),
                    None => panic!("dangling backslash in pattern {pattern:?}"),
                },
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    panic!("unsupported regex syntax {c:?} in pattern {pattern:?} (shim subset)")
                }
                literal => Atom::Literal(literal),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad {m,n} quantifier"),
                            n.trim().parse().expect("bad {m,n} quantifier"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub(crate) fn sample(pattern: &str, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                                .expect("class range spans invalid chars"),
                        );
                    }
                }
            }
        }
        out
    }
}

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategies, mirroring `proptest::num::<type>::ANY`.
pub mod num {
    use std::marker::PhantomData;

    /// Samples the full domain of `T` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct NumAny<T>(PhantomData<T>);

    macro_rules! any_module {
        ($($module:ident => $ty:ty),* $(,)?) => {
            $(
                pub mod $module {
                    pub const ANY: super::NumAny<$ty> = super::NumAny(std::marker::PhantomData);

                    impl crate::Strategy for super::NumAny<$ty> {
                        type Value = $ty;
                        fn sample(&self, rng: &mut rand::rngs::SmallRng) -> $ty {
                            rand::Rng::gen(rng)
                        }
                    }
                }
            )*
        };
    }

    any_module!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize,
        f32 => f32, f64 => f64,
    );
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// `true` with the given probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    /// Strategy producing `true` with probability `probability`.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted { probability }
    }

    impl crate::Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(self.probability)
        }
    }

    /// Uniform coin flip.
    pub const ANY: Weighted = Weighted { probability: 0.5 };
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Size specification for generated collections: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut SmallRng) -> usize {
            if self.min + 1 >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose cardinality is drawn from `size` (best effort:
    /// if the element domain is too small to reach the drawn size, the set
    /// holds as many distinct values as could be found).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[doc(hidden)]
pub fn run_cases(test_name: &str, cases: u32, mut case: impl FnMut(&mut SmallRng)) {
    // FNV-1a over the test name: a stable seed, so failures reproduce.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..cases {
        case(&mut rng);
    }
}

/// Declares property tests: each `fn` becomes a `#[test]` that samples its
/// arguments from the given strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            #[test]
            fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), config.cases, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    #[allow(unreachable_code)]
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    if let Err(error) = __outcome {
                        panic!("proptest case returned Err: {}", error);
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics in the shim — there is
/// no shrinking phase to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 3u32..10,
            (a, b) in (0i64..5, -2.0f32..2.0),
            flag in crate::bool::weighted(0.75),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            let _ = flag;
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..255, 2..7),
            pair in crate::collection::vec(crate::num::f32::ANY, 2),
            s in crate::collection::btree_set(1u32..=6, 1..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert_eq!(pair.len(), 2);
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(s.iter().all(|t| (1..=6).contains(t)));
        }
    }

    proptest! {
        #[test]
        fn default_config_and_early_return(x in 0u8..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }
}

//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! just enough of the real `serde_derive` surface for this repository:
//! `#[derive(Serialize)]` and `#[derive(Deserialize)]` emit empty marker
//! impls of the vendored `serde` traits, and `#[serde(...)]` field/variant
//! attributes are accepted and ignored. Swap the `serde`/`serde_derive`
//! entries in `[workspace.dependencies]` for the real crates to get actual
//! serialization support.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a `derive` is attached to.
///
/// Scans the top-level tokens for the `struct`/`enum`/`union` keyword and
/// returns the identifier that follows. Generic parameters are rejected with
/// a clear error because the marker impls do not carry bounds (no type in
/// this workspace derives serde traits on a generic type).
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        let TokenTree::Ident(ident) = token else {
            continue;
        };
        let word = ident.to_string();
        if word == "struct" || word == "enum" || word == "union" {
            return match tokens.next() {
                Some(TokenTree::Ident(name)) => {
                    if let Some(TokenTree::Punct(p)) = tokens.next() {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "the vendored serde_derive shim does not support generic type `{name}`"
                            ));
                        }
                    }
                    Ok(name.to_string())
                }
                other => Err(format!("expected a type name, found {other:?}")),
            };
        }
    }
    Err("no struct/enum/union found in derive input".into())
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("generated compile_error must parse"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

//! Offline shim for `rand` 0.8.
//!
//! Provides the subset this workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, and `gen_bool` — backed by xoshiro256++ seeded through
//! SplitMix64. Fully deterministic: no entropy source is touched, which is
//! exactly what the data generators and property tests want.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Types that can be sampled uniformly from the full bit stream
/// (stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Standard for $ty {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that `Rng::gen_range` accepts (stand-in for
/// `rand::distributions::uniform::SampleRange<T>`; generic over the output
/// type so call-site context can drive integer literal inference, e.g. when
/// the result indexes a slice).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start + (rng.next_u64() % (span + 1)) as $ty
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as i64).wrapping_sub(start as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add((rng.next_u64() % (span + 1)) as $ty)
                }
            }
        )*
    };
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = rng.gen_range(3u32..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}

//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of the real API the workspace uses: [`Bytes`] (a
//! cheaply cloneable, immutable byte buffer backed by `Arc<[u8]>`), the
//! [`Buf`] reader trait for `&[u8]` and `Bytes`, and the [`BufMut`] writer
//! trait for `Vec<u8>`. Semantics match the real crate for this subset, so
//! swapping the `[workspace.dependencies]` entry for the real `bytes`
//! requires no source changes.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
///
/// Clones share the underlying allocation; `advance`/`slice` move the view
/// without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (does not allocate a payload).
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Buffer holding a copy of a static slice.
    ///
    /// (The real crate borrows the static data; the shim copies once, which
    /// preserves semantics at a negligible cost for the small parameter
    /// blocks this workspace stores.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Buffer holding a copy of `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let end = vec.len();
        Self {
            data: Arc::from(vec),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Self::copy_from_slice(slice)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics if none remain.
    fn get_u8(&mut self) -> u8 {
        let byte = self.chunk()[0];
        self.advance(1);
        byte
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Fills `dst` from the source. Panics if not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_share() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn slice_buf_reads() {
        let data = [7u8, 8, 9];
        let mut cursor: &[u8] = &data;
        assert!(cursor.has_remaining());
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 2);
        let mut out = [0u8; 2];
        cursor.copy_to_slice(&mut out);
        assert_eq!(out, [8, 9]);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn vec_bufmut_writes() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(1);
        out.put_u32(2);
        out.put_slice(&[3, 4]);
        assert_eq!(out, vec![1, 0, 0, 0, 2, 3, 4]);
    }

    #[test]
    fn bytes_buf_advances_view() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.as_slice(), &[2, 3]);
    }
}

//! Offline shim for `criterion`.
//!
//! Implements the API surface the `mdb_bench` benches use — `Criterion`,
//! `benchmark_group`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop (fixed warm-up, `sample_size` timed samples, median
//! reported). No statistics, plots, or CLI parsing; numbers print to
//! stdout. Replace the `[workspace.dependencies]` entry with the real
//! criterion for publication-grade measurements.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (`&str`, `String`, or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Drives the measured closure.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the collected samples.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`: a few warm-up calls, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.measured = Some(samples[samples.len() / 2]);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the units-per-iteration used in the throughput report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = throughput.into();
        self
    }

    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Allowed for API compatibility; the shim ignores it (sampling is
    /// controlled by `sample_size` alone).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its median time (and throughput, if
    /// configured).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .report(&label, bencher.measured, self.throughput);
        self
    }

    /// Ends the group (no-op in the shim; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default sample size for benchmarks outside groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.default_sample_size,
            measured: None,
        };
        f(&mut bencher);
        let label = id.into_id();
        self.report(&label, bencher.measured, None);
        self
    }

    fn report(&self, label: &str, measured: Option<Duration>, throughput: Option<Throughput>) {
        let Some(time) = measured else {
            println!("{label:<56} (no measurement: Bencher::iter never called)");
            return;
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) if !time.is_zero() => {
                format!("  {:>14.0} elem/s", n as f64 / time.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !time.is_zero() => {
                format!("  {:>14.0} B/s", n as f64 / time.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{label:<56} {time:>12.3?}/iter{rate}");
    }
}

/// Declares a callable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("sum", "0..100"), |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        // 2 warm-up + 3 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn plain_string_ids_accepted() {
        let mut criterion = Criterion::default().sample_size(2);
        criterion.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}

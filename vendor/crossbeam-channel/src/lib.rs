//! Offline shim for `crossbeam-channel`.
//!
//! A multi-producer multi-consumer channel built on `Mutex` + `Condvar`,
//! covering the surface the cluster runtime uses: [`bounded`], [`unbounded`],
//! cloneable [`Sender`]/[`Receiver`], blocking `send`/`recv` with
//! disconnection errors, plus `try_recv`/`recv_timeout`. Slower than the
//! real lock-free implementation but semantically equivalent for these
//! operations (except rendezvous channels: capacity 0 is rounded up to 1).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned when sending into a channel with no receivers left.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity (the message is handed back).
    Full(T),
    /// All receivers are gone (the message is handed back).
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned when receiving from an empty channel with no senders left.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloneable (MPMC — each message goes to one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// A channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A channel buffering at most `cap` messages (`0` is treated as `1`; true
/// rendezvous channels are not implemented in the shim).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued, or errors if all receivers are
    /// gone (the message is handed back inside the error).
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(message));
            }
            match self.chan.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.chan.not_full.wait(state).unwrap();
                }
                _ => {
                    state.queue.push_back(message);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Non-blocking send: errors instead of waiting when the channel is at
    /// capacity or all receivers are gone.
    pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
        let mut state = self.chan.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(message));
        }
        match self.chan.capacity {
            Some(cap) if state.queue.len() >= cap => Err(TrySendError::Full(message)),
            _ => {
                state.queue.push_back(message);
                drop(state);
                self.chan.not_empty.notify_one();
                Ok(())
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or errors once the channel is empty
    /// and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock().unwrap();
        loop {
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.not_empty.wait(state).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.chan.state.lock().unwrap();
        if let Some(message) = state.queue.pop_front() {
            drop(state);
            self.chan.not_full.notify_one();
            return Ok(message);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.chan.state.lock().unwrap();
        loop {
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self
                .chan
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap().queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they observe the disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Buffered messages are undeliverable once the last receiver is
            // gone: drop them now so anything they hold (e.g. reply senders)
            // disconnects promptly instead of staying alive as long as the
            // last `Sender` clone. Messages leave the queue before their
            // `Drop` runs — it may touch other channels and must not run
            // under this lock.
            let orphaned = std::mem::take(&mut state.queue);
            drop(state);
            drop(orphaned);
            // Wake blocked senders so they observe the disconnection.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_round_trip() {
        let (tx, rx) = unbounded::<u64>();
        let (reply_tx, reply_rx) = bounded::<u64>(1);
        let handle = thread::spawn(move || {
            while let Ok(v) = rx.recv() {
                reply_tx.send(v * 2).unwrap();
            }
        });
        for i in 0..50 {
            tx.send(i).unwrap();
            assert_eq!(reply_rx.recv().unwrap(), i * 2);
        }
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let sender = tx.clone();
        let handle = thread::spawn(move || sender.send(3));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv().unwrap(), 1);
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn dropping_last_receiver_releases_buffered_messages() {
        // A buffered message can carry a reply sender; once the last
        // receiver is gone nobody can deliver it, so the message (and the
        // reply sender inside it) must be dropped — otherwise the replier
        // waits forever on a reply that can never come.
        let (tx, rx) = unbounded::<Sender<u8>>();
        let (reply_tx, reply_rx) = bounded::<u8>(1);
        assert!(tx.send(reply_tx).is_ok());
        drop(rx);
        assert_eq!(reply_rx.recv(), Err(RecvError));
        let (other_tx, _) = bounded::<u8>(1);
        assert!(tx.send(other_tx).is_err());
    }

    #[test]
    fn timeout_fires_on_empty_channel() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = unbounded::<u32>();
        let (out_tx, out_rx) = unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            let out = out_tx.clone();
            handles.push(thread::spawn(move || {
                while let Ok(v) = rx.recv() {
                    out.send(v).unwrap();
                }
            }));
        }
        drop(rx);
        drop(out_tx);
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for handle in handles {
            handle.join().unwrap();
        }
        let mut got: Vec<u32> = out_rx.try_iter_for_test();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    impl<T> Receiver<T> {
        fn try_iter_for_test(&self) -> Vec<T> {
            let mut out = Vec::new();
            while let Ok(v) = self.try_recv() {
                out.push(v);
            }
            out
        }
    }
}

//! Offline shim for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde the workspace actually relies on today: the `Serialize`
//! and `Deserialize` *marker* traits and their derive macros. No data-model
//! machinery is included because nothing in the workspace serializes yet —
//! the derives exist so the domain types in `mdb_types`/`mdb_partitioner`
//! declare their intent and pick up real impls the moment this shim is
//! replaced by the real crate in `[workspace.dependencies]`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (the `'de` lifetime is dropped —
/// no borrowing deserializer exists in the shim).
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl Deserialize for $ty {}
        )*
    };
}

impl_markers!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    ()
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize + ?Sized> Serialize for &T {}

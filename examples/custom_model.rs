//! User-defined models: the extension API of Section 3.1.
//!
//! ModelarDB+ treats models as black boxes behind the `ModelType`/`Fitter`
//! traits, so new model types plug in without touching the system. This
//! example adds a *step-function* model (one value per plateau, a cheap fit
//! for setpoint-style signals), registers it between Swing and Gorilla, and
//! shows the selection loop picking it when it wins.
//!
//! ```sh
//! cargo run --example custom_model
//! ```

use std::sync::Arc;

use modelardb::{
    ErrorBound, Fitter, ModelRegistry, ModelType, ModelarDbBuilder, SegmentAgg, SeriesSpec,
    Timestamp, Value,
};

/// A two-plateau step model: params = (first value, last value, step index).
/// It represents signals that hold one value, step once, and hold another —
/// which neither a constant (PMC) nor a line (Swing) captures cheaply.
struct Step;

struct StepFitter {
    bound: ErrorBound,
    limit: usize,
    first: Option<Value>,
    second: Option<Value>,
    step_at: usize,
    len: usize,
}

impl ModelType for Step {
    fn name(&self) -> &str {
        "Step"
    }

    fn fitter(&self, bound: ErrorBound, _n_series: usize, limit: usize) -> Box<dyn Fitter> {
        Box::new(StepFitter {
            bound,
            limit,
            first: None,
            second: None,
            step_at: 0,
            len: 0,
        })
    }

    fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>> {
        if params.len() < 12 {
            return None;
        }
        let a = Value::from_le_bytes(params[0..4].try_into().ok()?);
        let b = Value::from_le_bytes(params[4..8].try_into().ok()?);
        let step = u32::from_le_bytes(params[8..12].try_into().ok()?) as usize;
        let mut out = Vec::with_capacity(count * n_series);
        for t in 0..count {
            let v = if t < step { a } else { b };
            out.extend(std::iter::repeat_n(v, n_series));
        }
        Some(out)
    }

    fn agg(
        &self,
        params: &[u8],
        n_series: usize,
        count: usize,
        range: (usize, usize),
        series: usize,
    ) -> Option<SegmentAgg> {
        // Constant-time: sums of two plateaus.
        let grid = self.grid(params, 1, count)?;
        let _ = (n_series, series);
        let slice = &grid[range.0..=range.1];
        Some(SegmentAgg {
            sum: slice.iter().map(|&v| f64::from(v)).sum(),
            min: slice.iter().cloned().fold(f32::INFINITY, f32::min),
            max: slice.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
        })
    }
}

impl Fitter for StepFitter {
    fn append(&mut self, _ts: Timestamp, values: &[Value]) -> bool {
        if self.len >= self.limit {
            return false;
        }
        // All group values must fit the current plateau.
        let plateau_fits = |p: Value| values.iter().all(|&v| self.bound.within(p, v));
        match (self.first, self.second) {
            (None, _) => self.first = Some(values[0]),
            (Some(a), None) => {
                if !plateau_fits(a) {
                    self.second = Some(values[0]);
                    self.step_at = self.len;
                    if !plateau_fits(values[0]) {
                        return false;
                    }
                }
            }
            (Some(_), Some(b)) => {
                if !plateau_fits(b) {
                    return false;
                }
            }
        }
        self.len += 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn params(&self) -> Vec<u8> {
        let a = self.first.unwrap_or(0.0);
        let b = self.second.unwrap_or(a);
        let step = if self.second.is_some() {
            self.step_at
        } else {
            self.len
        };
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&(step as u32).to_le_bytes());
        out
    }

    fn byte_size(&self) -> usize {
        12
    }
}

fn main() -> modelardb::Result<()> {
    // Register: PMC, Swing, Step, then the lossless fallback.
    let mut registry = ModelRegistry::empty();
    registry.register(Arc::new(mdb_models::pmc::PmcMean));
    registry.register(Arc::new(mdb_models::swing::Swing));
    let step_mid = registry.register(Arc::new(Step));
    registry.register(Arc::new(mdb_models::gorilla::Gorilla));
    println!("model table: {:?}", registry.names());

    let mut builder = ModelarDbBuilder::new();
    builder.config_mut().compression.error_bound = ErrorBound::relative(1.0);
    // Raise the model length limit: a Step model pays off when one instance
    // spans two whole plateaus (80 ticks here), which the default limit of
    // 50 would truncate back to PMC territory.
    builder.config_mut().compression.length_limit = 200;
    builder
        .with_registry(registry)
        .add_series(SeriesSpec::new("setpoint", 100));
    let mut db = builder.build()?;

    // A setpoint signal: plateaus with steps, plus sensor noise well inside
    // the 1 % bound. The noise stops Gorilla from exploiting bit-identical
    // repeats, the step defeats PMC (one value) and Swing (one line), so the
    // Step model's two plateaus per segment win the selection.
    for tick in 0..5_000i64 {
        let plateau = if (tick / 40) % 2 == 0 { 100.0 } else { 250.0 };
        let wander = ((tick / 80) % 5) as f32 * 2.0;
        let noise = ((tick.wrapping_mul(2_654_435_761) % 997) as f32 / 997.0 - 0.5) * 0.4;
        db.ingest_row(tick * 100, &[Some(plateau + wander + noise)])?;
    }
    db.flush()?;

    println!("\nmodel usage with the custom Step model registered:");
    for (model, share) in db.stats().model_shares() {
        println!("  {model}: {share:.1}%");
    }
    let step_share = db.stats().model_shares()[step_mid as usize].1;
    assert!(
        step_share > 10.0,
        "the step model should win plateaus+step segments: {step_share:.1}%"
    );

    let r = db.sql("SELECT COUNT_S(*), AVG_S(*), MIN_S(*), MAX_S(*) FROM Segment")?;
    println!(
        "\naggregates straight off the custom model:\n{}",
        r.to_table()
    );
    Ok(())
}

//! OLAP reporting over a distributed cluster: the M-AGG workload of the
//! evaluation (Figures 25–28) on the synthetic EP data set.
//!
//! Builds a 4-worker cluster, ingests the EP-like data set, and runs
//! multi-dimensional aggregate queries that roll up in the time dimension
//! (per month) and drill down through the user-defined dimension hierarchy —
//! all executed on models, scattered to workers and merged at the master.
//!
//! ```sh
//! cargo run --release --example olap_reporting
//! ```

use std::sync::Arc;

use mdb_bench::catalog_from_dataset;
use modelardb::{Cluster, CompressionConfig, ErrorBound, ModelRegistry};

fn main() -> modelardb::Result<()> {
    let scale = mdb_datagen::Scale {
        clusters: 6,
        series_per_cluster: 4,
        ticks: 3_000,
    };
    let ds = mdb_datagen::ep(42, scale)?;
    // Partition with the paper's EP hints: Production 0 ; Measure 1
    // ProductionMWh.
    let catalog = catalog_from_dataset(&ds, &ds.correlation_spec())?;
    println!(
        "partitioned {} series into {} groups",
        catalog.series.len(),
        catalog.groups.len()
    );

    let cluster = Cluster::start(
        catalog,
        Arc::new(ModelRegistry::standard()),
        CompressionConfig {
            error_bound: ErrorBound::relative(5.0),
            ..Default::default()
        },
        4,
    )?;
    println!("group assignment per worker: {:?}", cluster.assignment());

    for tick in 0..scale.ticks {
        cluster.ingest_row(ds.timestamp(tick), &ds.row(tick))?;
    }
    cluster.flush()?;
    let (stats, bytes, segments) = cluster.stats()?;
    println!(
        "ingested {} points -> {segments} segments, {bytes} bytes across 4 workers\n",
        stats.data_points
    );

    // Report 1: monthly production per plant type (the partitioning level).
    let r = cluster.sql(
        "SELECT Type, CUBE_SUM_MONTH(*) FROM Segment WHERE Category = 'ProductionMWh' GROUP BY Type ORDER BY Type",
    )?;
    println!(
        "monthly production by plant type (M-AGG-One):\n{}",
        r.to_table()
    );

    // Report 2: drill down below the grouping level — per entity.
    let r = cluster.sql(
        "SELECT Entity, CUBE_AVG_MONTH(*) FROM Segment WHERE Category = 'ProductionMWh' GROUP BY Entity ORDER BY Entity LIMIT 6",
    )?;
    println!(
        "monthly average by entity, drill-down (M-AGG-Two):\n{}",
        r.to_table()
    );

    // Report 3: hour-of-day profile — the DatePart-style aggregate InfluxDB
    // cannot express (Section 7.3).
    let r = cluster.sql("SELECT CUBE_AVG_HOUR(*) FROM Segment ORDER BY Hour LIMIT 8")?;
    println!("hour-of-day profile (first 8 hours):\n{}", r.to_table());

    cluster.shutdown().unwrap();
    Ok(())
}

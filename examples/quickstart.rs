//! Quickstart: declare dimensional time series, let the partitioner group
//! the correlated ones, ingest with an error bound, and query models with
//! SQL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use modelardb::{DimensionSchema, ErrorBound, ModelarDbBuilder, SeriesSpec};

fn main() -> modelardb::Result<()> {
    // Two temperature sensors on co-located wind turbines plus one far away,
    // all sampling every 100 ms.
    let mut builder = ModelarDbBuilder::new();
    builder.config_mut().compression.error_bound = ErrorBound::relative(5.0);
    builder
        .add_dimension(DimensionSchema::from_leaf_up(
            "Location",
            vec!["Turbine".into(), "Park".into()],
        )?)
        .add_series(SeriesSpec::new("t9632", 100).with_members("Location", &["Aalborg", "9632"]))
        .add_series(SeriesSpec::new("t9634", 100).with_members("Location", &["Aalborg", "9634"]))
        .add_series(SeriesSpec::new("t9572", 100).with_members("Location", &["Farsø", "9572"]))
        // Correlation hint (Section 4.1): series sharing a park correlate.
        .correlate("Location 1");
    let mut db = builder.build()?;

    println!("groups formed by the partitioner:");
    for group in &db.catalog().groups {
        println!("  gid {} -> tids {:?}", group.gid, group.tids);
    }

    // Ingest an hour of data: a slow sine + per-series offsets. The two
    // Aalborg turbines are compressed together by one model per segment.
    for tick in 0..36_000i64 {
        let base = (tick as f32 * 0.001).sin() * 10.0 + 180.0;
        db.ingest_row(
            tick * 100,
            &[Some(base), Some(base + 0.3), Some(base * 0.5 + 20.0)],
        )?;
    }
    db.flush()?;

    println!(
        "\ningested {} data points into {} segments ({} bytes)",
        db.stats().data_points,
        db.segment_count(),
        db.storage_bytes()
    );
    println!("model usage:");
    for (model, share) in db.stats().model_shares() {
        println!("  {model}: {share:.1}%");
    }

    // Aggregates execute directly on the models (Figure 11).
    let result = db.sql(
        "SELECT Tid, COUNT_S(*), AVG_S(*), MIN_S(*), MAX_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
    )?;
    println!(
        "\nper-series aggregates on the Segment View:\n{}",
        result.to_table()
    );

    // And the Data Point View reconstructs values within the error bound.
    let result = db.sql("SELECT * FROM DataPoint WHERE Tid = 1 AND TS BETWEEN 0 AND 400")?;
    println!(
        "first five reconstructed points of tid 1:\n{}",
        result.to_table()
    );
    Ok(())
}

//! Wind-farm monitoring: the paper's motivating scenario (Section 1).
//!
//! A wind farm's turbines are monitored by high-frequency sensors; storing
//! raw points is too expensive, so operators usually keep only coarse
//! aggregates — losing outliers. This example shows MMGC keeping *all*
//! points within a 1 % bound: a turbine fault (sudden temperature spike) is
//! still visible in the reconstructed data, gaps from a sensor outage are
//! handled, and the dynamic split machinery isolates the faulty turbine so
//! the healthy ones keep compressing well together.
//!
//! ```sh
//! cargo run --release --example wind_farm_monitoring
//! ```

use modelardb::{DimensionSchema, ErrorBound, ModelarDbBuilder, SeriesSpec};

const SI: i64 = 1_000; // 1 s sampling
const TURBINES: usize = 6;

fn temperature(turbine: usize, tick: i64) -> Option<f32> {
    // Sensor outage: turbine 4 goes dark for a stretch.
    if turbine == 4 && (3_000..3_500).contains(&tick) {
        return None;
    }
    let ambient = (tick as f32 * 0.0005).sin() * 5.0 + 55.0;
    let fault = if turbine == 2 && (6_000..7_000).contains(&tick) {
        // Bearing fault: temperature ramps 40 degrees and falls back.
        let x = (tick - 6_000) as f32 / 1_000.0;
        40.0 * (1.0 - (x - 0.5).abs() * 2.0).max(0.0)
    } else {
        0.0
    };
    Some(ambient + turbine as f32 * 0.2 + fault)
}

fn main() -> modelardb::Result<()> {
    let mut builder = ModelarDbBuilder::new();
    builder.config_mut().compression.error_bound = ErrorBound::relative(1.0);
    builder.add_dimension(DimensionSchema::from_leaf_up(
        "Location",
        vec!["Turbine".into(), "Park".into()],
    )?);
    for t in 0..TURBINES {
        builder.add_series(
            SeriesSpec::new(format!("turbine{t}"), SI)
                .with_members("Location", &["Aalborg", &format!("98{t}0")]),
        );
    }
    builder.correlate("Location 1");
    let mut db = builder.build()?;

    let ticks = 10_000i64;
    for tick in 0..ticks {
        let row: Vec<Option<f32>> = (0..TURBINES).map(|t| temperature(t, tick)).collect();
        db.ingest_row(tick * SI, &row)?;
    }
    db.flush()?;

    let stats = db.stats();
    let raw_bytes = stats.data_points * 16;
    println!(
        "{} points -> {} bytes ({}x compression), {} segments, {} dynamic splits, {} joins",
        stats.data_points,
        db.storage_bytes(),
        raw_bytes / db.storage_bytes().max(1),
        stats.segments,
        stats.splits,
        stats.joins,
    );

    // The fault is preserved: the max during the fault window dwarfs normal
    // operation, per turbine.
    let fault_from = 6_000 * SI;
    let fault_to = 7_000 * SI;
    let r = db.sql(&format!(
        "SELECT Tid, MAX_S(*) FROM Segment WHERE TS >= {fault_from} AND TS <= {fault_to} GROUP BY Tid ORDER BY Tid"
    ))?;
    println!(
        "\nmax temperature per turbine during the fault window:\n{}",
        r.to_table()
    );
    let faulty_max = r.rows[2][1].as_f64().unwrap();
    assert!(
        faulty_max > 85.0,
        "the fault spike must survive compression: {faulty_max}"
    );

    // The outage shows up as missing points for turbine 4 only.
    let r = db.sql("SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")?;
    println!(
        "points stored per turbine (turbine 5 of 6 had an outage):\n{}",
        r.to_table()
    );

    // Hourly profile across the park, computed on models (Algorithm 6).
    let r = db.sql("SELECT Park, CUBE_AVG_HOUR(*) FROM Segment GROUP BY Park ORDER BY Hour")?;
    println!(
        "hourly average temperature across the park:\n{}",
        r.to_table()
    );
    Ok(())
}

//! Algorithm 1 (fixpoint grouping) and Algorithm 2 (dimensional distance).

use std::collections::HashMap;

use mdb_types::{Dimensions, Gid, MdbError, Result, Tid, TimeSeriesMeta, MAX_GROUP_SIZE};

use crate::spec::{CorrelationPrimitive, CorrelationSpec, ScalingHint};

/// The output of partitioning: groups of tids, gid assignments, and the
/// scaling constant per tid derived from the user hints.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// Groups in gid order; `groups[g]` belongs to gid `g + 1`.
    pub groups: Vec<Vec<Tid>>,
    /// Scaling constants, parallel to `groups`.
    pub scaling: Vec<Vec<f64>>,
}

impl Partitioning {
    /// The gid of `tid`, if any.
    pub fn gid_of(&self, tid: Tid) -> Option<Gid> {
        self.groups
            .iter()
            .position(|g| g.contains(&tid))
            .map(|i| (i + 1) as Gid)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups were formed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// The rule of thumb of Section 4.1: the lowest non-zero distance for a data
/// set, `(1 / max(Levels)) / |Dimensions|`.
pub fn lowest_distance(dimensions: &Dimensions) -> f64 {
    let max_levels = dimensions
        .schemas()
        .iter()
        .map(|s| s.height())
        .max()
        .unwrap_or(1);
    (1.0 / max_levels as f64) / dimensions.len().max(1) as f64
}

/// Algorithm 2: the normalized distance between two groups of time series.
///
/// For each dimension the per-dimension distance is
/// `(height − lca_level) / height`, multiplied by the dimension's
/// user-defined weight; the sum is normalized by the number of dimensions and
/// clamped to 1.0.
pub fn distance(
    dimensions: &Dimensions,
    spec: &CorrelationSpec,
    group_a: &[Tid],
    group_b: &[Tid],
) -> f64 {
    if dimensions.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0;
    for (d, schema) in dimensions.schemas().iter().enumerate() {
        let ancestor = dimensions.lca_level(group_a, group_b, d);
        let height = schema.height() as f64;
        let weight = spec.weight(schema.name());
        let dist = (height - ancestor as f64) / height;
        sum += weight * dist;
    }
    let normalized = sum / dimensions.len() as f64;
    normalized.min(1.0)
}

/// Evaluates whether two groups are correlated under `spec` (the
/// `correlated` check of Algorithm 1): any clause whose primitives are all
/// satisfied makes the pair correlated.
pub fn correlated(
    dimensions: &Dimensions,
    spec: &CorrelationSpec,
    sources: &HashMap<Tid, String>,
    group_a: &[Tid],
    group_b: &[Tid],
) -> bool {
    spec.clauses.iter().any(|clause| {
        clause
            .primitives
            .iter()
            .all(|p| primitive_holds(dimensions, spec, sources, group_a, group_b, p))
    })
}

fn primitive_holds(
    dimensions: &Dimensions,
    spec: &CorrelationSpec,
    sources: &HashMap<Tid, String>,
    group_a: &[Tid],
    group_b: &[Tid],
    primitive: &CorrelationPrimitive,
) -> bool {
    match primitive {
        CorrelationPrimitive::TimeSeries(names) => group_a.iter().chain(group_b).all(|tid| {
            sources
                .get(tid)
                .is_some_and(|s| names.iter().any(|n| n == s))
        }),
        CorrelationPrimitive::Member {
            dimension,
            level,
            member,
        } => {
            let Some(d) = dimensions.dimension_id(dimension) else {
                return false;
            };
            let Some(m) = dimensions.member_id(member) else {
                return false;
            };
            group_a
                .iter()
                .chain(group_b)
                .all(|&tid| dimensions.member(tid, d, *level) == Some(m))
        }
        CorrelationPrimitive::LcaLevel { dimension, level } => {
            let Some(d) = dimensions.dimension_id(dimension) else {
                return false;
            };
            let height = dimensions.schemas()[d].height() as i32;
            let required = if *level > 0 {
                *level
            } else if *level == 0 {
                // All levels must be equal.
                height
            } else {
                // All but the lowest |n| levels must be equal.
                (height + *level).max(0)
            };
            dimensions.lca_level(group_a, group_b, d) as i32 >= required
        }
        CorrelationPrimitive::Distance(threshold) => {
            distance(dimensions, spec, group_a, group_b) <= *threshold
        }
    }
}

/// Algorithm 1: partitions `series` into groups of correlated time series.
///
/// Starting from one group per series, pairs of groups are merged whenever
/// `correlated` holds, until a fixpoint. Two system constraints guard the
/// merge beyond the user hints: members must share a sampling interval
/// (Definition 8) and groups may not exceed [`MAX_GROUP_SIZE`].
pub fn partition(
    series: &[TimeSeriesMeta],
    dimensions: &Dimensions,
    spec: &CorrelationSpec,
    sources: &HashMap<Tid, String>,
) -> Result<Partitioning> {
    let mut groups: Vec<Vec<Tid>> = series.iter().map(|m| vec![m.tid]).collect();
    let si: HashMap<Tid, i64> = series
        .iter()
        .map(|m| (m.tid, m.sampling_interval))
        .collect();
    if si.len() != series.len() {
        return Err(MdbError::Config(
            "duplicate tids in partitioning input".into(),
        ));
    }

    let mut modified = true;
    while modified {
        modified = false;
        'pairs: for a in 0..groups.len() {
            for b in (a + 1)..groups.len() {
                if groups[a].len() + groups[b].len() > MAX_GROUP_SIZE {
                    continue;
                }
                if si[&groups[a][0]] != si[&groups[b][0]] {
                    continue;
                }
                if correlated(dimensions, spec, sources, &groups[a], &groups[b]) {
                    let merged = groups.swap_remove(b);
                    groups[a].extend(merged);
                    modified = true;
                    break 'pairs;
                }
            }
        }
    }

    // Deterministic output: sort members within groups and groups by their
    // smallest member, so partitioning does not depend on iteration order.
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);

    let scaling = groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&tid| scaling_for(tid, dimensions, spec, sources))
                .collect()
        })
        .collect();
    Ok(Partitioning { groups, scaling })
}

fn scaling_for(
    tid: Tid,
    dimensions: &Dimensions,
    spec: &CorrelationSpec,
    sources: &HashMap<Tid, String>,
) -> f64 {
    for hint in &spec.scaling {
        match hint {
            ScalingHint::Series { name, factor } => {
                if sources.get(&tid).is_some_and(|s| s == name) {
                    return *factor;
                }
            }
            ScalingHint::Member {
                dimension,
                level,
                member,
                factor,
            } => {
                let Some(d) = dimensions.dimension_id(dimension) else {
                    continue;
                };
                let Some(m) = dimensions.member_id(member) else {
                    continue;
                };
                if dimensions.member(tid, d, *level) == Some(m) {
                    return *factor;
                }
            }
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_types::DimensionSchema;

    /// The wind-turbine setup of Figure 7 plus a Measure dimension.
    fn setup() -> (Vec<TimeSeriesMeta>, Dimensions, HashMap<Tid, String>) {
        let mut dims = Dimensions::new();
        let loc = dims
            .add_dimension(
                DimensionSchema::from_leaf_up(
                    "Location",
                    vec![
                        "Turbine".into(),
                        "Park".into(),
                        "Region".into(),
                        "Country".into(),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let measure = dims
            .add_dimension(
                DimensionSchema::new("Measure", vec!["Category".into(), "Concrete".into()])
                    .unwrap(),
            )
            .unwrap();
        dims.set_members(1, loc, &["Denmark", "Nordjylland", "Farsø", "9572"])
            .unwrap();
        dims.set_members(2, loc, &["Denmark", "Nordjylland", "Aalborg", "9632"])
            .unwrap();
        dims.set_members(3, loc, &["Denmark", "Nordjylland", "Aalborg", "9634"])
            .unwrap();
        for tid in 1..=3 {
            dims.set_members(tid, measure, &["Temperature", "NacelleTemp"])
                .unwrap();
        }
        let series = (1..=3).map(|t| TimeSeriesMeta::new(t, 60_000)).collect();
        let sources: HashMap<Tid, String> =
            (1..=3).map(|t| (t, format!("turbine{t}.gz"))).collect();
        (series, dims, sources)
    }

    #[test]
    fn paper_distance_example() {
        // §4.1: the normalized Location distance between Tid 2 and Tid 3 is
        // 1.0 × ((4 − 3)/4) = 0.25 — here averaged with the fully shared
        // Measure dimension (distance 0), giving 0.125 over two dimensions.
        let (_, dims, _) = setup();
        let spec = CorrelationSpec::none();
        let d = distance(&dims, &spec, &[2], &[3]);
        assert!((d - 0.125).abs() < 1e-9, "{d}");
        // Same-park series vs the Farsø turbine: Location (4-2)/4 = 0.5.
        let d = distance(&dims, &spec, &[1], &[3]);
        assert!((d - 0.25).abs() < 1e-9, "{d}");
        // A group compared with itself is at distance 0.
        assert_eq!(distance(&dims, &spec, &[2], &[2]), 0.0);
    }

    #[test]
    fn weights_increase_distance_and_clamp_to_one() {
        let (_, dims, _) = setup();
        let mut spec = CorrelationSpec::none();
        spec.weights.insert("Location".into(), 8.0);
        let d = distance(&dims, &spec, &[2], &[3]);
        // 8.0 × 0.25 / 2 = 1.0 exactly; larger weights clamp.
        assert!((d - 1.0).abs() < 1e-9);
        spec.weights.insert("Location".into(), 80.0);
        assert_eq!(distance(&dims, &spec, &[2], &[3]), 1.0);
    }

    #[test]
    fn lowest_distance_rule_of_thumb() {
        let (_, dims, _) = setup();
        // max(Levels) = 4, |Dimensions| = 2 → (1/4)/2 = 0.125.
        assert!((lowest_distance(&dims) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn distance_clause_groups_co_located_turbines() {
        let (series, dims, sources) = setup();
        // Distance 0.125 groups only the two Aalborg turbines (LCA = Park).
        let spec = CorrelationSpec::distance(0.125);
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1], vec![2, 3]]);
        assert_eq!(p.gid_of(2), Some(2));
        assert_eq!(p.gid_of(1), Some(1));
        // Distance 0.25 also merges the Farsø turbine (LCA = Region).
        let spec = CorrelationSpec::distance(0.25);
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1, 2, 3]]);
        // Distance 0 groups nothing across parks/turbines.
        let spec = CorrelationSpec::distance(0.0);
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn member_triple_clause() {
        let (series, dims, sources) = setup();
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Measure 1 Temperature").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1, 2, 3]]);
        // A member nobody has groups nothing.
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Measure 1 Pressure").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn lca_level_clause_semantics() {
        let (series, dims, sources) = setup();
        // "Location 3": LCA ≥ 3 (same park) → Aalborg turbines only.
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Location 3").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1], vec![2, 3]]);
        // "Location 0": all levels equal → nothing merges (turbine differs).
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Location 0").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.len(), 3);
        // "Location -1": all but the lowest level → same park again.
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Location -1").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1], vec![2, 3]]);
        // "Location -3": only the Country level must match → everything.
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Location -3").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn explicit_series_clause() {
        let (series, dims, sources) = setup();
        let mut spec = CorrelationSpec::none();
        spec.add_clause("series turbine1.gz turbine2.gz").unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn clauses_or_primitives_and() {
        let (series, dims, sources) = setup();
        // Clause: same park AND Temperature measure (both hold for 2,3).
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Location 3; Measure 1 Temperature")
            .unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1], vec![2, 3]]);
        // Add an OR clause that also pulls in turbine 1 explicitly.
        spec.add_clause("series turbine1.gz turbine2.gz turbine3.gz")
            .unwrap();
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn mixed_sampling_intervals_never_merge() {
        let (mut series, dims, sources) = setup();
        series[0].sampling_interval = 100; // tid 1 samples at 100 ms
        let spec = CorrelationSpec::distance(1.0); // everything correlated
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn empty_spec_yields_singleton_groups() {
        let (series, dims, sources) = setup();
        let p = partition(&series, &dims, &CorrelationSpec::none(), &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1], vec![2], vec![3]]);
        assert_eq!(p.scaling, vec![vec![1.0], vec![1.0], vec![1.0]]);
    }

    #[test]
    fn scaling_hints_resolve_per_tid() {
        let (series, dims, sources) = setup();
        let mut spec = CorrelationSpec::distance(0.25);
        spec.scaling.push(ScalingHint::Member {
            dimension: "Location".into(),
            level: 3,
            member: "Aalborg".into(),
            factor: 2.0,
        });
        spec.scaling.push(ScalingHint::Series {
            name: "turbine1.gz".into(),
            factor: 4.75,
        });
        let p = partition(&series, &dims, &spec, &sources).unwrap();
        assert_eq!(p.groups, vec![vec![1, 2, 3]]);
        assert_eq!(p.scaling, vec![vec![4.75, 2.0, 2.0]]);
    }

    #[test]
    fn group_size_cap_respected() {
        let mut dims = Dimensions::new();
        let d = dims
            .add_dimension(DimensionSchema::new("Site", vec!["Name".into()]).unwrap())
            .unwrap();
        let n = MAX_GROUP_SIZE + 10;
        let series: Vec<TimeSeriesMeta> = (1..=n as u32)
            .map(|t| TimeSeriesMeta::new(t, 100))
            .collect();
        for t in 1..=n as u32 {
            dims.set_members(t, d, &["same"]).unwrap();
        }
        let spec = CorrelationSpec::distance(1.0);
        let p = partition(&series, &dims, &spec, &HashMap::new()).unwrap();
        assert!(p.groups.iter().all(|g| g.len() <= MAX_GROUP_SIZE));
        let total: usize = p.groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn duplicate_tids_rejected() {
        let series = vec![TimeSeriesMeta::new(1, 100), TimeSeriesMeta::new(1, 100)];
        let dims = Dimensions::new();
        assert!(partition(&series, &dims, &CorrelationSpec::none(), &HashMap::new()).is_err());
    }

    #[test]
    fn distance_grouping_is_independent_of_input_order() {
        let (series, dims, sources) = setup();
        let spec = CorrelationSpec::distance(0.125);
        let forward = partition(&series, &dims, &spec, &sources).unwrap();
        let mut reversed_input = series.clone();
        reversed_input.reverse();
        let reversed = partition(&reversed_input, &dims, &spec, &sources).unwrap();
        assert_eq!(forward.groups, reversed.groups);
        assert_eq!(forward.scaling, reversed.scaling);
    }

    proptest::proptest! {
        #[test]
        fn partition_is_a_partition(n in 1usize..20, threshold in 0.0f64..1.0) {
            let mut dims = Dimensions::new();
            let d = dims.add_dimension(DimensionSchema::new("Site", vec!["Park".into(), "Unit".into()]).unwrap()).unwrap();
            let series: Vec<TimeSeriesMeta> = (1..=n as u32).map(|t| TimeSeriesMeta::new(t, 100)).collect();
            for t in 1..=n as u32 {
                let park = format!("park{}", t % 3);
                let unit = format!("unit{t}");
                dims.set_members(t, d, &[&park, &unit]).unwrap();
            }
            let spec = CorrelationSpec::distance(threshold);
            let p = partition(&series, &dims, &spec, &HashMap::new()).unwrap();
            let mut all: Vec<Tid> = p.groups.iter().flatten().copied().collect();
            all.sort_unstable();
            proptest::prop_assert_eq!(all, (1..=n as u32).collect::<Vec<_>>());
        }
    }
}

//! Correlation primitives and their configuration-file syntax (Section 4.1).
//!
//! Primitives are written in `modelardb.correlation` clauses. Within a
//! clause, primitives are separated by `;` and combined with AND; multiple
//! clauses are combined with OR. The concrete grammar per primitive:
//!
//! ```text
//! series <name> <name> …          explicit sets of time series (by source)
//! <dimension> <level> <member>    series sharing <member> at <level>
//! <dimension> <lca-level>         LCA level ≥ n (0: all levels must equal;
//!                                 −n: all but the lowest n levels)
//! distance <d>    or just  <d>    normalized dimensional distance ≤ d
//! ```
//!
//! Auxiliary settings:
//!
//! ```text
//! modelardb.correlation.weight  = <dimension> <w>
//! modelardb.correlation.scaling = <dimension> <level> <member> <factor>
//! modelardb.correlation.scaling = series <name> <factor>
//! ```

use std::collections::HashMap;

use mdb_types::{MdbError, Result};
use serde::{Deserialize, Serialize};

/// One correlation primitive (Section 4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CorrelationPrimitive {
    /// An explicit set of time series identified by their source names; all
    /// members of both groups must belong to the set.
    TimeSeries(Vec<String>),
    /// Series sharing `member` at `level` of `dimension` are correlated.
    Member {
        dimension: String,
        level: usize,
        member: String,
    },
    /// The LCA level of the two groups in `dimension` must be at least
    /// `level`; `0` requires all levels equal, a negative `n` all but the
    /// lowest `|n|` levels.
    LcaLevel { dimension: String, level: i32 },
    /// The normalized dimensional distance (Algorithm 2) must be ≤ the
    /// threshold in `[0.0, 1.0]`.
    Distance(f64),
}

/// A conjunction of primitives.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CorrelationClause {
    pub primitives: Vec<CorrelationPrimitive>,
}

/// A scaling-constant hint: either per shared dimension member (the 4-tuple
/// of Section 4.1) or per named series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalingHint {
    /// `(dimension, level, member, factor)`.
    Member {
        dimension: String,
        level: usize,
        member: String,
        factor: f64,
    },
    /// A factor for one named series.
    Series { name: String, factor: f64 },
}

/// The full user hint set: OR-combined clauses, per-dimension weights for
/// Algorithm 2, and scaling constants.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CorrelationSpec {
    pub clauses: Vec<CorrelationClause>,
    /// Per-dimension weight (default 1.0).
    pub weights: HashMap<String, f64>,
    pub scaling: Vec<ScalingHint>,
}

impl CorrelationSpec {
    /// A spec with no clauses: nothing is correlated, every series gets its
    /// own group (the ModelarDBv1 behaviour).
    pub fn none() -> Self {
        Self::default()
    }

    /// A spec with a single distance clause — the rule-of-thumb entry point.
    pub fn distance(threshold: f64) -> Self {
        Self {
            clauses: vec![CorrelationClause {
                primitives: vec![CorrelationPrimitive::Distance(threshold)],
            }],
            ..Self::default()
        }
    }

    /// Adds a clause parsed from the configuration syntax.
    pub fn add_clause(&mut self, text: &str) -> Result<()> {
        self.clauses.push(parse_clause(text)?);
        Ok(())
    }

    /// The weight of `dimension` (default 1.0).
    pub fn weight(&self, dimension: &str) -> f64 {
        self.weights
            .iter()
            .find(|(d, _)| d.eq_ignore_ascii_case(dimension))
            .map(|(_, w)| *w)
            .unwrap_or(1.0)
    }
}

/// Parses one `modelardb.correlation` clause: primitives separated by `;`.
pub fn parse_clause(text: &str) -> Result<CorrelationClause> {
    let mut primitives = Vec::new();
    for part in text.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        primitives.push(parse_primitive(part)?);
    }
    if primitives.is_empty() {
        return Err(MdbError::Config(format!(
            "empty correlation clause: {text:?}"
        )));
    }
    Ok(CorrelationClause { primitives })
}

fn parse_primitive(text: &str) -> Result<CorrelationPrimitive> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        [] => Err(MdbError::Config("empty correlation primitive".into())),
        // A bare number is a distance threshold.
        [value] if value.parse::<f64>().is_ok() => distance(value.parse::<f64>().unwrap()),
        ["distance", value] | ["Distance", value] => {
            let d = value
                .parse::<f64>()
                .map_err(|_| MdbError::Config(format!("invalid distance {value:?}")))?;
            distance(d)
        }
        ["series", names @ ..] | ["Series", names @ ..] if !names.is_empty() => Ok(
            CorrelationPrimitive::TimeSeries(names.iter().map(|s| s.to_string()).collect()),
        ),
        [dimension, level] => {
            let level = level.parse::<i32>().map_err(|_| {
                MdbError::Config(format!("invalid LCA level {level:?} in {text:?}"))
            })?;
            Ok(CorrelationPrimitive::LcaLevel {
                dimension: dimension.to_string(),
                level,
            })
        }
        [dimension, level, member] => {
            let level = level
                .parse::<usize>()
                .map_err(|_| MdbError::Config(format!("invalid level {level:?} in {text:?}")))?;
            Ok(CorrelationPrimitive::Member {
                dimension: dimension.to_string(),
                level,
                member: member.to_string(),
            })
        }
        // Explicit time series lists may also be written bare, as in the
        // paper's "4L80R9a_Temperature.gz 4L80R9b_Temperature.gz" example,
        // when there are more than three names (no ambiguity with triples).
        names if names.len() > 3 => Ok(CorrelationPrimitive::TimeSeries(
            names.iter().map(|s| s.to_string()).collect(),
        )),
        _ => Err(MdbError::Config(format!(
            "cannot parse correlation primitive {text:?}"
        ))),
    }
}

fn distance(d: f64) -> Result<CorrelationPrimitive> {
    if !(0.0..=1.0).contains(&d) {
        return Err(MdbError::Config(format!("distance {d} outside [0.0, 1.0]")));
    }
    Ok(CorrelationPrimitive::Distance(d))
}

/// Parses a weight line: `<dimension> <weight>`.
pub fn parse_weight(text: &str) -> Result<(String, f64)> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        [dimension, weight] => {
            let w = weight
                .parse::<f64>()
                .map_err(|_| MdbError::Config(format!("invalid weight {weight:?}")))?;
            if w < 0.0 {
                return Err(MdbError::Config(format!("negative weight {w}")));
            }
            Ok((dimension.to_string(), w))
        }
        _ => Err(MdbError::Config(format!("cannot parse weight {text:?}"))),
    }
}

/// Parses a scaling line: `<dimension> <level> <member> <factor>` or
/// `series <name> <factor>`.
pub fn parse_scaling(text: &str) -> Result<ScalingHint> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        ["series", name, factor] => Ok(ScalingHint::Series {
            name: name.to_string(),
            factor: factor
                .parse::<f64>()
                .map_err(|_| MdbError::Config(format!("invalid scaling factor {factor:?}")))?,
        }),
        [dimension, level, member, factor] => Ok(ScalingHint::Member {
            dimension: dimension.to_string(),
            level: level
                .parse::<usize>()
                .map_err(|_| MdbError::Config(format!("invalid level {level:?}")))?,
            member: member.to_string(),
            factor: factor
                .parse::<f64>()
                .map_err(|_| MdbError::Config(format!("invalid scaling factor {factor:?}")))?,
        }),
        _ => Err(MdbError::Config(format!(
            "cannot parse scaling hint {text:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_triple_measure_1_temperature() {
        // "The triple Measure 1 Temperature … specifies that time series
        // sharing the member Temperature at level one of the Measure
        // dimension are correlated."
        let c = parse_clause("Measure 1 Temperature").unwrap();
        assert_eq!(
            c.primitives,
            vec![CorrelationPrimitive::Member {
                dimension: "Measure".into(),
                level: 1,
                member: "Temperature".into()
            }]
        );
    }

    #[test]
    fn paper_pair_location_2() {
        let c = parse_clause("Location 2").unwrap();
        assert_eq!(
            c.primitives,
            vec![CorrelationPrimitive::LcaLevel {
                dimension: "Location".into(),
                level: 2
            }]
        );
        // Zero and negative levels are valid.
        assert!(parse_clause("Location 0").is_ok());
        assert!(parse_clause("Location -1").is_ok());
    }

    #[test]
    fn ep_clause_from_the_evaluation() {
        // §7.3: "Correlation is set as Production 0; Measure 1 ProductionMWh".
        let c = parse_clause("Production 0; Measure 1 ProductionMWh").unwrap();
        assert_eq!(c.primitives.len(), 2);
        assert_eq!(
            c.primitives[1],
            CorrelationPrimitive::Member {
                dimension: "Measure".into(),
                level: 1,
                member: "ProductionMWh".into()
            }
        );
    }

    #[test]
    fn distance_parses_bare_and_keyword() {
        assert_eq!(
            parse_clause("0.25").unwrap().primitives,
            vec![CorrelationPrimitive::Distance(0.25)]
        );
        assert_eq!(
            parse_clause("distance 0.16666667").unwrap().primitives,
            vec![CorrelationPrimitive::Distance(0.16666667)]
        );
        assert!(parse_clause("distance 1.5").is_err());
        assert!(parse_clause("distance -0.1").is_err());
    }

    #[test]
    fn explicit_series_lists() {
        let c = parse_clause("series 4L80R9a_Temperature.gz 4L80R9b_Temperature.gz").unwrap();
        assert_eq!(
            c.primitives,
            vec![CorrelationPrimitive::TimeSeries(vec![
                "4L80R9a_Temperature.gz".into(),
                "4L80R9b_Temperature.gz".into()
            ])]
        );
        // Bare lists with > 3 names are unambiguous.
        let c = parse_clause("a.gz b.gz c.gz d.gz").unwrap();
        assert!(matches!(&c.primitives[0], CorrelationPrimitive::TimeSeries(v) if v.len() == 4));
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_clause("").is_err());
        assert!(parse_clause("Location two").is_err());
        assert!(parse_clause("Measure one Temperature").is_err());
    }

    #[test]
    fn weights_and_scaling_parse() {
        assert_eq!(
            parse_weight("Production 2.0").unwrap(),
            ("Production".into(), 2.0)
        );
        assert!(parse_weight("Production heavy").is_err());
        assert!(parse_weight("Production -1").is_err());
        assert_eq!(
            parse_scaling("Measure 1 ProductionMWh 4.75").unwrap(),
            ScalingHint::Member {
                dimension: "Measure".into(),
                level: 1,
                member: "ProductionMWh".into(),
                factor: 4.75
            }
        );
        assert_eq!(
            parse_scaling("series turbine9.gz 0.5").unwrap(),
            ScalingHint::Series {
                name: "turbine9.gz".into(),
                factor: 0.5
            }
        );
        assert!(parse_scaling("nonsense").is_err());
    }

    #[test]
    fn spec_weight_defaults_to_one() {
        let mut spec = CorrelationSpec::distance(0.25);
        assert_eq!(spec.weight("Location"), 1.0);
        spec.weights.insert("Location".into(), 2.5);
        assert_eq!(spec.weight("location"), 2.5);
    }
}

//! Assignment of groups to worker nodes.
//!
//! "To prevent data skew, each group is assigned to the worker with the most
//! available resources" (Section 3.1). The load of a group is its data rate —
//! members divided by sampling interval — and groups are placed greedily,
//! heaviest first, onto the least-loaded worker (LPT scheduling). Because
//! each group lives on exactly one node, ingestion and queries never shuffle
//! data between nodes, which is what makes the scale-out of Figure 20 linear.

use mdb_types::GroupMeta;

/// A group's ingest load: data points per second.
pub fn group_load(g: &GroupMeta) -> f64 {
    g.size() as f64 / (g.sampling_interval.max(1) as f64 / 1000.0)
}

/// Assigns each group to a worker in `0..n_workers`; `result[i]` is the
/// worker of `groups[i]`. Equivalent to the primaries of
/// [`assign_replicas`] with a replication factor of 1.
pub fn assign_workers(groups: &[GroupMeta], n_workers: usize) -> Vec<usize> {
    assign_replicas(groups, n_workers, 1)
        .into_iter()
        .map(|holders| holders[0])
        .collect()
}

/// Assigns each group to `replication` distinct workers in `0..n_workers`;
/// `result[i]` lists the holders of `groups[i]`, primary first.
///
/// Placement is the same LPT greedy as [`assign_workers`], generalized:
/// groups are placed heaviest first (deterministic gid tie-break), and each
/// takes the `replication` least-loaded workers — the least-loaded of those
/// becomes the primary. Every holder ingests the group's full stream, so
/// each charges the group's full load; queries read primaries only, so
/// replicas cost memory and ingest CPU, never query latency.
pub fn assign_replicas(
    groups: &[GroupMeta],
    n_workers: usize,
    replication: usize,
) -> Vec<Vec<usize>> {
    assert!(n_workers > 0, "need at least one worker");
    assert!(
        (1..=n_workers).contains(&replication),
        "replication factor {replication} must be in 1..={n_workers}"
    );
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        group_load(&groups[b])
            .partial_cmp(&group_load(&groups[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(groups[a].gid.cmp(&groups[b].gid))
    });
    let mut worker_load = vec![0.0f64; n_workers];
    let mut assignment = vec![Vec::new(); groups.len()];
    for idx in order {
        // The `replication` least-loaded workers, ties broken by index (the
        // sort is stable, so equal loads keep ascending worker order).
        let mut by_load: Vec<usize> = (0..n_workers).collect();
        by_load.sort_by(|&a, &b| {
            worker_load[a]
                .partial_cmp(&worker_load[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let holders: Vec<usize> = by_load.into_iter().take(replication).collect();
        for &w in &holders {
            worker_load[w] += group_load(&groups[idx]);
        }
        assignment[idx] = holders;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_types::TimeSeriesMeta;

    fn group(gid: u32, tids: std::ops::RangeInclusive<u32>, si: i64) -> GroupMeta {
        let tids: Vec<u32> = tids.collect();
        let metas: Vec<TimeSeriesMeta> = tids.iter().map(|&t| TimeSeriesMeta::new(t, si)).collect();
        GroupMeta::new(gid, tids, &metas).unwrap()
    }

    #[test]
    fn single_worker_takes_everything() {
        let groups = vec![group(1, 1..=3, 100), group(2, 4..=4, 100)];
        assert_eq!(assign_workers(&groups, 1), vec![0, 0]);
    }

    #[test]
    fn heaviest_groups_spread_first() {
        // Four equal groups over two workers → two each.
        let groups = vec![
            group(1, 1..=2, 100),
            group(2, 3..=4, 100),
            group(3, 5..=6, 100),
            group(4, 7..=8, 100),
        ];
        let a = assign_workers(&groups, 2);
        let w0 = a.iter().filter(|&&w| w == 0).count();
        assert_eq!(w0, 2, "{a:?}");
    }

    #[test]
    fn load_accounts_for_sampling_interval() {
        // One fast single-series group (100 ms) produces 10 points/s; six
        // slow series (60 s) produce 0.1 points/s. The fast group should sit
        // alone on its worker.
        let groups = vec![
            group(1, 1..=1, 100),
            group(2, 2..=7, 60_000),
            group(3, 8..=13, 60_000),
        ];
        let a = assign_workers(&groups, 2);
        assert_ne!(a[1], a[0]);
        assert_ne!(a[2], a[0]);
        assert_eq!(a[1], a[2]);
    }

    #[test]
    fn more_workers_than_groups() {
        let groups = vec![group(1, 1..=1, 100)];
        let a = assign_workers(&groups, 8);
        assert_eq!(a.len(), 1);
        assert!(a[0] < 8);
    }

    #[test]
    fn deterministic_for_equal_loads() {
        let groups = vec![
            group(1, 1..=1, 100),
            group(2, 2..=2, 100),
            group(3, 3..=3, 100),
        ];
        let a1 = assign_workers(&groups, 3);
        let a2 = assign_workers(&groups, 3);
        assert_eq!(a1, a2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        assign_workers(&[], 0);
    }

    #[test]
    fn replicas_are_distinct_and_primary_matches_assign_workers() {
        let groups = vec![
            group(1, 1..=4, 100),
            group(2, 5..=6, 100),
            group(3, 7..=12, 60_000),
            group(4, 13..=13, 100),
        ];
        for n_workers in 1..=4 {
            let primaries = assign_workers(&groups, n_workers);
            for k in 1..=n_workers {
                let replicated = assign_replicas(&groups, n_workers, k);
                for (i, holders) in replicated.iter().enumerate() {
                    assert_eq!(holders.len(), k, "group {i} with rf {k}");
                    let mut distinct = holders.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    assert_eq!(distinct.len(), k, "holders must be distinct");
                }
                if k == 1 {
                    let firsts: Vec<usize> = replicated.iter().map(|h| h[0]).collect();
                    assert_eq!(firsts, primaries);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn replication_beyond_workers_panics() {
        let groups = vec![group(1, 1..=1, 100)];
        assign_replicas(&groups, 2, 3);
    }

    proptest::proptest! {
        #[test]
        fn replica_loads_are_balanced(n_groups in 1usize..30, n_workers in 2usize..6) {
            let groups: Vec<GroupMeta> = (0..n_groups)
                .map(|i| group(i as u32 + 1, (i as u32 * 2 + 1)..=(i as u32 * 2 + 2), 1000))
                .collect();
            let a = assign_replicas(&groups, n_workers, 2);
            let mut per_worker = vec![0usize; n_workers];
            for (g, holders) in groups.iter().zip(&a) {
                for &w in holders {
                    per_worker[w] += g.size();
                }
            }
            let max = per_worker.iter().max().unwrap();
            let min = per_worker.iter().min().unwrap();
            // All groups weigh the same, so imbalance ≤ two copies.
            proptest::prop_assert!(max - min <= 4, "{:?}", per_worker);
        }

        #[test]
        fn loads_are_balanced(n_groups in 1usize..40, n_workers in 1usize..8) {
            let groups: Vec<GroupMeta> = (0..n_groups)
                .map(|i| group(i as u32 + 1, (i as u32 * 2 + 1)..=(i as u32 * 2 + 2), 1000))
                .collect();
            let a = assign_workers(&groups, n_workers);
            let mut per_worker = vec![0usize; n_workers];
            for (g, &w) in groups.iter().zip(&a) {
                per_worker[w] += g.size();
            }
            let max = per_worker.iter().max().unwrap();
            let min = per_worker.iter().min().unwrap();
            // All groups weigh the same here, so imbalance ≤ one group.
            proptest::prop_assert!(max - min <= 2, "{:?}", per_worker);
        }
    }
}

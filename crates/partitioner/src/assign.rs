//! Assignment of groups to worker nodes.
//!
//! "To prevent data skew, each group is assigned to the worker with the most
//! available resources" (Section 3.1). The load of a group is its data rate —
//! members divided by sampling interval — and groups are placed greedily,
//! heaviest first, onto the least-loaded worker (LPT scheduling). Because
//! each group lives on exactly one node, ingestion and queries never shuffle
//! data between nodes, which is what makes the scale-out of Figure 20 linear.

use mdb_types::GroupMeta;

/// Assigns each group to a worker in `0..n_workers`; `result[i]` is the
/// worker of `groups[i]`.
pub fn assign_workers(groups: &[GroupMeta], n_workers: usize) -> Vec<usize> {
    assert!(n_workers > 0, "need at least one worker");
    // Load = data points per second.
    let load = |g: &GroupMeta| g.size() as f64 / (g.sampling_interval.max(1) as f64 / 1000.0);
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        load(&groups[b])
            .partial_cmp(&load(&groups[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(groups[a].gid.cmp(&groups[b].gid))
    });
    let mut worker_load = vec![0.0f64; n_workers];
    let mut assignment = vec![0usize; groups.len()];
    for idx in order {
        let (worker, _) = worker_load
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap();
        assignment[idx] = worker;
        worker_load[worker] += load(&groups[idx]);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_types::TimeSeriesMeta;

    fn group(gid: u32, tids: std::ops::RangeInclusive<u32>, si: i64) -> GroupMeta {
        let tids: Vec<u32> = tids.collect();
        let metas: Vec<TimeSeriesMeta> = tids.iter().map(|&t| TimeSeriesMeta::new(t, si)).collect();
        GroupMeta::new(gid, tids, &metas).unwrap()
    }

    #[test]
    fn single_worker_takes_everything() {
        let groups = vec![group(1, 1..=3, 100), group(2, 4..=4, 100)];
        assert_eq!(assign_workers(&groups, 1), vec![0, 0]);
    }

    #[test]
    fn heaviest_groups_spread_first() {
        // Four equal groups over two workers → two each.
        let groups = vec![
            group(1, 1..=2, 100),
            group(2, 3..=4, 100),
            group(3, 5..=6, 100),
            group(4, 7..=8, 100),
        ];
        let a = assign_workers(&groups, 2);
        let w0 = a.iter().filter(|&&w| w == 0).count();
        assert_eq!(w0, 2, "{a:?}");
    }

    #[test]
    fn load_accounts_for_sampling_interval() {
        // One fast single-series group (100 ms) produces 10 points/s; six
        // slow series (60 s) produce 0.1 points/s. The fast group should sit
        // alone on its worker.
        let groups = vec![
            group(1, 1..=1, 100),
            group(2, 2..=7, 60_000),
            group(3, 8..=13, 60_000),
        ];
        let a = assign_workers(&groups, 2);
        assert_ne!(a[1], a[0]);
        assert_ne!(a[2], a[0]);
        assert_eq!(a[1], a[2]);
    }

    #[test]
    fn more_workers_than_groups() {
        let groups = vec![group(1, 1..=1, 100)];
        let a = assign_workers(&groups, 8);
        assert_eq!(a.len(), 1);
        assert!(a[0] < 8);
    }

    #[test]
    fn deterministic_for_equal_loads() {
        let groups = vec![
            group(1, 1..=1, 100),
            group(2, 2..=2, 100),
            group(3, 3..=3, 100),
        ];
        let a1 = assign_workers(&groups, 3);
        let a2 = assign_workers(&groups, 3);
        assert_eq!(a1, a2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        assign_workers(&[], 0);
    }

    proptest::proptest! {
        #[test]
        fn loads_are_balanced(n_groups in 1usize..40, n_workers in 1usize..8) {
            let groups: Vec<GroupMeta> = (0..n_groups)
                .map(|i| group(i as u32 + 1, (i as u32 * 2 + 1)..=(i as u32 * 2 + 2), 1000))
                .collect();
            let a = assign_workers(&groups, n_workers);
            let mut per_worker = vec![0usize; n_workers];
            for (g, &w) in groups.iter().zip(&a) {
                per_worker[w] += g.size();
            }
            let max = per_worker.iter().max().unwrap();
            let min = per_worker.iter().min().unwrap();
            // All groups weigh the same here, so imbalance ≤ one group.
            proptest::prop_assert!(max - min <= 2, "{:?}", per_worker);
        }
    }
}

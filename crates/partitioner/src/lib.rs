//! Partitioning of time series into groups of correlated series (Section 4).
//!
//! Computing correlation from historical data is infeasible at scale (50,000
//! series already yield ~1.25 × 10⁹ pairs), so ModelarDB+ partitions using
//! only metadata: a set of user-hint *primitives* describing correlation
//! ([`spec`]), combined by [`grouping`] with Algorithm 1 (fixpoint pairwise
//! merging) and Algorithm 2 (normalized dimensional distance). [`assign`]
//! spreads the resulting groups over workers to prevent data skew.

pub mod assign;
pub mod grouping;
pub mod spec;

pub use assign::{assign_replicas, assign_workers, group_load};
pub use grouping::{lowest_distance, partition, Partitioning};
pub use spec::{CorrelationClause, CorrelationPrimitive, CorrelationSpec, ScalingHint};

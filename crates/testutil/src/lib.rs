//! Shared test support for the workspace.
//!
//! The only facility so far is [`TempDir`]: a scoped temporary directory
//! that is removed when the value drops — including on panic unwind, which
//! the ad-hoc `std::env::temp_dir().join(...)` + trailing `remove_dir_all`
//! pattern it replaces never handled (a failing assertion leaked the
//! directory and could poison the next run of the same test).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A uniquely named directory under the system temp dir, deleted on drop.
///
/// Uniqueness combines the process id with a process-wide counter, so
/// concurrently running tests (and concurrently running test *binaries*)
/// never collide. The directory itself is created eagerly; use
/// [`TempDir::path`] to build paths inside it.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `mdb-<tag>-<pid>-<n>` under [`std::env::temp_dir`].
    pub fn new(tag: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("mdb-{tag}-{}-{n}", std::process::id()));
        // A stale directory from a previous crashed run (the counter resets
        // per process, the pid may be recycled) must not leak into this one.
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path to `name` inside the directory (not created).
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = TempDir::new("testutil-basic");
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(dir.join("x"), b"y").unwrap();
        }
        assert!(!kept.exists(), "directory must be removed on drop");
    }

    #[test]
    fn two_dirs_never_collide() {
        let a = TempDir::new("testutil-collide");
        let b = TempDir::new("testutil-collide");
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn cleans_up_on_panic() {
        let kept = std::sync::Arc::new(std::sync::Mutex::new(PathBuf::new()));
        let kept_ref = std::sync::Arc::clone(&kept);
        let result = std::panic::catch_unwind(move || {
            let dir = TempDir::new("testutil-panic");
            *kept_ref.lock().unwrap() = dir.path().to_path_buf();
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(!kept.lock().unwrap().exists(), "drop must run on unwind");
    }
}

//! Columnar row batches for bulk ingestion.
//!
//! The paper's ingestion numbers assume bulk writes (Table 1 sets a bulk
//! write size of 50 000); [`RowBatch`] carries that batching through every
//! layer above the store. A batch holds a timestamps column plus one value
//! column per series, each with a validity bitmap marking which rows carry a
//! value and which fall inside a gap (Definition 6). [`BatchView`] projects a
//! batch onto a subset of its columns — the engine uses it to hand each time
//! series group its member columns without copying or per-tick allocation.

use crate::datapoint::{Timestamp, Value};

/// One value column: densely stored values plus a validity bitmap. Rows in a
/// gap store `0.0` and a cleared validity bit.
#[derive(Debug, Clone, Default, PartialEq)]
struct Column {
    values: Vec<Value>,
    /// Bit `r % 64` of word `r / 64` is set when row `r` holds a value.
    validity: Vec<u64>,
}

impl Column {
    fn with_capacity(rows: usize) -> Self {
        Self {
            values: Vec::with_capacity(rows),
            validity: Vec::with_capacity(rows / 64 + 1),
        }
    }

    fn push(&mut self, value: Option<Value>) {
        let row = self.values.len();
        if row.is_multiple_of(64) {
            self.validity.push(0);
        }
        if let Some(v) = value {
            self.validity[row / 64] |= 1 << (row % 64);
            self.values.push(v);
        } else {
            self.values.push(0.0);
        }
    }

    #[inline]
    fn get(&self, row: usize) -> Option<Value> {
        if self.validity[row / 64] & (1 << (row % 64)) != 0 {
            Some(self.values[row])
        } else {
            None
        }
    }

    fn clear(&mut self) {
        self.values.clear();
        self.validity.clear();
    }
}

/// A columnar batch of ingestion rows: a timestamps column plus one value
/// column per series, with validity bitmaps recording gaps.
///
/// Batches are append-only; [`RowBatch::clear`] resets a batch for reuse
/// while keeping its heap allocations, so a steady-state ingestion loop can
/// fill and ship the same batch repeatedly without allocating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBatch {
    timestamps: Vec<Timestamp>,
    columns: Vec<Column>,
}

impl RowBatch {
    /// An empty batch for `n_series` series.
    pub fn new(n_series: usize) -> Self {
        Self::with_capacity(n_series, 0)
    }

    /// An empty batch for `n_series` series with room for `rows` rows.
    pub fn with_capacity(n_series: usize, rows: usize) -> Self {
        Self {
            timestamps: Vec::with_capacity(rows),
            columns: (0..n_series).map(|_| Column::with_capacity(rows)).collect(),
        }
    }

    /// Number of series (value columns).
    pub fn n_series(&self) -> usize {
        self.columns.len()
    }

    /// Number of buffered rows (ticks).
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Removes all rows but keeps the column allocations for reuse.
    pub fn clear(&mut self) {
        self.timestamps.clear();
        for column in &mut self.columns {
            column.clear();
        }
    }

    /// Appends one row: `row[s]` is the value of series `s` at `timestamp`,
    /// `None` meaning the series is in a gap.
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from [`RowBatch::n_series`].
    pub fn push_row(&mut self, timestamp: Timestamp, row: &[Option<Value>]) {
        assert_eq!(row.len(), self.n_series(), "row width must match the batch");
        self.push_row_with(timestamp, |s| row[s]);
    }

    /// Appends one row with the value of series `s` produced by `value(s)` —
    /// the allocation-free way to fill a batch from a generator.
    pub fn push_row_with(
        &mut self,
        timestamp: Timestamp,
        mut value: impl FnMut(usize) -> Option<Value>,
    ) {
        self.timestamps.push(timestamp);
        for (s, column) in self.columns.iter_mut().enumerate() {
            column.push(value(s));
        }
    }

    /// The timestamps column.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// The value of series `series` at row `row`, or `None` during a gap.
    #[inline]
    pub fn get(&self, row: usize, series: usize) -> Option<Value> {
        self.columns[series].get(row)
    }

    /// A view over every column of this batch.
    pub fn view(&self) -> BatchView<'_> {
        BatchView {
            batch: self,
            columns: None,
        }
    }

    /// A view over the columns at `columns` (in that order) — how the engine
    /// projects one catalog-wide batch onto a group's member series. The
    /// indices are borrowed, so building the view performs no allocation.
    ///
    /// # Panics
    ///
    /// Accessors of the returned view panic if an index is out of range.
    pub fn select<'a>(&'a self, columns: &'a [usize]) -> BatchView<'a> {
        BatchView {
            batch: self,
            columns: Some(columns),
        }
    }
}

/// A borrowed projection of a [`RowBatch`] onto a subset of its columns.
#[derive(Debug, Clone, Copy)]
pub struct BatchView<'a> {
    batch: &'a RowBatch,
    /// `columns[s]` is the batch column backing view column `s`; `None` is
    /// the identity projection.
    columns: Option<&'a [usize]>,
}

impl BatchView<'_> {
    /// Number of rows (ticks).
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True when the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Number of series (columns) selected by the view.
    pub fn n_series(&self) -> usize {
        match self.columns {
            Some(columns) => columns.len(),
            None => self.batch.n_series(),
        }
    }

    /// The timestamp of row `row`.
    #[inline]
    pub fn timestamp(&self, row: usize) -> Timestamp {
        self.batch.timestamps[row]
    }

    /// The value of view column `series` at `row`, or `None` during a gap.
    #[inline]
    pub fn get(&self, row: usize, series: usize) -> Option<Value> {
        let column = match self.columns {
            Some(columns) => columns[series],
            None => series,
        };
        self.batch.get(row, column)
    }

    /// True when every selected series is in a gap at `row` — a tick the
    /// whole group missed, which ingestion treats as a gap, not data.
    pub fn row_all_gaps(&self, row: usize) -> bool {
        (0..self.n_series()).all(|s| self.get(row, s).is_none())
    }

    /// Copies the view into an owned batch (used when a batch slice must
    /// cross a thread boundary, e.g. master → worker routing).
    pub fn to_batch(&self) -> RowBatch {
        let mut out = RowBatch::with_capacity(self.n_series(), self.len());
        for row in 0..self.len() {
            out.push_row_with(self.timestamp(row), |s| self.get(row, s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut b = RowBatch::with_capacity(3, 4);
        b.push_row(100, &[Some(1.0), None, Some(3.0)]);
        b.push_row(200, &[None, Some(2.0), None]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.n_series(), 3);
        assert_eq!(b.timestamps(), &[100, 200]);
        assert_eq!(b.get(0, 0), Some(1.0));
        assert_eq!(b.get(0, 1), None);
        assert_eq!(b.get(0, 2), Some(3.0));
        assert_eq!(b.get(1, 0), None);
        assert_eq!(b.get(1, 1), Some(2.0));
    }

    #[test]
    fn validity_bitmap_crosses_word_boundaries() {
        let mut b = RowBatch::new(1);
        for t in 0..130i64 {
            b.push_row(t, &[(t % 3 != 0).then_some(t as Value)]);
        }
        for t in 0..130usize {
            let expected = (t % 3 != 0).then_some(t as Value);
            assert_eq!(b.get(t, 0), expected, "row {t}");
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_rows() {
        let mut b = RowBatch::with_capacity(2, 8);
        for t in 0..8i64 {
            b.push_row(t, &[Some(1.0), Some(2.0)]);
        }
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.n_series(), 2);
        b.push_row(0, &[None, Some(9.0)]);
        assert_eq!(b.get(0, 1), Some(9.0));
        assert_eq!(b.get(0, 0), None);
    }

    #[test]
    fn select_projects_columns_in_order() {
        let mut b = RowBatch::new(4);
        b.push_row(0, &[Some(0.0), Some(1.0), None, Some(3.0)]);
        b.push_row(100, &[None, None, None, None]);
        let view = b.select(&[3, 1]);
        assert_eq!(view.n_series(), 2);
        assert_eq!(view.get(0, 0), Some(3.0));
        assert_eq!(view.get(0, 1), Some(1.0));
        assert!(!view.row_all_gaps(0));
        assert!(view.row_all_gaps(1));
        assert_eq!(view.timestamp(1), 100);
    }

    #[test]
    fn identity_view_and_to_batch() {
        let mut b = RowBatch::new(2);
        b.push_row(0, &[Some(1.0), None]);
        b.push_row(100, &[Some(2.0), Some(4.0)]);
        let v = b.view();
        assert_eq!(v.n_series(), 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(1, 1), Some(4.0));
        let copy = v.to_batch();
        assert_eq!(copy, b);
        let projected = b.select(&[1]).to_batch();
        assert_eq!(projected.n_series(), 1);
        assert_eq!(projected.get(0, 0), None);
        assert_eq!(projected.get(1, 0), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_row_rejects_wrong_width() {
        let mut b = RowBatch::new(2);
        b.push_row(0, &[Some(1.0)]);
    }
}

//! A dependency-free proleptic-Gregorian UTC calendar.
//!
//! Aggregation in the time dimension (Section 6.3, Algorithm 6) needs to
//! split segment intervals at calendar boundaries (`ceilToLevel`,
//! `updateForLevel`) and to compute DatePart-style group keys (the
//! `CUBE_SUM_HOUR` example of Figure 12 groups by hour of day; the paper also
//! highlights aggregates over "the days of months" that InfluxDB cannot
//! express). No date/time crate is on the approved dependency list, so the
//! conversions are implemented here with Howard Hinnant's `civil_from_days` /
//! `days_from_civil` algorithms and tested against a naive day-walking
//! reference.

use serde::{Deserialize, Serialize};

use crate::datapoint::Timestamp;

/// Milliseconds per second/minute/hour/day.
pub const MS_PER_SECOND: i64 = 1_000;
pub const MS_PER_MINUTE: i64 = 60 * MS_PER_SECOND;
pub const MS_PER_HOUR: i64 = 60 * MS_PER_MINUTE;
pub const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

/// A level of the implicit time hierarchy used by `CUBE_<AGG>_<LEVEL>`
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeLevel {
    Year,
    Month,
    Day,
    Hour,
    Minute,
    Second,
}

impl TimeLevel {
    /// Parses the suffix of a `CUBE_*` function name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "YEAR" => Some(TimeLevel::Year),
            "MONTH" => Some(TimeLevel::Month),
            "DAY" => Some(TimeLevel::Day),
            "HOUR" => Some(TimeLevel::Hour),
            "MINUTE" => Some(TimeLevel::Minute),
            "SECOND" => Some(TimeLevel::Second),
            _ => None,
        }
    }

    /// The fixed duration of one unit at this level, when one exists
    /// (months and years vary).
    pub fn fixed_duration_ms(&self) -> Option<i64> {
        match self {
            TimeLevel::Second => Some(MS_PER_SECOND),
            TimeLevel::Minute => Some(MS_PER_MINUTE),
            TimeLevel::Hour => Some(MS_PER_HOUR),
            TimeLevel::Day => Some(MS_PER_DAY),
            TimeLevel::Month | TimeLevel::Year => None,
        }
    }
}

/// A broken-down UTC timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    pub year: i64,
    /// 1–12.
    pub month: u32,
    /// 1–31.
    pub day: u32,
    /// 0–23.
    pub hour: u32,
    /// 0–59.
    pub minute: u32,
    /// 0–59.
    pub second: u32,
    /// 0–999.
    pub millisecond: u32,
}

/// Days since 1970-01-01 for a civil date (Hinnant's `days_from_civil`).
pub fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    debug_assert!((1..=12).contains(&month));
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = if month > 2 { month - 3 } else { month + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant's `civil_from_days`).
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Is `year` a leap year in the proleptic Gregorian calendar?
pub fn is_leap_year(year: i64) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// The number of days in `month` of `year`.
pub fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month {month} out of range"),
    }
}

/// Breaks a millisecond timestamp into civil UTC fields.
pub fn decompose(ts: Timestamp) -> Civil {
    let days = ts.div_euclid(MS_PER_DAY);
    let ms_of_day = ts.rem_euclid(MS_PER_DAY);
    let (year, month, day) = civil_from_days(days);
    Civil {
        year,
        month,
        day,
        hour: (ms_of_day / MS_PER_HOUR) as u32,
        minute: (ms_of_day % MS_PER_HOUR / MS_PER_MINUTE) as u32,
        second: (ms_of_day % MS_PER_MINUTE / MS_PER_SECOND) as u32,
        millisecond: (ms_of_day % MS_PER_SECOND) as u32,
    }
}

/// Rebuilds a millisecond timestamp from civil UTC fields.
pub fn compose(c: Civil) -> Timestamp {
    days_from_civil(c.year, c.month, c.day) * MS_PER_DAY
        + i64::from(c.hour) * MS_PER_HOUR
        + i64::from(c.minute) * MS_PER_MINUTE
        + i64::from(c.second) * MS_PER_SECOND
        + i64::from(c.millisecond)
}

/// Clamps an `i128` millisecond value into the `Timestamp` (`i64`) domain.
///
/// `truncate` and `next_boundary` compute in `i128` and saturate at the
/// domain edges: near `Timestamp::MIN` the true bucket start may not be
/// representable, and near `Timestamp::MAX` there may be no representable
/// strictly-greater boundary. Saturation preserves `truncate(ts) <= ts` and
/// idempotence; `next_boundary` may return `Timestamp::MAX` itself (its only
/// non-strict result) when it saturates.
fn clamp_ms(ms: i128) -> Timestamp {
    ms.clamp(i128::from(Timestamp::MIN), i128::from(Timestamp::MAX)) as Timestamp
}

/// Floors `ts` to the start of the calendar unit containing it at `level`.
///
/// Saturates to `Timestamp::MIN` when the true bucket start is below the
/// representable range; `truncate(ts) <= ts` and idempotence hold everywhere.
pub fn truncate(level: TimeLevel, ts: Timestamp) -> Timestamp {
    if let Some(unit) = level.fixed_duration_ms() {
        return clamp_ms(i128::from(ts.div_euclid(unit)) * i128::from(unit));
    }
    let c = decompose(ts);
    let days = match level {
        TimeLevel::Month => days_from_civil(c.year, c.month, 1),
        TimeLevel::Year => days_from_civil(c.year, 1, 1),
        _ => unreachable!(),
    };
    clamp_ms(i128::from(days) * i128::from(MS_PER_DAY))
}

/// The first boundary of `level` strictly after `ts` — the `ceilToLevel` /
/// `updateForLevel` helpers of Algorithm 6 (for a timestamp exactly on a
/// boundary, the *next* boundary is returned so that the interval
/// `[boundary, next)` is half-open).
///
/// Saturates to `Timestamp::MAX` when no representable strictly-greater
/// boundary exists; callers treating `[boundary, next)` as half-open must
/// regard a saturated result as an open-ended final bucket.
pub fn next_boundary(level: TimeLevel, ts: Timestamp) -> Timestamp {
    if let Some(unit) = level.fixed_duration_ms() {
        return clamp_ms((i128::from(ts.div_euclid(unit)) + 1) * i128::from(unit));
    }
    let c = decompose(ts);
    let days = match level {
        TimeLevel::Month => {
            let (y, m) = if c.month == 12 {
                (c.year + 1, 1)
            } else {
                (c.year, c.month + 1)
            };
            days_from_civil(y, m, 1)
        }
        TimeLevel::Year => days_from_civil(c.year + 1, 1, 1),
        _ => unreachable!(),
    };
    clamp_ms(i128::from(days) * i128::from(MS_PER_DAY))
}

/// The DatePart-style group key of `ts` at `level`: year number, month of
/// year (1–12), day of month (1–31), hour of day (0–23), minute of hour, or
/// second of minute. This is the key space of the `CUBE_*` result maps in
/// Figure 12 (`{0: …, 1: …, 2: …}` for hours of the day).
pub fn part(level: TimeLevel, ts: Timestamp) -> i64 {
    let c = decompose(ts);
    match level {
        TimeLevel::Year => c.year,
        TimeLevel::Month => i64::from(c.month),
        TimeLevel::Day => i64::from(c.day),
        TimeLevel::Hour => i64::from(c.hour),
        TimeLevel::Minute => i64::from(c.minute),
        TimeLevel::Second => i64::from(c.second),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970_01_01() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        let c = decompose(0);
        assert_eq!(
            (
                c.year,
                c.month,
                c.day,
                c.hour,
                c.minute,
                c.second,
                c.millisecond
            ),
            (1970, 1, 1, 0, 0, 0, 0)
        );
    }

    #[test]
    fn known_dates_round_trip() {
        // 2016-04-12 ~= the EndTime values in Figure 6 (1460442620000 ms).
        let c = decompose(1_460_442_620_000);
        assert_eq!((c.year, c.month, c.day), (2016, 4, 12));
        assert_eq!(compose(c), 1_460_442_620_000);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
        assert_eq!(days_in_month(2023, 12), 31);
    }

    #[test]
    fn truncate_fixed_levels() {
        let ts = compose(Civil {
            year: 2021,
            month: 3,
            day: 7,
            hour: 13,
            minute: 45,
            second: 12,
            millisecond: 345,
        });
        let h = decompose(truncate(TimeLevel::Hour, ts));
        assert_eq!((h.hour, h.minute, h.second, h.millisecond), (13, 0, 0, 0));
        let m = decompose(truncate(TimeLevel::Minute, ts));
        assert_eq!((m.minute, m.second), (45, 0));
        let d = decompose(truncate(TimeLevel::Day, ts));
        assert_eq!((d.day, d.hour), (7, 0));
    }

    #[test]
    fn truncate_variable_levels() {
        let ts = compose(Civil {
            year: 2021,
            month: 3,
            day: 7,
            hour: 13,
            minute: 45,
            second: 12,
            millisecond: 345,
        });
        let mo = decompose(truncate(TimeLevel::Month, ts));
        assert_eq!((mo.year, mo.month, mo.day, mo.hour), (2021, 3, 1, 0));
        let y = decompose(truncate(TimeLevel::Year, ts));
        assert_eq!((y.year, y.month, y.day), (2021, 1, 1));
    }

    #[test]
    fn next_boundary_is_strictly_greater() {
        let on_boundary = compose(Civil {
            year: 2021,
            month: 3,
            day: 7,
            hour: 13,
            minute: 0,
            second: 0,
            millisecond: 0,
        });
        assert_eq!(
            next_boundary(TimeLevel::Hour, on_boundary),
            on_boundary + MS_PER_HOUR
        );
        let off_boundary = on_boundary + 123;
        assert_eq!(
            next_boundary(TimeLevel::Hour, off_boundary),
            on_boundary + MS_PER_HOUR
        );
    }

    #[test]
    fn next_boundary_month_and_year_wrap() {
        let dec = compose(Civil {
            year: 2021,
            month: 12,
            day: 30,
            hour: 1,
            minute: 0,
            second: 0,
            millisecond: 0,
        });
        let nm = decompose(next_boundary(TimeLevel::Month, dec));
        assert_eq!((nm.year, nm.month, nm.day), (2022, 1, 1));
        let ny = decompose(next_boundary(TimeLevel::Year, dec));
        assert_eq!((ny.year, ny.month, ny.day), (2022, 1, 1));
        let feb = compose(Civil {
            year: 2024,
            month: 2,
            day: 1,
            hour: 0,
            minute: 0,
            second: 0,
            millisecond: 0,
        });
        assert_eq!(next_boundary(TimeLevel::Month, feb) - feb, 29 * MS_PER_DAY);
    }

    #[test]
    fn figure12_hour_parts() {
        // Figure 12: a segment from 00:13 to 02:48 yields hour keys 0, 1, 2.
        let base = compose(Civil {
            year: 2021,
            month: 6,
            day: 1,
            hour: 0,
            minute: 13,
            second: 0,
            millisecond: 0,
        });
        assert_eq!(part(TimeLevel::Hour, base), 0);
        assert_eq!(part(TimeLevel::Hour, base + MS_PER_HOUR), 1);
        assert_eq!(part(TimeLevel::Hour, base + 2 * MS_PER_HOUR), 2);
        assert_eq!(part(TimeLevel::Month, base), 6);
        assert_eq!(part(TimeLevel::Year, base), 2021);
        assert_eq!(part(TimeLevel::Day, base), 1);
    }

    #[test]
    fn negative_timestamps_use_euclidean_division() {
        // One millisecond before the epoch is 1969-12-31 23:59:59.999.
        let c = decompose(-1);
        assert_eq!(
            (
                c.year,
                c.month,
                c.day,
                c.hour,
                c.minute,
                c.second,
                c.millisecond
            ),
            (1969, 12, 31, 23, 59, 59, 999)
        );
        assert_eq!(truncate(TimeLevel::Day, -1), -MS_PER_DAY);
        assert_eq!(next_boundary(TimeLevel::Day, -1), 0);
    }

    #[test]
    fn parse_level_names() {
        assert_eq!(TimeLevel::parse("hour"), Some(TimeLevel::Hour));
        assert_eq!(TimeLevel::parse("MONTH"), Some(TimeLevel::Month));
        assert_eq!(TimeLevel::parse("fortnight"), None);
    }

    /// A naive reference: walk day-by-day from the epoch.
    fn naive_civil_from_days(mut z: i64) -> (i64, u32, u32) {
        let (mut y, mut m, mut d) = (1970i64, 1u32, 1u32);
        while z > 0 {
            d += 1;
            if d > days_in_month(y, m) {
                d = 1;
                m += 1;
                if m > 12 {
                    m = 1;
                    y += 1;
                }
            }
            z -= 1;
        }
        (y, m, d)
    }

    #[test]
    fn matches_naive_reference_across_five_decades() {
        // Sampled sweep (every 13 days) from 1970 to ~2105.
        for z in (0..49_400).step_by(13) {
            assert_eq!(civil_from_days(z), naive_civil_from_days(z), "day {z}");
        }
    }

    proptest::proptest! {
        #[test]
        fn civil_round_trips(z in -100_000i64..100_000) {
            let (y, m, d) = civil_from_days(z);
            proptest::prop_assert_eq!(days_from_civil(y, m, d), z);
            proptest::prop_assert!((1..=12).contains(&m));
            proptest::prop_assert!(d >= 1 && d <= days_in_month(y, m));
        }

        #[test]
        fn decompose_compose_round_trips(ts in -4_000_000_000_000i64..4_000_000_000_000) {
            proptest::prop_assert_eq!(compose(decompose(ts)), ts);
        }

        #[test]
        fn truncate_is_idempotent_and_below(ts in 0i64..4_000_000_000_000, level_idx in 0usize..6) {
            let level = [TimeLevel::Year, TimeLevel::Month, TimeLevel::Day, TimeLevel::Hour, TimeLevel::Minute, TimeLevel::Second][level_idx];
            let t = truncate(level, ts);
            proptest::prop_assert!(t <= ts);
            proptest::prop_assert_eq!(truncate(level, t), t);
            let nb = next_boundary(level, ts);
            proptest::prop_assert!(nb > ts);
            proptest::prop_assert_eq!(truncate(level, nb), nb);
        }
    }

    /// Naive per-point bucketing oracle: zero out every civil field finer
    /// than `level`. Independent of the `div_euclid`/`days_from_civil`
    /// arithmetic used by `truncate`.
    fn oracle_bucket_start(level: TimeLevel, ts: Timestamp) -> Timestamp {
        let mut c = decompose(ts);
        c.millisecond = 0;
        if level == TimeLevel::Second {
            return compose(c);
        }
        c.second = 0;
        if level == TimeLevel::Minute {
            return compose(c);
        }
        c.minute = 0;
        if level == TimeLevel::Hour {
            return compose(c);
        }
        c.hour = 0;
        if level == TimeLevel::Day {
            return compose(c);
        }
        c.day = 1;
        if level == TimeLevel::Month {
            return compose(c);
        }
        c.month = 1;
        compose(c)
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(96))]
        #[test]
        fn bucketing_agrees_with_per_point_oracle(
            start in -4_000_000_000_000i64..4_000_000_000_000,
            span_units in 0i64..96,
            jitter in 0i64..500_000,
            level_idx in 0usize..3,
        ) {
            let level = [TimeLevel::Hour, TimeLevel::Day, TimeLevel::Month][level_idx];
            // ~One unit at this level, so the range covers up to ~96 buckets
            // (31 days approximates a month; exactness is not needed, only a
            // bound on the walk below). span_units == 0 with jitter == 0
            // exercises the zero-width range.
            let unit = level.fixed_duration_ms().unwrap_or(31 * MS_PER_DAY);
            let end = (start + span_units * unit + jitter).min(4_000_000_000_000);
            let step = ((end - start) / 64).max(1);

            // Every sampled point lands in the oracle's bucket.
            let mut sampled_buckets = std::collections::BTreeSet::new();
            let mut p = start;
            loop {
                let b = truncate(level, p);
                proptest::prop_assert_eq!(b, oracle_bucket_start(level, p));
                proptest::prop_assert!(b <= p);
                proptest::prop_assert!(next_boundary(level, b) > p);
                sampled_buckets.insert(b);
                if p >= end {
                    break;
                }
                p = (p + step).min(end);
            }

            // Walking boundaries from the first bucket enumerates a strictly
            // increasing sequence of self-truncating bucket starts covering
            // every sampled bucket.
            let mut walked = std::collections::BTreeSet::new();
            let mut b = truncate(level, start);
            while b <= end {
                proptest::prop_assert_eq!(truncate(level, b), b);
                walked.insert(b);
                let nb = next_boundary(level, b);
                proptest::prop_assert!(nb > b);
                b = nb;
            }
            proptest::prop_assert!(sampled_buckets.is_subset(&walked));
        }

        #[test]
        fn truncate_and_next_boundary_are_monotone_over_full_domain(
            a in proptest::num::i64::ANY,
            b in proptest::num::i64::ANY,
            level_idx in 0usize..6,
        ) {
            let level = [TimeLevel::Year, TimeLevel::Month, TimeLevel::Day, TimeLevel::Hour, TimeLevel::Minute, TimeLevel::Second][level_idx];
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            proptest::prop_assert!(truncate(level, lo) <= truncate(level, hi));
            proptest::prop_assert!(next_boundary(level, lo) <= next_boundary(level, hi));
            let t = truncate(level, hi);
            proptest::prop_assert!(t <= hi);
            proptest::prop_assert_eq!(truncate(level, t), t);
        }
    }

    #[test]
    fn i64_extremes_saturate_without_panicking() {
        let levels = [
            TimeLevel::Year,
            TimeLevel::Month,
            TimeLevel::Day,
            TimeLevel::Hour,
            TimeLevel::Minute,
            TimeLevel::Second,
        ];
        for ts in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            for level in levels {
                let t = truncate(level, ts);
                assert!(t <= ts, "truncate({level:?}, {ts}) = {t} above input");
                assert_eq!(truncate(level, t), t, "truncate not idempotent at {ts}");
                let nb = next_boundary(level, ts);
                assert!(
                    nb > ts || nb == i64::MAX,
                    "next_boundary({level:?}, {ts}) = {nb} neither greater nor saturated"
                );
                assert!(nb >= t);
            }
        }
    }
}

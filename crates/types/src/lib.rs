//! Core definitions shared by every crate in the ModelarDB+ reproduction.
//!
//! This crate mirrors the formal definitions of the paper (Section 2):
//!
//! * [`DataPoint`] — Definition 1 (time series as sequences of data points).
//! * Regular time series, sampling intervals, and gaps — Definitions 2–6,
//!   represented by [`TimeSeriesMeta`] plus [`GapsMask`].
//! * [`dimensions`] — Definition 7 (hierarchical dimensions with members,
//!   levels, and parents, topped by ⊤).
//! * Time series groups — Definition 8, represented by [`GroupMeta`].
//! * [`SegmentRecord`] — Definition 9 (the 6-tuple `(ts, te, SI, Gts, M, ε)`),
//!   in the storage layout of Figure 6.
//! * [`ErrorBound`] — the user-defined error bound `ε` (possibly zero).
//! * [`RowBatch`] — the columnar ingestion batch (timestamps column plus
//!   per-series value columns with validity bitmaps) that carries Table 1's
//!   bulk write size through every ingestion layer, not just the store.
//! * [`BlockMeta`] — per-block statistics of the out-of-core segment log
//!   (Section 3.3's block statistics), letting scans skip blocks before
//!   they are fetched from disk.
//!
//! It also provides [`time`], a dependency-free UTC civil-time calendar used
//! for aggregation in the time dimension (Section 6.3), and the shared
//! [`MdbError`] error type.

pub mod batch;
pub mod block;
pub mod bound;
pub mod datapoint;
pub mod dimensions;
pub mod error;
pub mod interval;
pub mod meta;
pub mod segment;
pub mod time;
pub mod view;

pub use batch::{BatchView, RowBatch};
pub use block::{BlockFormat, BlockMeta, BlockSketches};
pub use bound::ErrorBound;
pub use datapoint::{DataPoint, Tid, Timestamp, Value};
pub use dimensions::{DimensionSchema, Dimensions, MemberId, LEVEL_TOP};
pub use error::{MdbError, Result};
pub use interval::ValueInterval;
pub use mdb_sketch::BlockSketch;
pub use meta::{Gid, GroupMeta, TimeSeriesMeta};
pub use segment::{GapsMask, SegmentRecord, MAX_GROUP_SIZE};
pub use time::TimeLevel;
pub use view::{encode_block_v2, BlockView, SegmentView};

//! Zero-copy block views: the v2 on-disk block layout and the borrowed
//! segment accessors over it.
//!
//! The v1 block payload interleaves varint-encoded segments, so reading any
//! segment means decoding all of them into owned [`SegmentRecord`]s — one
//! heap allocation per segment per cold fetch. The v2 layout is columnar
//! and self-describing: a fixed section table followed by aligned
//! little-endian columns (end times, sampling intervals, gap masks, gids,
//! sizes-in-points, parameter offsets, model ids) and a packed parameter
//! heap. A [`BlockView`] validates the whole table **once** when the block
//! is fetched; afterwards every segment is a [`SegmentView`] — a handful of
//! `from_le_bytes` reads plus a borrowed parameter slice, no allocation.
//!
//! `StartTime` stays derived, exactly as in the v1 codec (Section 3.3 of
//! the paper): the column stores the segment length in data points and the
//! view recomputes `StartTime = EndTime − (Size − 1) × SI`.

use crate::datapoint::Timestamp;
use crate::meta::Gid;
use crate::segment::{GapsMask, SegmentRecord};

/// Version tag leading every v2 block payload.
pub const BLOCK_LAYOUT_V2: u32 = 2;

/// Byte length of the v2 section table: version, count, eight section
/// offsets, and the total payload length — eleven `u32` fields.
pub const V2_TABLE_BYTES: usize = 44;

/// First section offset: the table padded to 8-byte alignment so the
/// widest (`i64`/`u64`) columns start aligned.
const V2_SECTIONS_START: usize = 48;

/// One segment borrowed out of a block buffer (or out of an owned
/// [`SegmentRecord`] via [`SegmentRecord::view`]): the same fields as the
/// record, with the parameters as a borrowed slice instead of owned bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentView<'a> {
    /// The group whose series this segment represents.
    pub gid: Gid,
    /// Timestamp of the first represented data point (inclusive).
    pub start_time: Timestamp,
    /// Timestamp of the last represented data point (inclusive).
    pub end_time: Timestamp,
    /// Sampling interval in milliseconds.
    pub sampling_interval: i64,
    /// Which model type `params` belongs to.
    pub mid: u8,
    /// The model's parameters, borrowed from the block buffer.
    pub params: &'a [u8],
    /// Group member positions *not* represented by this segment.
    pub gaps: GapsMask,
}

impl<'a> SegmentView<'a> {
    /// The number of timestamps this segment spans per represented series.
    pub fn len(&self) -> usize {
        debug_assert!(self.end_time >= self.start_time);
        ((self.end_time - self.start_time) / self.sampling_interval) as usize + 1
    }

    /// True only for degenerate zero-length segments (never stored).
    pub fn is_empty(&self) -> bool {
        self.end_time < self.start_time
    }

    /// Whether the segment's interval intersects `[from, to]` (inclusive).
    pub fn overlaps(&self, from: Timestamp, to: Timestamp) -> bool {
        self.start_time <= to && self.end_time >= from
    }

    /// Whether `tid` at group `position` is represented by this segment.
    pub fn represents(&self, position: usize) -> bool {
        !self.gaps.contains(position)
    }

    /// Materializes an owned record (listing/export paths only — the
    /// aggregate scan path never calls this).
    pub fn to_record(&self) -> SegmentRecord {
        SegmentRecord {
            gid: self.gid,
            start_time: self.start_time,
            end_time: self.end_time,
            sampling_interval: self.sampling_interval,
            mid: self.mid,
            params: bytes::Bytes::copy_from_slice(self.params),
            gaps: self.gaps,
        }
    }
}

impl SegmentRecord {
    /// Borrows this owned record as a [`SegmentView`].
    pub fn view(&self) -> SegmentView<'_> {
        SegmentView {
            gid: self.gid,
            start_time: self.start_time,
            end_time: self.end_time,
            sampling_interval: self.sampling_interval,
            mid: self.mid,
            params: &self.params,
            gaps: self.gaps,
        }
    }
}

/// Encodes segments into a v2 block payload (section table + columns +
/// parameter heap). The inverse of [`BlockView::parse`]; segment order is
/// preserved exactly.
pub fn encode_block_v2(segments: &[SegmentRecord]) -> Vec<u8> {
    let n = segments.len();
    let heap_len: usize = segments.iter().map(|s| s.params.len()).sum();
    let off_end_times = V2_SECTIONS_START;
    let off_sis = off_end_times + 8 * n;
    let off_gaps = off_sis + 8 * n;
    let off_gids = off_gaps + 8 * n;
    let off_sizes = off_gids + 4 * n;
    let off_param_offsets = off_sizes + 4 * n;
    let off_mids = off_param_offsets + 4 * (n + 1);
    let off_heap = off_mids + n;
    let total = off_heap + heap_len;

    let mut out = Vec::with_capacity(total);
    for v in [
        BLOCK_LAYOUT_V2,
        n as u32,
        off_end_times as u32,
        off_sis as u32,
        off_gaps as u32,
        off_gids as u32,
        off_sizes as u32,
        off_param_offsets as u32,
        off_mids as u32,
        off_heap as u32,
        total as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.resize(V2_SECTIONS_START, 0); // table padding
    for s in segments {
        out.extend_from_slice(&s.end_time.to_le_bytes());
    }
    for s in segments {
        out.extend_from_slice(&s.sampling_interval.to_le_bytes());
    }
    for s in segments {
        out.extend_from_slice(&s.gaps.0.to_le_bytes());
    }
    for s in segments {
        out.extend_from_slice(&s.gid.to_le_bytes());
    }
    for s in segments {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    }
    let mut param_offset = 0u32;
    for s in segments {
        out.extend_from_slice(&param_offset.to_le_bytes());
        param_offset += s.params.len() as u32;
    }
    out.extend_from_slice(&param_offset.to_le_bytes());
    for s in segments {
        out.push(s.mid);
    }
    for s in segments {
        out.extend_from_slice(&s.params);
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// A validated v2 block: owns the payload buffer and hands out borrowed
/// [`SegmentView`]s. Constructed once per fetch by [`BlockView::parse`];
/// every structural property accessors rely on is checked there, so the
/// accessors themselves are straight-line reads.
#[derive(Debug)]
pub struct BlockView {
    data: Vec<u8>,
    count: usize,
    off_end_times: usize,
    off_sis: usize,
    off_gaps: usize,
    off_gids: usize,
    off_sizes: usize,
    off_param_offsets: usize,
    off_mids: usize,
    off_heap: usize,
}

impl BlockView {
    /// Validates a v2 payload and wraps it. `None` means the buffer is not
    /// a well-formed v2 block for `expected_count` segments — a corrupt or
    /// truncated block the caller must reject (never panic).
    ///
    /// Checks: the version tag; the segment count against the block
    /// header's; every section offset exactly at its canonical, aligned
    /// position (the table is self-describing so future layouts may pad
    /// differently, but *this* version's readers reject anything shifted,
    /// overlapping, or out of bounds); the recorded total length against
    /// the buffer; monotone parameter offsets ending exactly at the heap's
    /// end; and per segment a positive sampling interval, a positive size,
    /// and a non-overflowing start-time derivation.
    pub fn parse(data: Vec<u8>, expected_count: u32) -> Option<BlockView> {
        if data.len() < V2_TABLE_BYTES {
            return None;
        }
        let table = |i: usize| -> usize {
            u32::from_le_bytes(data[4 * i..4 * i + 4].try_into().unwrap()) as usize
        };
        if table(0) != BLOCK_LAYOUT_V2 as usize {
            return None;
        }
        let n = table(1);
        if n != expected_count as usize {
            return None;
        }
        let (off_end_times, off_sis, off_gaps, off_gids) = (table(2), table(3), table(4), table(5));
        let (off_sizes, off_param_offsets, off_mids, off_heap) =
            (table(6), table(7), table(8), table(9));
        let total = table(10);
        // Canonical section positions: in order, contiguous, aligned.
        if off_end_times != V2_SECTIONS_START
            || off_sis != off_end_times.checked_add(8 * n)?
            || off_gaps != off_sis + 8 * n
            || off_gids != off_gaps + 8 * n
            || off_sizes != off_gids + 4 * n
            || off_param_offsets != off_sizes + 4 * n
            || off_mids != off_param_offsets + 4 * (n + 1)
            || off_heap != off_mids + n
            || total != data.len()
            || off_heap > total
        {
            return None;
        }
        let view = BlockView {
            data,
            count: n,
            off_end_times,
            off_sis,
            off_gaps,
            off_gids,
            off_sizes,
            off_param_offsets,
            off_mids,
            off_heap,
        };
        // Parameter offsets: monotone, last one exactly the heap length.
        let heap_len = view.data.len() - view.off_heap;
        let mut prev = 0usize;
        for i in 0..=n {
            let o = view.param_offset(i);
            if o < prev || o > heap_len {
                return None;
            }
            prev = o;
        }
        if prev != heap_len {
            return None;
        }
        // Per-segment columns: the derived start time must be computable.
        for i in 0..n {
            let si = view.i64_at(view.off_sis + 8 * i);
            let size = view.u32_at(view.off_sizes + 4 * i);
            if si < 1 || size < 1 {
                return None;
            }
            let span = i64::from(size - 1).checked_mul(si)?;
            view.i64_at(view.off_end_times + 8 * i).checked_sub(span)?;
        }
        Some(view)
    }

    /// Number of segments in the block.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the block holds no segments (never written, but valid).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th segment, borrowed from the buffer. Panics if `i` is out
    /// of range (callers iterate `0..len()`).
    pub fn segment(&self, i: usize) -> SegmentView<'_> {
        assert!(i < self.count);
        let end_time = self.i64_at(self.off_end_times + 8 * i);
        let sampling_interval = self.i64_at(self.off_sis + 8 * i);
        let size = self.u32_at(self.off_sizes + 4 * i);
        let (lo, hi) = (self.param_offset(i), self.param_offset(i + 1));
        SegmentView {
            gid: self.u32_at(self.off_gids + 4 * i),
            start_time: end_time - i64::from(size - 1) * sampling_interval,
            end_time,
            sampling_interval,
            mid: self.data[self.off_mids + i],
            params: &self.data[self.off_heap + lo..self.off_heap + hi],
            gaps: GapsMask(self.u64_at(self.off_gaps + 8 * i)),
        }
    }

    /// Iterates the block's segments in stored (log) order.
    pub fn segments(&self) -> impl Iterator<Item = SegmentView<'_>> + '_ {
        (0..self.count).map(|i| self.segment(i))
    }

    /// Materializes every segment as an owned record (recovery and listing
    /// paths; the scan path stays on [`BlockView::segment`]).
    pub fn to_records(&self) -> Vec<SegmentRecord> {
        self.segments().map(|s| s.to_record()).collect()
    }

    /// The payload buffer's size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    fn param_offset(&self, i: usize) -> usize {
        self.u32_at(self.off_param_offsets + 4 * i) as usize
    }

    fn u32_at(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.data[at..at + 4].try_into().unwrap())
    }

    fn u64_at(&self, at: usize) -> u64 {
        u64::from_le_bytes(self.data[at..at + 8].try_into().unwrap())
    }

    fn i64_at(&self, at: usize) -> i64 {
        i64::from_le_bytes(self.data[at..at + 8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn seg(i: usize) -> SegmentRecord {
        SegmentRecord {
            gid: (i % 5) as u32 + 1,
            start_time: i as i64 * 1_000,
            end_time: i as i64 * 1_000 + 900,
            sampling_interval: if i.is_multiple_of(2) { 100 } else { 300 },
            mid: (i % 3) as u8,
            params: Bytes::from(vec![i as u8; i % 9]),
            gaps: GapsMask((i % 7) as u64),
        }
    }

    fn segs(n: usize) -> Vec<SegmentRecord> {
        // Only spans representable by `len()` round-trip: end - start must
        // be a multiple of si, which seg() guarantees for si=100/300.
        (0..n)
            .map(|i| {
                let mut s = seg(i);
                s.end_time = s.start_time + s.sampling_interval * (i % 4) as i64;
                s
            })
            .collect()
    }

    #[test]
    fn encode_parse_round_trips_every_field() {
        for n in [0usize, 1, 7, 64] {
            let original = segs(n);
            let payload = encode_block_v2(&original);
            let view = BlockView::parse(payload, n as u32).expect("valid");
            assert_eq!(view.len(), n);
            let back = view.to_records();
            assert_eq!(back, original, "n = {n}");
            for (v, r) in view.segments().zip(&original) {
                assert_eq!(v, r.view());
                assert_eq!(v.len(), r.len());
            }
        }
    }

    #[test]
    fn views_borrow_not_copy() {
        let original = segs(3);
        let payload = encode_block_v2(&original);
        let view = BlockView::parse(payload, 3).unwrap();
        let s = view.segment(2);
        // The params slice points into the view's buffer.
        let buf_range = view.data.as_ptr_range();
        assert!(s.params.is_empty() || buf_range.contains(&s.params.as_ptr()));
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let payload = encode_block_v2(&segs(4));
        assert!(BlockView::parse(payload.clone(), 4).is_some());
        assert!(BlockView::parse(payload.clone(), 3).is_none());
        assert!(BlockView::parse(payload, 5).is_none());
    }

    #[test]
    fn truncated_param_heap_is_rejected() {
        let mut payload = encode_block_v2(&segs(6));
        payload.truncate(payload.len() - 1);
        assert!(BlockView::parse(payload, 6).is_none());
    }

    #[test]
    fn misaligned_or_shifted_section_offsets_are_rejected() {
        let good = encode_block_v2(&segs(6));
        // Shift each recorded section offset by a few deltas; every
        // mutation must be rejected (and must not panic).
        for field in 2..=10 {
            for delta in [1i32, -1, 4, 8, -8, 1 << 20] {
                let mut bad = good.clone();
                let at = 4 * field;
                let v = u32::from_le_bytes(bad[at..at + 4].try_into().unwrap());
                let shifted = (v as i64 + i64::from(delta)) as u32;
                bad[at..at + 4].copy_from_slice(&shifted.to_le_bytes());
                assert!(
                    BlockView::parse(bad, 6).is_none(),
                    "field {field} delta {delta} undetected"
                );
            }
        }
    }

    #[test]
    fn corrupt_columns_are_rejected() {
        let segments = segs(6);
        let good = encode_block_v2(&segments);
        let view = BlockView::parse(good.clone(), 6).unwrap();
        let (off_sis, off_sizes, off_param_offsets) =
            (view.off_sis, view.off_sizes, view.off_param_offsets);
        // Zero sampling interval.
        let mut bad = good.clone();
        bad[off_sis..off_sis + 8].copy_from_slice(&0i64.to_le_bytes());
        assert!(BlockView::parse(bad, 6).is_none());
        // Zero size-in-points.
        let mut bad = good.clone();
        bad[off_sizes..off_sizes + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(BlockView::parse(bad, 6).is_none());
        // Non-monotone parameter offsets.
        let mut bad = good.clone();
        bad[off_param_offsets + 4..off_param_offsets + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(BlockView::parse(bad, 6).is_none());
        // Overflowing start-time derivation.
        let mut bad = good.clone();
        bad[off_sis..off_sis + 8].copy_from_slice(&i64::MAX.to_le_bytes());
        bad[off_sizes..off_sizes + 4].copy_from_slice(&3u32.to_le_bytes());
        assert!(BlockView::parse(bad, 6).is_none());
    }

    #[test]
    fn record_view_round_trip() {
        let r = seg(4);
        assert_eq!(r.view().to_record(), r);
    }
}

//! Segments (Definition 9) in the storage layout of Figure 6.
//!
//! A segment represents a bounded interval of a time series *group* using one
//! model: `S = (ts, te, SI, Gts, M, ε)`. ModelarDB+ stores gaps using the
//! second method of Section 3.2: when a gap starts or ends, the current
//! segment is flushed and the next segment records the *absent* series in a
//! bitmask (`Gaps` in the schema; "the values in Gaps are stored as integers
//! with each bit representing if a gap has occurred for that time series in
//! the group"). Dynamic splitting (Section 4.2) reuses the same mask, which is
//! also why `Gaps` is part of the primary key.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::datapoint::Timestamp;
use crate::meta::Gid;

/// The maximum number of series per group, bounded by the 64-bit gaps mask.
/// The paper's groups are small (correlated sensors on one entity), so this
/// limit is generous; the partitioner enforces it.
pub const MAX_GROUP_SIZE: usize = 64;

/// Bitmask over group member *positions*: bit `i` set means the `i`-th series
/// of the group is **not** represented by this segment (it is in a gap, or
/// the group was dynamically split and the series is handled by a sibling
/// segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct GapsMask(pub u64);

impl GapsMask {
    /// No series missing.
    pub const EMPTY: GapsMask = GapsMask(0);

    /// A mask with the given member positions marked missing.
    pub fn from_positions(positions: &[usize]) -> Self {
        let mut m = 0u64;
        for &p in positions {
            assert!(
                p < MAX_GROUP_SIZE,
                "group position {p} exceeds MAX_GROUP_SIZE"
            );
            m |= 1 << p;
        }
        GapsMask(m)
    }

    /// Marks position `p` missing.
    pub fn set(&mut self, p: usize) {
        assert!(p < MAX_GROUP_SIZE);
        self.0 |= 1 << p;
    }

    /// Is position `p` missing?
    pub fn contains(&self, p: usize) -> bool {
        p < MAX_GROUP_SIZE && self.0 & (1 << p) != 0
    }

    /// True when every series of the group is present.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of missing series.
    pub fn count_missing(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Number of series present out of a group of `group_size`.
    pub fn count_present(&self, group_size: usize) -> usize {
        group_size - (self.0 & mask_lower(group_size)).count_ones() as usize
    }

    /// Iterates over the positions *present* in a group of `group_size`.
    pub fn present_positions(&self, group_size: usize) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..group_size).filter(move |p| bits & (1 << p) == 0)
    }

    /// Iterates over the positions *missing* in a group of `group_size`.
    pub fn missing_positions(&self, group_size: usize) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..group_size).filter(move |p| bits & (1 << p) != 0)
    }

    /// Union of two masks.
    pub fn union(&self, other: GapsMask) -> GapsMask {
        GapsMask(self.0 | other.0)
    }
}

fn mask_lower(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// One row of the Segment table (Figure 6): a dynamically sized sub-sequence
/// of a time series group represented by one model within the error bound.
///
/// `StartTime` is stored on disk as the segment length in data points and
/// recomputed as `StartTime = EndTime − (len − 1) × SI` (Section 3.3); in
/// memory both endpoints are kept because filtering uses them constantly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// The group whose series this segment represents.
    pub gid: Gid,
    /// Timestamp of the first represented data point (inclusive).
    pub start_time: Timestamp,
    /// Timestamp of the last represented data point (inclusive). Segments are
    /// stored *disconnected*: adjacent segments do not share endpoints
    /// (Section 3.2).
    pub end_time: Timestamp,
    /// Sampling interval in milliseconds.
    pub sampling_interval: i64,
    /// Which model type `params` belongs to (index into the model table).
    pub mid: u8,
    /// The model's parameters, opaque to storage (models are black boxes).
    pub params: Bytes,
    /// Group member positions *not* represented by this segment.
    pub gaps: GapsMask,
}

impl SegmentRecord {
    /// The number of timestamps this segment spans per represented series.
    pub fn len(&self) -> usize {
        debug_assert!(self.end_time >= self.start_time);
        ((self.end_time - self.start_time) / self.sampling_interval) as usize + 1
    }

    /// True only for degenerate zero-length segments (never stored).
    pub fn is_empty(&self) -> bool {
        self.end_time < self.start_time
    }

    /// The timestamps the segment covers, in order.
    pub fn timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        let (start, si, n) = (self.start_time, self.sampling_interval, self.len());
        (0..n as i64).map(move |i| start + i * si)
    }

    /// Total data points represented = timestamps × present series.
    pub fn data_points(&self, group_size: usize) -> usize {
        self.len() * self.gaps.count_present(group_size)
    }

    /// The on-disk footprint in bytes under the Cassandra-style layout of
    /// Section 3.3: gid (4) + end time (8) + gaps (8) + size-in-points (4) +
    /// mid (1) + the model parameters. Used for compression-ratio accounting
    /// and model selection.
    pub fn storage_bytes(&self) -> usize {
        4 + 8 + 8 + 4 + 1 + self.params.len()
    }

    /// Whether the segment's interval intersects `[from, to]` (inclusive).
    pub fn overlaps(&self, from: Timestamp, to: Timestamp) -> bool {
        self.start_time <= to && self.end_time >= from
    }

    /// Whether `tid` at group `position` is represented by this segment.
    pub fn represents(&self, position: usize) -> bool {
        !self.gaps.contains(position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(start: Timestamp, end: Timestamp, si: i64, gaps: GapsMask) -> SegmentRecord {
        SegmentRecord {
            gid: 1,
            start_time: start,
            end_time: end,
            sampling_interval: si,
            mid: 0,
            params: Bytes::from_static(&[0, 1, 2, 3]),
            gaps,
        }
    }

    #[test]
    fn len_counts_inclusive_endpoints() {
        // Section 2's example segment: (100, 400, SI=100) covers 4 points.
        let s = segment(100, 400, 100, GapsMask::EMPTY);
        assert_eq!(s.len(), 4);
        assert_eq!(s.timestamps().collect::<Vec<_>>(), vec![100, 200, 300, 400]);
        let single = segment(100, 100, 100, GapsMask::EMPTY);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn gaps_mask_positions() {
        let mut g = GapsMask::EMPTY;
        assert!(g.is_empty());
        g.set(1);
        assert!(g.contains(1));
        assert!(!g.contains(0));
        assert_eq!(g.count_missing(), 1);
        assert_eq!(g.count_present(3), 2);
        assert_eq!(g.present_positions(3).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.missing_positions(3).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn gaps_mask_from_positions_and_union() {
        let a = GapsMask::from_positions(&[0, 2]);
        let b = GapsMask::from_positions(&[1]);
        let u = a.union(b);
        assert_eq!(u.count_missing(), 3);
        assert_eq!(u.count_present(4), 1);
    }

    #[test]
    fn figure5_segment_with_gap_represents_subset() {
        // Figure 5: S2 represents TS1 and TS3 while TS2 (position 1) is in a
        // gap.
        let s = segment(1_000, 2_000, 100, GapsMask::from_positions(&[1]));
        assert!(s.represents(0));
        assert!(!s.represents(1));
        assert!(s.represents(2));
        assert_eq!(s.data_points(3), 11 * 2);
    }

    #[test]
    fn overlap_is_inclusive() {
        let s = segment(100, 400, 100, GapsMask::EMPTY);
        assert!(s.overlaps(400, 500));
        assert!(s.overlaps(0, 100));
        assert!(!s.overlaps(401, 500));
        assert!(!s.overlaps(0, 99));
        assert!(s.overlaps(200, 300));
    }

    #[test]
    fn storage_bytes_counts_header_and_params() {
        let s = segment(100, 400, 100, GapsMask::EMPTY);
        assert_eq!(s.storage_bytes(), 25 + 4);
    }

    #[test]
    fn count_present_ignores_bits_beyond_group() {
        let mut g = GapsMask::EMPTY;
        g.set(63);
        assert_eq!(g.count_present(3), 3);
    }
}

//! Data points and the scalar types they are built from (Definition 1).

use serde::{Deserialize, Serialize};

/// Milliseconds since the Unix epoch, UTC.
///
/// The paper measures timestamps in milliseconds (Section 2) and both
/// evaluation data sets use millisecond resolution, so a 64-bit integer count
/// of milliseconds is used everywhere.
pub type Timestamp = i64;

/// The value of a data point.
///
/// The storage schema of Figure 6 declares `Value float`; like ModelarDB we
/// store 32-bit floats and only widen to `f64` inside aggregate accumulators.
pub type Value = f32;

/// Time series identifier (`Tid` in the schema of Figure 6). Tids start at 1
/// so they can index directly into dense arrays during the hash-join described
/// in Section 6.1.
pub type Tid = u32;

/// A single data point of one time series: the pair `(t_i, v_i)` of
/// Definition 1 tagged with the series it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// The time series this data point was recorded from.
    pub tid: Tid,
    /// When the value was recorded.
    pub timestamp: Timestamp,
    /// The recorded value.
    pub value: Value,
}

impl DataPoint {
    /// Creates a data point.
    pub fn new(tid: Tid, timestamp: Timestamp, value: Value) -> Self {
        Self {
            tid,
            timestamp,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = DataPoint::new(1, 100, 188.5);
        let b = DataPoint {
            tid: 1,
            timestamp: 100,
            value: 188.5,
        };
        assert_eq!(a, b);
    }
}

//! Metadata for time series and time series groups: the Time Series table of
//! the storage schema (Figure 6) and Definition 8.

use serde::{Deserialize, Serialize};

use crate::datapoint::{Tid, Timestamp};
use crate::error::{MdbError, Result};

/// Time series *group* identifier (the `Gid` column of Figure 6).
pub type Gid = u32;

/// One row of the Time Series table (Figure 6): per-series metadata plus the
/// group assignment computed by the partitioner.
///
/// The only required metadata is the sampling interval; `scaling` is the
/// constant applied to each value during ingestion and divided back out
/// during query processing so that correlated series with different value
/// ranges can share one model (Section 3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesMeta {
    /// The series identifier; tids start at 1.
    pub tid: Tid,
    /// Sampling interval in milliseconds (Definition 3).
    pub sampling_interval: i64,
    /// Scaling constant applied at ingestion, divided out at query time.
    pub scaling: f64,
    /// The group this series was partitioned into.
    pub gid: Gid,
}

impl TimeSeriesMeta {
    /// Metadata with the default scaling constant of 1.0 and no group.
    pub fn new(tid: Tid, sampling_interval: i64) -> Self {
        Self {
            tid,
            sampling_interval,
            scaling: 1.0,
            gid: 0,
        }
    }
}

/// A time series group (Definition 8): a set of regular time series, possibly
/// with gaps, sharing one sampling interval and aligned start offsets
/// (`t1i mod SI = t1j mod SI`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupMeta {
    /// The group identifier; gids start at 1.
    pub gid: Gid,
    /// Member series, in the fixed order that positions them in a segment's
    /// gaps bitmask.
    pub tids: Vec<Tid>,
    /// The shared sampling interval in milliseconds.
    pub sampling_interval: i64,
}

impl GroupMeta {
    /// Builds a group, validating Definition 8's requirements against the
    /// member series' metadata.
    pub fn new(gid: Gid, tids: Vec<Tid>, members: &[TimeSeriesMeta]) -> Result<Self> {
        if tids.is_empty() {
            return Err(MdbError::Config(format!("group {gid} has no members")));
        }
        let mut si = None;
        for tid in &tids {
            let meta = members
                .iter()
                .find(|m| m.tid == *tid)
                .ok_or_else(|| MdbError::NotFound(format!("time series {tid}")))?;
            match si {
                None => si = Some(meta.sampling_interval),
                Some(s) if s != meta.sampling_interval => {
                    return Err(MdbError::Config(format!(
                        "group {gid} mixes sampling intervals {s} and {}",
                        meta.sampling_interval
                    )));
                }
                _ => {}
            }
        }
        Ok(Self {
            gid,
            tids,
            sampling_interval: si.unwrap(),
        })
    }

    /// The position of `tid` inside this group (its bit in the gaps mask).
    pub fn position(&self, tid: Tid) -> Option<usize> {
        self.tids.iter().position(|t| *t == tid)
    }

    /// Number of member series.
    pub fn size(&self) -> usize {
        self.tids.len()
    }

    /// Checks that `timestamp` is aligned to the group's tick grid anchored
    /// at `anchor` (the first timestamp the group ever ingested).
    pub fn aligned(&self, anchor: Timestamp, timestamp: Timestamp) -> bool {
        (timestamp - anchor) % self.sampling_interval == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metas() -> Vec<TimeSeriesMeta> {
        vec![
            TimeSeriesMeta::new(1, 100),
            TimeSeriesMeta::new(2, 100),
            TimeSeriesMeta::new(3, 60_000),
        ]
    }

    #[test]
    fn group_requires_matching_sampling_intervals() {
        let ms = metas();
        assert!(GroupMeta::new(1, vec![1, 2], &ms).is_ok());
        // Definition 8: the irregular/mismatched series cannot join the group.
        let err = GroupMeta::new(2, vec![1, 3], &ms);
        assert!(err.is_err());
    }

    #[test]
    fn group_rejects_unknown_and_empty_members() {
        let ms = metas();
        assert!(GroupMeta::new(1, vec![9], &ms).is_err());
        assert!(GroupMeta::new(1, vec![], &ms).is_err());
    }

    #[test]
    fn position_is_the_gap_bit_index() {
        let ms = metas();
        let g = GroupMeta::new(1, vec![2, 1], &ms).unwrap();
        assert_eq!(g.position(2), Some(0));
        assert_eq!(g.position(1), Some(1));
        assert_eq!(g.position(3), None);
        assert_eq!(g.size(), 2);
    }

    #[test]
    fn alignment_is_modulo_sampling_interval() {
        let ms = metas();
        let g = GroupMeta::new(1, vec![1, 2], &ms).unwrap();
        assert!(g.aligned(100, 500));
        assert!(!g.aligned(100, 550));
        assert!(g.aligned(100, 100));
    }
}

//! Closed value intervals, the bound type behind zone-map pruning.
//!
//! A [`ValueInterval`] describes the range a set of stored values is known to
//! lie in (per segment run in the zone map) or the range a query predicate
//! accepts (after rewriting `Value` comparisons). Pruning is sound because
//! intervals only ever *over*-approximate: a segment run whose interval does
//! not intersect the predicate interval cannot contain a matching value, so
//! it can be skipped before any model is decoded.

use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]` over (f64-widened) values.
///
/// `lo > hi` encodes the empty interval; [`ValueInterval::ALL`] is the full
/// line. Operations treat `NaN` endpoints as "unknown" by widening to
/// [`ValueInterval::ALL`], so zone statistics fail open, never closed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueInterval {
    /// Inclusive lower endpoint.
    pub lo: f64,
    /// Inclusive upper endpoint.
    pub hi: f64,
}

impl ValueInterval {
    /// The full line: matches every value.
    pub const ALL: ValueInterval = ValueInterval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The empty interval: matches nothing.
    pub const EMPTY: ValueInterval = ValueInterval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The interval `[lo, hi]`; NaN endpoints widen to [`ValueInterval::ALL`].
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() {
            return Self::ALL;
        }
        Self { lo, hi }
    }

    /// The degenerate interval containing exactly `v`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// True when no value is contained.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the two intervals share at least one value.
    pub fn intersects(&self, other: &ValueInterval) -> bool {
        // Empties first: `[∞, −∞]` against `[−∞, ∞]` would otherwise compare
        // true through the infinite endpoints.
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// Whether every value of `other` lies in `self`.
    pub fn covers(&self, other: &ValueInterval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// The smallest interval containing both (zone statistics widen on every
    /// insert).
    pub fn union(&self, other: &ValueInterval) -> ValueInterval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        ValueInterval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The intersection of both intervals (predicate conjunction).
    pub fn intersection(&self, other: &ValueInterval) -> ValueInterval {
        ValueInterval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// The image of the interval under multiplication by `factor` — how a
    /// *raw*-value predicate maps into the *stored* (scaled) domain of a
    /// series with scaling constant `factor`. Negative factors flip the
    /// endpoints.
    pub fn scaled(&self, factor: f64) -> ValueInterval {
        if self.is_empty() {
            return Self::EMPTY;
        }
        let a = self.lo * factor;
        let b = self.hi * factor;
        // 0 × ±∞ is NaN; an unbounded endpoint scaled by zero is just zero.
        let a = if a.is_nan() { 0.0 } else { a };
        let b = if b.is_nan() { 0.0 } else { b };
        ValueInterval::new(a.min(b), a.max(b))
    }

    /// The interval with each finite endpoint stepped two ulps outward.
    ///
    /// Callers that derive an interval through rounded arithmetic (e.g. the
    /// scaled push-down multiplies by a scaling constant while the exact
    /// per-point filter divides by it) widen it before using it to *prune*,
    /// so a half-ulp disagreement between the two roundings can never
    /// exclude a value the exact comparison would accept.
    pub fn widened(&self) -> ValueInterval {
        if self.is_empty() {
            return *self;
        }
        ValueInterval {
            lo: self.lo.next_down().next_down(),
            hi: self.hi.next_up().next_up(),
        }
    }
}

impl Default for ValueInterval {
    fn default() -> Self {
        Self::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_intersects_are_inclusive() {
        let i = ValueInterval::new(1.0, 5.0);
        assert!(i.contains(1.0));
        assert!(i.contains(5.0));
        assert!(!i.contains(5.1));
        assert!(i.intersects(&ValueInterval::new(5.0, 9.0)));
        assert!(i.intersects(&ValueInterval::new(-3.0, 1.0)));
        assert!(!i.intersects(&ValueInterval::new(5.2, 9.0)));
    }

    #[test]
    fn empty_interval_matches_nothing() {
        assert!(ValueInterval::EMPTY.is_empty());
        assert!(!ValueInterval::EMPTY.contains(0.0));
        assert!(!ValueInterval::EMPTY.intersects(&ValueInterval::ALL));
        assert!(ValueInterval::ALL.covers(&ValueInterval::EMPTY));
    }

    #[test]
    fn union_and_intersection() {
        let a = ValueInterval::new(0.0, 2.0);
        let b = ValueInterval::new(1.0, 5.0);
        assert_eq!(a.union(&b), ValueInterval::new(0.0, 5.0));
        assert_eq!(a.intersection(&b), ValueInterval::new(1.0, 2.0));
        assert!(a.intersection(&ValueInterval::new(3.0, 4.0)).is_empty());
        assert_eq!(ValueInterval::EMPTY.union(&a), a);
        assert_eq!(a.union(&ValueInterval::EMPTY), a);
    }

    #[test]
    fn covers_is_containment() {
        let outer = ValueInterval::new(0.0, 10.0);
        assert!(outer.covers(&ValueInterval::new(2.0, 8.0)));
        assert!(outer.covers(&outer));
        assert!(!outer.covers(&ValueInterval::new(2.0, 11.0)));
    }

    #[test]
    fn scaling_flips_under_negative_factors() {
        let i = ValueInterval::new(1.0, 3.0);
        assert_eq!(i.scaled(2.0), ValueInterval::new(2.0, 6.0));
        assert_eq!(i.scaled(-1.0), ValueInterval::new(-3.0, -1.0));
        // Unbounded endpoints survive scaling, including by zero.
        let half = ValueInterval::new(5.0, f64::INFINITY);
        assert_eq!(
            half.scaled(-2.0),
            ValueInterval::new(f64::NEG_INFINITY, -10.0)
        );
        assert_eq!(half.scaled(0.0), ValueInterval::new(0.0, 0.0));
    }

    #[test]
    fn widened_steps_finite_endpoints_outward() {
        let i = ValueInterval::new(1.0, 2.0);
        let w = i.widened();
        assert!(w.lo < 1.0 && w.hi > 2.0);
        assert!(w.covers(&i));
        // Infinite endpoints and the empty interval are unchanged.
        assert_eq!(ValueInterval::ALL.widened(), ValueInterval::ALL);
        assert!(ValueInterval::EMPTY.widened().is_empty());
    }

    #[test]
    fn nan_endpoints_fail_open() {
        assert_eq!(ValueInterval::new(f64::NAN, 1.0), ValueInterval::ALL);
        assert_eq!(ValueInterval::new(1.0, f64::NAN), ValueInterval::ALL);
    }
}

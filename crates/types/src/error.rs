//! The shared error type for the workspace.

use std::fmt;

/// Convenience alias used across all `mdb-*` crates.
pub type Result<T> = std::result::Result<T, MdbError>;

/// Errors surfaced by the ModelarDB+ reproduction.
///
/// The variants are deliberately coarse: callers almost always either log the
/// error or convert it to a process exit, so a description plus enough context
/// to locate the failure is what matters.
#[derive(Debug)]
pub enum MdbError {
    /// Invalid user configuration (correlation clauses, error bounds, …).
    Config(String),
    /// A time series violated an ingestion invariant (unaligned timestamp,
    /// non-monotonic time, mismatched sampling interval, …).
    Ingestion(String),
    /// An ingestion error a cluster worker deferred from an *earlier*
    /// batch, reported on a later call. The operation that returned this
    /// error succeeded — in particular, a batch handed to
    /// `Cluster::ingest_batch` was accepted and will be ingested, so
    /// retrying it would ingest it twice.
    DeferredIngestion(String),
    /// Corrupt or truncated on-disk data.
    Corrupt(String),
    /// A query referenced unknown tids, members, columns, or used unsupported
    /// syntax.
    Query(String),
    /// Attempt to look up metadata that does not exist.
    NotFound(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for MdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdbError::Config(m) => write!(f, "configuration error: {m}"),
            MdbError::Ingestion(m) => write!(f, "ingestion error: {m}"),
            MdbError::DeferredIngestion(m) => {
                write!(
                    f,
                    "deferred ingestion error (current operation succeeded): {m}"
                )
            }
            MdbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            MdbError::Query(m) => write!(f, "query error: {m}"),
            MdbError::NotFound(m) => write!(f, "not found: {m}"),
            MdbError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MdbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MdbError {
    fn from(e: std::io::Error) -> Self {
        MdbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = MdbError::Config("bad clause".into());
        assert_eq!(e.to_string(), "configuration error: bad clause");
        let e = MdbError::Query("no such tid 7".into());
        assert!(e.to_string().contains("no such tid 7"));
    }

    #[test]
    fn io_error_round_trips_through_from() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: MdbError = io.into();
        assert!(matches!(e, MdbError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Block metadata: the statistics the out-of-core segment store keeps per
//! on-disk block so a scan can decide whether a block can possibly match a
//! predicate *before* the block is fetched from disk and decoded.
//!
//! This is the block-granular analogue of the zone-map run statistics
//! (Section 3.3's block statistics push-down): every statistic is an
//! over-approximation — unions only ever widen — so a skipped block provably
//! contains no matching segment, while a fetched block may still contain
//! non-matching segments that the per-segment predicate filters out.

use std::sync::Arc;

use crate::datapoint::Timestamp;
use crate::interval::ValueInterval;
use crate::meta::Gid;

/// Per-group mergeable sketches over one block's segments, sorted by group
/// id. The per-group granularity is what lets the cluster's primary-gid
/// scoping pick exactly the non-replicated contributions out of a replica's
/// blocks; merging the selected entries across blocks (in any order — see
/// [`mdb_sketch`]) answers sketch queries without fetching a single body.
pub type BlockSketches = Vec<(Gid, mdb_sketch::BlockSketch)>;

/// On-disk encoding of one block's payload. The log is heterogeneous: a
/// store reopened over v1 blocks keeps them as-is and appends new blocks in
/// the configured write format, dispatching per block on the header magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockFormat {
    /// Row-major varint segments, decoded into owned records on fetch.
    V1,
    /// Self-describing columnar layout ([`crate::view::BlockView`]),
    /// validated once per fetch and scanned through borrowed views.
    #[default]
    V2,
}

/// Per-block statistics over the segments stored in one log block.
///
/// `offset` and `stored_bytes` locate the block inside the append-only log;
/// the remaining fields summarize its payload. The summary is exactly what
/// the persistent sidecar index (`segments.idx`) serializes, so a store can
/// open without scanning or decoding the log itself.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Byte offset of the block header in the log file.
    pub offset: u64,
    /// Total bytes the block occupies on disk (header + payload);
    /// `offset + stored_bytes` is the next block's offset.
    pub stored_bytes: u64,
    /// Payload length in bytes (excluding the header).
    pub payload_len: u32,
    /// How the payload is encoded (dictates the fetch-time decode path).
    pub format: BlockFormat,
    /// FNV-1a checksum of the payload, verified on every fetch.
    pub checksum: u32,
    /// Number of segment records in the payload.
    pub count: u32,
    /// Logical size of the payload's segments in bytes (the sum of their
    /// `SegmentRecord::storage_bytes`), so reopening from the sidecar can
    /// restore byte accounting without decoding the log.
    pub logical_bytes: u64,
    /// Smallest group id among the block's segments.
    pub min_gid: Gid,
    /// Largest group id among the block's segments.
    pub max_gid: Gid,
    /// Smallest start time among the block's segments.
    pub min_start: Timestamp,
    /// Smallest end time among the block's segments.
    pub min_end: Timestamp,
    /// Largest end time among the block's segments.
    pub max_end: Timestamp,
    /// Union of the segments' stored-value ranges, or `None` when at least
    /// one segment's range is unknown (value pruning then cannot skip the
    /// block, which is sound: statistics fail open).
    pub values: Option<ValueInterval>,
    /// Per-group mergeable sketches over the block's reconstructed values,
    /// or `None` when the store has no sketch feed (or a segment could not
    /// be decoded — sketches, like every block statistic, fail open).
    /// Shared behind an `Arc` because block summaries are cloned freely
    /// (sidecar writes, recovery) while sketches are the one non-trivial
    /// field.
    pub sketches: Option<Arc<BlockSketches>>,
}

impl BlockMeta {
    /// True when no segment of the block can end at or after `from` —
    /// i.e. the block cannot overlap a `[from, ..]` time restriction.
    pub fn ends_before(&self, from: Timestamp) -> bool {
        self.max_end < from
    }

    /// True when no segment of the block can start at or before `to`.
    pub fn starts_after(&self, to: Timestamp) -> bool {
        self.min_start > to
    }

    /// True when the block's gid range `[min_gid, max_gid]` contains none of
    /// `gids` (which must be sorted ascending).
    pub fn excludes_gids(&self, sorted_gids: &[Gid]) -> bool {
        let i = sorted_gids.partition_point(|g| *g < self.min_gid);
        sorted_gids.get(i).is_none_or(|g| *g > self.max_gid)
    }

    /// True when the block's value statistic *proves* no stored value
    /// intersects `wanted`; an unknown statistic never excludes.
    pub fn excludes_values(&self, wanted: &ValueInterval) -> bool {
        match &self.values {
            Some(range) => !range.intersects(wanted),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BlockMeta {
        BlockMeta {
            offset: 0,
            stored_bytes: 100,
            payload_len: 56,
            format: BlockFormat::V2,
            checksum: 0,
            count: 3,
            logical_bytes: 75,
            min_gid: 4,
            max_gid: 7,
            min_start: 1_000,
            min_end: 1_900,
            max_end: 5_900,
            values: Some(ValueInterval::new(-2.0, 9.0)),
            sketches: None,
        }
    }

    #[test]
    fn time_exclusion_uses_the_outer_envelope() {
        let m = meta();
        assert!(m.ends_before(6_000));
        assert!(!m.ends_before(5_900));
        assert!(m.starts_after(999));
        assert!(!m.starts_after(1_000));
    }

    #[test]
    fn gid_exclusion_over_sorted_lists() {
        let m = meta();
        assert!(m.excludes_gids(&[1, 2, 3]));
        assert!(m.excludes_gids(&[8, 9]));
        assert!(m.excludes_gids(&[3, 8]));
        assert!(!m.excludes_gids(&[3, 5, 8]));
        assert!(!m.excludes_gids(&[4]));
        assert!(!m.excludes_gids(&[7]));
        assert!(m.excludes_gids(&[]));
    }

    #[test]
    fn value_exclusion_fails_open_when_unknown() {
        let mut m = meta();
        assert!(m.excludes_values(&ValueInterval::new(10.0, 20.0)));
        assert!(!m.excludes_values(&ValueInterval::new(9.0, 20.0)));
        m.values = None;
        assert!(!m.excludes_values(&ValueInterval::new(10.0, 20.0)));
    }
}

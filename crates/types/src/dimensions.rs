//! User-defined dimensions (Definition 7).
//!
//! A dimension `D = (member, level, parent)` organizes descriptions of time
//! series in a hierarchy with the special member ⊤ at level 0 and the most
//! detailed members at level `n` (one per time series). For wind turbines the
//! paper's example is the Location dimension `Turbine → Park → Region →
//! Country → ⊤` where `level(Turbine member) = 4` and `level(⊤) = 0`
//! (Figure 7).
//!
//! Members are interned into a pool of [`MemberId`]s so that comparing
//! members, computing lowest common ancestors (LCA), and hash-joining
//! dimension columns onto segments (Section 6.1) are integer operations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::datapoint::Tid;
use crate::error::{MdbError, Result};

/// The level of ⊤, the top of every hierarchy.
pub const LEVEL_TOP: usize = 0;

/// Interned identifier for a dimension member. `MemberId(0)` is reserved
/// for ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemberId(pub u32);

/// ⊤ — the shared top element of every dimension hierarchy.
pub const MEMBER_TOP: MemberId = MemberId(0);

/// The static shape of one dimension: its name and its level names ordered
/// from level 1 (most general, directly below ⊤) to level `n` (most
/// detailed; the level of `member(TS)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimensionSchema {
    name: String,
    /// `levels[0]` is level 1, `levels[n-1]` is level `n`.
    levels: Vec<String>,
}

impl DimensionSchema {
    /// A dimension whose levels are listed from the most general to the most
    /// detailed, e.g. `["Country", "Region", "Park", "Turbine"]`.
    pub fn new(name: impl Into<String>, levels_general_to_detailed: Vec<String>) -> Result<Self> {
        let levels = levels_general_to_detailed;
        if levels.is_empty() {
            return Err(MdbError::Config(
                "a dimension needs at least one level".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            levels,
        })
    }

    /// Convenience constructor matching how the paper writes hierarchies:
    /// from the entity up towards ⊤ (`Turbine → Park → Region → Country`).
    pub fn from_leaf_up(
        name: impl Into<String>,
        levels_detailed_to_general: Vec<String>,
    ) -> Result<Self> {
        let mut levels = levels_detailed_to_general;
        levels.reverse();
        Self::new(name, levels)
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of levels below ⊤ (the `n` of Definition 7; also the
    /// hierarchy height used by Algorithm 2).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The name of `level` (1-based; level 0 is ⊤ and has no name).
    pub fn level_name(&self, level: usize) -> Option<&str> {
        if level == LEVEL_TOP {
            None
        } else {
            self.levels.get(level - 1).map(String::as_str)
        }
    }

    /// The 1-based level with the given name, if any.
    pub fn level_of(&self, level_name: &str) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.eq_ignore_ascii_case(level_name))
            .map(|i| i + 1)
    }
}

/// The dimensions of a data set plus the member paths of every time series.
///
/// This also serves as the in-memory *metadata cache* of Figure 4: the
/// denormalized dimension columns of the Time Series table (Figure 6) are
/// resolved from here with array lookups during query processing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dimensions {
    schemas: Vec<DimensionSchema>,
    /// Interned member strings; index = MemberId.0. `pool[0]` is ⊤.
    pool: Vec<String>,
    #[serde(skip)]
    interned: HashMap<String, MemberId>,
    /// `paths[&tid][dim][level-1]` is the member of `tid` at `level` of
    /// dimension `dim`.
    paths: HashMap<Tid, Vec<Vec<MemberId>>>,
    /// Inverted index `(dim, level, member) → tids`, used to rewrite WHERE
    /// clauses on dimension members into Gid predicates (Section 6.2).
    #[serde(skip)]
    by_member: HashMap<(usize, usize, MemberId), Vec<Tid>>,
}

impl Dimensions {
    /// An empty set of dimensions.
    pub fn new() -> Self {
        let mut d = Self::default();
        d.pool.push("⊤".to_string());
        d.interned.insert("⊤".to_string(), MEMBER_TOP);
        d
    }

    /// Registers a dimension. Level names must be unique across all
    /// dimensions so they can be used as unqualified column names in SQL.
    pub fn add_dimension(&mut self, schema: DimensionSchema) -> Result<usize> {
        for existing in &self.schemas {
            if existing.name.eq_ignore_ascii_case(&schema.name) {
                return Err(MdbError::Config(format!(
                    "duplicate dimension {}",
                    schema.name
                )));
            }
            for level in &schema.levels {
                if existing
                    .levels
                    .iter()
                    .any(|l| l.eq_ignore_ascii_case(level))
                {
                    return Err(MdbError::Config(format!(
                        "level name {level} appears in both {} and {}",
                        existing.name, schema.name
                    )));
                }
            }
        }
        self.schemas.push(schema);
        Ok(self.schemas.len() - 1)
    }

    /// All registered dimension schemas, indexed by dimension id.
    pub fn schemas(&self) -> &[DimensionSchema] {
        &self.schemas
    }

    /// The number of dimensions (the `|Dimensions|` of Algorithm 2).
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when no dimensions are registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// The id of the dimension called `name`.
    pub fn dimension_id(&self, name: &str) -> Option<usize> {
        self.schemas
            .iter()
            .position(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Resolves an unqualified level name (`Park`, `Category`, …) to the
    /// `(dimension, level)` pair it belongs to.
    pub fn resolve_level(&self, level_name: &str) -> Option<(usize, usize)> {
        self.schemas
            .iter()
            .enumerate()
            .find_map(|(d, s)| s.level_of(level_name).map(|l| (d, l)))
    }

    /// Interns a member string, returning its id.
    pub fn intern(&mut self, member: &str) -> MemberId {
        if let Some(&id) = self.interned.get(member) {
            return id;
        }
        let id = MemberId(self.pool.len() as u32);
        self.pool.push(member.to_string());
        self.interned.insert(member.to_string(), id);
        id
    }

    /// The id of an already-interned member string, if any.
    pub fn member_id(&self, member: &str) -> Option<MemberId> {
        self.interned.get(member).copied()
    }

    /// The string for a member id.
    pub fn member_name(&self, id: MemberId) -> &str {
        &self.pool[id.0 as usize]
    }

    /// Records the member path of `tid` in dimension `dim`, given from the
    /// most general level down to the leaf (e.g. `["Denmark", "Nordjylland",
    /// "Aalborg", "9634"]` for the Location dimension of Figure 7).
    pub fn set_members(
        &mut self,
        tid: Tid,
        dim: usize,
        path_general_to_detailed: &[&str],
    ) -> Result<()> {
        let schema = self
            .schemas
            .get(dim)
            .ok_or_else(|| MdbError::NotFound(format!("dimension {dim}")))?;
        if path_general_to_detailed.len() != schema.height() {
            return Err(MdbError::Config(format!(
                "dimension {} has {} levels but the path for tid {tid} has {}",
                schema.name,
                schema.height(),
                path_general_to_detailed.len()
            )));
        }
        let n_dims = self.schemas.len();
        let ids: Vec<MemberId> = path_general_to_detailed
            .iter()
            .map(|m| self.intern(m))
            .collect();
        let entry = self
            .paths
            .entry(tid)
            .or_insert_with(|| vec![Vec::new(); n_dims]);
        if entry.len() < n_dims {
            entry.resize(n_dims, Vec::new());
        }
        entry[dim] = ids.clone();
        for (i, id) in ids.into_iter().enumerate() {
            let tids = self.by_member.entry((dim, i + 1, id)).or_default();
            if !tids.contains(&tid) {
                tids.push(tid);
            }
        }
        Ok(())
    }

    /// The member of `tid` at `level` of dimension `dim`. Level 0 is ⊤ for
    /// every series.
    pub fn member(&self, tid: Tid, dim: usize, level: usize) -> Option<MemberId> {
        if level == LEVEL_TOP {
            return Some(MEMBER_TOP);
        }
        self.paths.get(&tid)?.get(dim)?.get(level - 1).copied()
    }

    /// The full member path of `tid` in `dim`, general → detailed.
    pub fn path(&self, tid: Tid, dim: usize) -> Option<&[MemberId]> {
        self.paths
            .get(&tid)
            .and_then(|p| p.get(dim))
            .map(Vec::as_slice)
    }

    /// The tids whose member at `(dim, level)` is `member` — the inverted
    /// index used by query rewriting.
    pub fn tids_with_member(&self, dim: usize, level: usize, member: MemberId) -> &[Tid] {
        self.by_member
            .get(&(dim, level, member))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The Lowest Common Ancestor *level* of two sets of time series in
    /// `dim` (Section 4.1): the deepest level at which **all** series of both
    /// sets share the same member, walking down from ⊤. Level 0 means they
    /// only share ⊤.
    pub fn lca_level(&self, a: &[Tid], b: &[Tid], dim: usize) -> usize {
        let height = match self.schemas.get(dim) {
            Some(s) => s.height(),
            None => return LEVEL_TOP,
        };
        let mut tids = a.iter().chain(b.iter());
        let first = match tids.next() {
            Some(t) => *t,
            None => return LEVEL_TOP,
        };
        let mut lca = height;
        let first_path = match self.path(first, dim) {
            Some(p) => p,
            None => return LEVEL_TOP,
        };
        for &tid in tids {
            let path = match self.path(tid, dim) {
                Some(p) => p,
                None => return LEVEL_TOP,
            };
            let mut common = 0;
            for level in 0..lca {
                if path.get(level) == first_path.get(level) && path.get(level).is_some() {
                    common = level + 1;
                } else {
                    break;
                }
            }
            lca = lca.min(common);
            if lca == 0 {
                return LEVEL_TOP;
            }
        }
        lca
    }

    /// Rebuilds the transient indexes (interning table, inverted member
    /// index) after deserialization.
    pub fn rebuild_indexes(&mut self) {
        self.interned = self
            .pool
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), MemberId(i as u32)))
            .collect();
        self.by_member.clear();
        let paths: Vec<(Tid, Vec<Vec<MemberId>>)> =
            self.paths.iter().map(|(t, p)| (*t, p.clone())).collect();
        for (tid, dims) in paths {
            for (dim, path) in dims.iter().enumerate() {
                for (i, id) in path.iter().enumerate() {
                    let tids = self.by_member.entry((dim, i + 1, *id)).or_default();
                    if !tids.contains(&tid) {
                        tids.push(tid);
                    }
                }
            }
        }
    }

    /// All tids that have dimension metadata.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.paths.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Location dimension of Figure 7 with three turbines.
    fn figure7() -> Dimensions {
        let mut dims = Dimensions::new();
        let loc = dims
            .add_dimension(
                DimensionSchema::from_leaf_up(
                    "Location",
                    vec![
                        "Turbine".into(),
                        "Park".into(),
                        "Region".into(),
                        "Country".into(),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        dims.set_members(1, loc, &["Denmark", "Nordjylland", "Farsø", "9572"])
            .unwrap();
        dims.set_members(2, loc, &["Denmark", "Nordjylland", "Aalborg", "9632"])
            .unwrap();
        dims.set_members(3, loc, &["Denmark", "Nordjylland", "Aalborg", "9634"])
            .unwrap();
        dims
    }

    #[test]
    fn from_leaf_up_reverses_levels() {
        let s = DimensionSchema::from_leaf_up(
            "Location",
            vec![
                "Turbine".into(),
                "Park".into(),
                "Region".into(),
                "Country".into(),
            ],
        )
        .unwrap();
        assert_eq!(s.level_name(1), Some("Country"));
        assert_eq!(s.level_name(4), Some("Turbine"));
        assert_eq!(s.level_name(0), None);
        assert_eq!(s.height(), 4);
        assert_eq!(s.level_of("park"), Some(3));
    }

    #[test]
    fn member_lookup_and_top() {
        let dims = figure7();
        assert_eq!(dims.member(2, 0, LEVEL_TOP), Some(MEMBER_TOP));
        let park = dims.member(2, 0, 3).unwrap();
        assert_eq!(dims.member_name(park), "Aalborg");
        let turbine = dims.member(2, 0, 4).unwrap();
        assert_eq!(dims.member_name(turbine), "9632");
    }

    #[test]
    fn figure7_lca_of_tid2_and_tid3_is_park_level() {
        // The paper: "the LCA for Tid = 2 and Tid = 3 is the member Park",
        // i.e. level 3 of 4.
        let dims = figure7();
        assert_eq!(dims.lca_level(&[2], &[3], 0), 3);
        // Tid 1 is in a different park, so its LCA with the others is Region.
        assert_eq!(dims.lca_level(&[1], &[3], 0), 2);
        assert_eq!(dims.lca_level(&[1], &[2, 3], 0), 2);
        // A group compared with itself matches fully.
        assert_eq!(dims.lca_level(&[2], &[2], 0), 4);
    }

    #[test]
    fn lca_handles_missing_metadata() {
        let dims = figure7();
        assert_eq!(dims.lca_level(&[2], &[99], 0), LEVEL_TOP);
        assert_eq!(dims.lca_level(&[], &[], 0), LEVEL_TOP);
    }

    #[test]
    fn inverted_index_finds_tids_by_member() {
        let dims = figure7();
        let aalborg = dims.member_id("Aalborg").unwrap();
        let mut tids = dims.tids_with_member(0, 3, aalborg).to_vec();
        tids.sort();
        assert_eq!(tids, vec![2, 3]);
        let denmark = dims.member_id("Denmark").unwrap();
        assert_eq!(dims.tids_with_member(0, 1, denmark).len(), 3);
        // Wrong level finds nothing.
        assert!(dims.tids_with_member(0, 2, aalborg).is_empty());
    }

    #[test]
    fn duplicate_level_names_rejected() {
        let mut dims = figure7();
        let err = dims.add_dimension(
            DimensionSchema::new("Measure", vec!["Category".into(), "Park".into()]).unwrap(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn resolve_level_searches_all_dimensions() {
        let mut dims = figure7();
        dims.add_dimension(
            DimensionSchema::new("Measure", vec!["Category".into(), "Concrete".into()]).unwrap(),
        )
        .unwrap();
        assert_eq!(dims.resolve_level("Park"), Some((0, 3)));
        assert_eq!(dims.resolve_level("Concrete"), Some((1, 2)));
        assert_eq!(dims.resolve_level("Nope"), None);
    }

    #[test]
    fn wrong_path_length_rejected() {
        let mut dims = figure7();
        assert!(dims.set_members(9, 0, &["Denmark", "Nordjylland"]).is_err());
    }

    #[test]
    fn rebuild_indexes_restores_lookup() {
        let mut dims = figure7();
        dims.rebuild_indexes();
        let aalborg = dims.member_id("Aalborg").unwrap();
        assert_eq!(dims.tids_with_member(0, 3, aalborg).len(), 2);
        assert_eq!(dims.lca_level(&[2], &[3], 0), 3);
    }
}

//! User-defined error bounds (the `ε` of Definition 9).
//!
//! The evaluation of the paper uses *relative* bounds expressed in percent
//! (0 %, 1 %, 5 %, 10 %, Table 1), with 0 % meaning lossless. An absolute
//! bound (uniform error norm, L∞) is also provided because the model
//! definitions in Section 2 are stated in terms of it.

use serde::{Deserialize, Serialize};

use crate::datapoint::Value;

/// An error bound a model-based approximation must not exceed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ErrorBound {
    /// No error is allowed; every reconstructed value must compare equal to
    /// the ingested value (lossless models such as Gorilla always satisfy
    /// this; lossy models may only represent runs of identical values).
    #[default]
    Lossless,
    /// `|approximation − value| ≤ bound` for every represented value.
    Absolute(f64),
    /// `|approximation − value| ≤ percent/100 × |value|` for every represented
    /// value. A value of exactly `0.0` behaves like [`ErrorBound::Lossless`].
    Relative(f64),
}

impl ErrorBound {
    /// A relative bound of `percent`; `0.0` collapses to lossless, matching
    /// the paper's convention that a 0 % bound means exact reconstruction.
    pub fn relative(percent: f64) -> Self {
        assert!(
            percent >= 0.0 && percent.is_finite(),
            "bound must be a finite non-negative percentage"
        );
        if percent == 0.0 {
            ErrorBound::Lossless
        } else {
            ErrorBound::Relative(percent)
        }
    }

    /// An absolute bound of `epsilon`; `0.0` collapses to lossless.
    pub fn absolute(epsilon: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "bound must be finite and non-negative"
        );
        if epsilon == 0.0 {
            ErrorBound::Lossless
        } else {
            ErrorBound::Absolute(epsilon)
        }
    }

    /// Is this bound lossless (no deviation allowed)?
    pub fn is_lossless(&self) -> bool {
        matches!(self, ErrorBound::Lossless)
    }

    /// Whether `approximation` may stand in for `value` under this bound.
    ///
    /// Non-finite values are only ever within bound of themselves, which makes
    /// lossy models reject NaN/±∞ and forces those onto the lossless path.
    pub fn within(&self, approximation: Value, value: Value) -> bool {
        if !approximation.is_finite() || !value.is_finite() {
            return approximation == value || (approximation.is_nan() && value.is_nan());
        }
        match self {
            ErrorBound::Lossless => approximation == value,
            ErrorBound::Absolute(eps) => {
                (f64::from(approximation) - f64::from(value)).abs() <= *eps
            }
            ErrorBound::Relative(pct) => {
                let (a, v) = (f64::from(approximation), f64::from(value));
                if a == v {
                    return true;
                }
                (a - v).abs() <= pct / 100.0 * v.abs()
            }
        }
    }

    /// The half-width of the interval of acceptable approximations around
    /// `value`: a model may emit any value in `[value − ε, value + ε]`.
    pub fn epsilon_for(&self, value: Value) -> f64 {
        match self {
            ErrorBound::Lossless => 0.0,
            ErrorBound::Absolute(eps) => *eps,
            ErrorBound::Relative(pct) => pct / 100.0 * f64::from(value).abs(),
        }
    }

    /// The interval `[low, high]` of approximations acceptable for `value`.
    /// Non-finite values produce an empty-interval signal `(NaN, NaN)` so that
    /// callers intersecting intervals fail closed.
    pub fn interval_for(&self, value: Value) -> (f64, f64) {
        if !value.is_finite() {
            return (f64::NAN, f64::NAN);
        }
        let v = f64::from(value);
        let eps = self.epsilon_for(value);
        (v - eps, v + eps)
    }

    /// Twice the allowed error, used by the split/join heuristics of
    /// Section 4.2: two data points can only be approximated together if they
    /// are within the *double* error bound of each other (Algorithm 3).
    pub fn within_double(&self, a: Value, b: Value) -> bool {
        if !a.is_finite() || !b.is_finite() {
            return a == b || (a.is_nan() && b.is_nan());
        }
        match self {
            ErrorBound::Lossless => a == b,
            ErrorBound::Absolute(eps) => (f64::from(a) - f64::from(b)).abs() <= 2.0 * eps,
            ErrorBound::Relative(pct) => {
                let (x, y) = (f64::from(a), f64::from(b));
                if x == y {
                    return true;
                }
                // Both points must be approximable by one value; the widest
                // tolerance is ε(x) + ε(y).
                (x - y).abs() <= pct / 100.0 * (x.abs() + y.abs())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_collapses_to_lossless() {
        assert!(ErrorBound::relative(0.0).is_lossless());
        assert!(ErrorBound::absolute(0.0).is_lossless());
        assert!(!ErrorBound::relative(1.0).is_lossless());
    }

    #[test]
    fn lossless_requires_equality() {
        let b = ErrorBound::Lossless;
        assert!(b.within(1.0, 1.0));
        assert!(!b.within(1.0, 1.0000001));
    }

    #[test]
    fn absolute_bound_checks_distance() {
        let b = ErrorBound::absolute(1.0);
        assert!(b.within(169.7, 170.7));
        assert!(b.within(169.7, 168.7));
        assert!(!b.within(169.7, 171.8));
    }

    #[test]
    fn relative_bound_scales_with_value() {
        let b = ErrorBound::relative(10.0);
        assert!(b.within(99.0, 100.0)); // 1% off
        assert!(b.within(90.0, 100.0)); // exactly 10% off
        assert!(!b.within(89.0, 100.0)); // 11% off
                                         // Small values allow only small absolute deviation.
        assert!(!b.within(0.2, 0.1));
        assert!(b.within(0.105, 0.1));
    }

    #[test]
    fn relative_bound_zero_value_only_accepts_zero() {
        let b = ErrorBound::relative(10.0);
        assert!(b.within(0.0, 0.0));
        assert!(!b.within(0.001, 0.0));
    }

    #[test]
    fn non_finite_values_fail_closed() {
        let b = ErrorBound::relative(10.0);
        assert!(!b.within(1.0, f32::NAN));
        assert!(!b.within(f32::INFINITY, 1.0));
        assert!(b.within(f32::NAN, f32::NAN));
        assert!(b.within(f32::INFINITY, f32::INFINITY));
    }

    #[test]
    fn interval_for_is_symmetric_around_value() {
        let b = ErrorBound::relative(5.0);
        let (lo, hi) = b.interval_for(200.0);
        assert_eq!(lo, 190.0);
        assert_eq!(hi, 210.0);
        let (lo, hi) = b.interval_for(-200.0);
        assert_eq!(lo, -210.0);
        assert_eq!(hi, -190.0);
    }

    #[test]
    fn double_bound_is_wider_than_single() {
        let b = ErrorBound::absolute(1.0);
        assert!(!b.within(100.0, 101.5));
        assert!(b.within_double(100.0, 101.5));
        assert!(!b.within_double(100.0, 102.5));
    }

    #[test]
    fn paper_example_linear_model_error() {
        // Section 2: mest = −0.047t + 192.2 represents (500, 169.7) with
        // error |169.7 − 168.7| = 1, so an absolute bound of 1 accepts it.
        let approx = -0.047_f32 * 500.0 + 192.2;
        assert!(ErrorBound::absolute(1.0).within(approx, 169.7));
        assert!(!ErrorBound::absolute(0.5).within(approx, 169.7));
    }
}

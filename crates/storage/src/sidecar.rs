//! The persistent sidecar index (`segments.idx`).
//!
//! The append-only block log (`segments.log`) is the durable truth; the
//! sidecar is a checksummed, versioned summary of it — per-block
//! [`BlockMeta`] statistics plus the store's full zone map — rewritten at
//! every flush (not per appended block, keeping sustained ingestion
//! O(blocks)). Opening a store with a fresh sidecar loads
//! block summaries in one small read instead of scanning and decoding the
//! whole log; a missing, corrupt, version-mismatched, or stale sidecar is
//! simply ignored and the store falls back to a streaming block-by-block
//! rebuild (which then rewrites the sidecar).
//!
//! Staleness is decided by the recorded log length: a sidecar describing
//! *more* log than exists (the log lost a tail) cannot be trusted at all,
//! while a sidecar describing *less* (blocks were appended after the last
//! sidecar write, e.g. a crash between block append and sidecar rename)
//! stays valid for its prefix and the store scans only the remainder.
//! Writes go through a temp file and an atomic rename, so a crash mid-write
//! leaves the previous sidecar (or none), never a torn one.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use std::sync::Arc;

use mdb_types::{BlockFormat, BlockMeta, BlockSketch, BlockSketches, Result, ValueInterval};

use crate::codec::checksum;
use crate::rollup::{self, RollupAcc, RollupCells};
use crate::zone::{GidZone, ZoneMap, ZoneRun, ZoneValues};

const SIDECAR_MAGIC: u32 = 0x4D44_4249; // "MDBI"
                                        // Version 2 added the per-block payload-format tag (v1 varint vs v2
                                        // columnar blocks). A version-1 sidecar no longer parses; the store falls
                                        // back to the streaming rescan — which recognizes both block formats — and
                                        // rewrites a current sidecar, so old stores upgrade on first open.
const SIDECAR_VERSION: u32 = 2;

/// Everything `DiskStore::open` needs that is not the segment bodies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sidecar {
    /// Length of the valid log prefix this sidecar describes.
    pub log_len: u64,
    /// Whether the statistics were computed with a stored-value range
    /// provider. A store opened *with* bounds must not adopt a sidecar
    /// written *without* them — its boundless value statistics are sound
    /// but would permanently disable value pruning that a rescan would
    /// restore. (The other direction is fine: bounded statistics only
    /// over-approximate.)
    pub value_bounded: bool,
    /// Whether the statistics were computed with a sketch feed. Same
    /// adoption rule as `value_bounded`: a store opened *with* a feed must
    /// not adopt a sketch-less sidecar (including any written before the
    /// sketch section existed) — a rescan regenerates the sketches.
    pub sketched: bool,
    /// One summary per block, in log order.
    pub blocks: Vec<BlockMeta>,
    /// The zone map over every segment in those blocks.
    pub zones: ZoneMap,
    /// The materialized rollup cells covering those blocks, when the store
    /// maintains them. `None` means rollups were not maintained when the
    /// sidecar was written (including every pre-rollup file) — a store
    /// opened *with* a rollup feed must not adopt such a sidecar; the rescan
    /// rebuilds the cells. A present-but-poisoned map (its levels recorded,
    /// its cells dropped) is adopted as unsound.
    pub rollups: Option<RollupCells>,
}

/// Serializes and writes the sidecar atomically (temp file + rename).
pub fn write(path: &Path, sidecar: &Sidecar) -> Result<()> {
    let mut body = Vec::new();
    put_u64(&mut body, sidecar.log_len);
    body.push(u8::from(sidecar.value_bounded));
    put_u32(&mut body, sidecar.blocks.len() as u32);
    for block in &sidecar.blocks {
        put_u64(&mut body, block.offset);
        put_u64(&mut body, block.stored_bytes);
        put_u32(&mut body, block.payload_len);
        put_u32(&mut body, block.checksum);
        put_u32(&mut body, block.count);
        put_u64(&mut body, block.logical_bytes);
        put_u32(&mut body, block.min_gid);
        put_u32(&mut body, block.max_gid);
        put_i64(&mut body, block.min_start);
        put_i64(&mut body, block.min_end);
        put_i64(&mut body, block.max_end);
        put_opt_interval(&mut body, &block.values);
        body.push(match block.format {
            BlockFormat::V1 => 1,
            BlockFormat::V2 => 2,
        });
    }
    let n_gids = sidecar.zones.gids().count() as u32;
    put_u32(&mut body, n_gids);
    for (gid, zone) in sidecar.zones.iter() {
        put_u32(&mut body, gid);
        put_i64(&mut body, zone.min_start);
        put_i64(&mut body, zone.max_end);
        put_values(&mut body, &zone.values);
        put_u64(&mut body, zone.segments);
        put_u32(&mut body, zone.runs.len() as u32);
        for run in &zone.runs {
            put_i64(&mut body, run.min_start);
            put_i64(&mut body, run.min_end);
            put_i64(&mut body, run.max_end);
            put_values(&mut body, &run.values);
            put_u32(&mut body, run.segments);
        }
    }
    // Sketch section (this trails the original layout so a pre-sketch
    // parser's notion of the body simply ended here; a pre-sketch *file*
    // conversely parses as `sketched: false` with no per-block sketches).
    // Per block: a presence flag, then gid-tagged length-prefixed sketch
    // bytes in gid order. The sketch bytes carry their own format version
    // (`mdb_sketch::SKETCH_FORMAT_VERSION`), and the body checksum covers
    // the whole section, so truncation or corruption rejects the sidecar
    // and the store falls back to the streaming rescan.
    body.push(u8::from(sidecar.sketched));
    for block in &sidecar.blocks {
        match &block.sketches {
            None => body.push(0),
            Some(sketches) => {
                body.push(1);
                put_u32(&mut body, sketches.len() as u32);
                for (gid, sketch) in sketches.iter() {
                    put_u32(&mut body, *gid);
                    let bytes = sketch.to_bytes();
                    put_u32(&mut body, bytes.len() as u32);
                    body.extend_from_slice(&bytes);
                }
            }
        }
    }
    // Rollup section (trails the sketch section; absent in older files,
    // which parse as "rollups not maintained"). Flag: 0 = not maintained,
    // 1 = sound cells follow (levels, then the cell map flat in key order,
    // f64 fields as raw bits so reload is bit-exact), 2 = maintained but
    // poisoned (levels only; adopters must treat the map as unsound). The
    // body checksum covers the section, so truncation mid-cells rejects the
    // whole sidecar and the store falls back to the streaming rescan.
    match &sidecar.rollups {
        None => body.push(0),
        Some(cells) => {
            body.push(if cells.is_sound() { 1 } else { 2 });
            body.push(cells.levels().len() as u8);
            for level in cells.levels() {
                body.push(rollup::level_tag(*level));
            }
            if cells.is_sound() {
                put_u64(&mut body, cells.len() as u64);
                for (&(gid, tag, tid, bucket), acc) in cells.iter() {
                    put_u32(&mut body, gid);
                    body.push(tag);
                    put_u32(&mut body, tid);
                    put_i64(&mut body, bucket);
                    put_u64(&mut body, acc.count);
                    put_u64(&mut body, acc.sum.to_bits());
                    put_u64(&mut body, acc.min.to_bits());
                    put_u64(&mut body, acc.max.to_bits());
                }
            }
        }
    }
    let mut file_bytes = Vec::with_capacity(16 + body.len());
    put_u32(&mut file_bytes, SIDECAR_MAGIC);
    put_u32(&mut file_bytes, SIDECAR_VERSION);
    put_u32(&mut file_bytes, checksum(&body));
    put_u32(&mut file_bytes, body.len() as u32);
    file_bytes.extend_from_slice(&body);

    let tmp = path.with_extension("idx.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&file_bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads and validates a sidecar. `Ok(None)` means "no usable sidecar"
/// (missing, truncated, corrupt, or from another version) — never an error,
/// because the log can always be rescanned.
pub fn load(path: &Path) -> Result<Option<Sidecar>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Ok(parse(&bytes))
}

fn parse(bytes: &[u8]) -> Option<Sidecar> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.u32()? != SIDECAR_MAGIC || cur.u32()? != SIDECAR_VERSION {
        return None;
    }
    let body_checksum = cur.u32()?;
    let body_len = cur.u32()? as usize;
    let body = cur.take(body_len)?;
    if !cur.at_end() || checksum(body) != body_checksum {
        return None;
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    let log_len = cur.u64()?;
    let value_bounded = match cur.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let n_blocks = cur.u32()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
    for _ in 0..n_blocks {
        blocks.push(BlockMeta {
            offset: cur.u64()?,
            stored_bytes: cur.u64()?,
            payload_len: cur.u32()?,
            checksum: cur.u32()?,
            count: cur.u32()?,
            logical_bytes: cur.u64()?,
            min_gid: cur.u32()?,
            max_gid: cur.u32()?,
            min_start: cur.i64()?,
            min_end: cur.i64()?,
            max_end: cur.i64()?,
            values: cur.opt_interval()?,
            format: match cur.u8()? {
                1 => BlockFormat::V1,
                2 => BlockFormat::V2,
                _ => return None,
            },
            // Filled in by the trailing sketch section, when present.
            sketches: None,
        });
    }
    let mut zones = ZoneMap::new();
    let n_gids = cur.u32()? as usize;
    for _ in 0..n_gids {
        let gid = cur.u32()?;
        let min_start = cur.i64()?;
        let max_end = cur.i64()?;
        let values = cur.values()?;
        let segments = cur.u64()?;
        let n_runs = cur.u32()? as usize;
        let mut runs = Vec::with_capacity(n_runs.min(1 << 20));
        for _ in 0..n_runs {
            runs.push(ZoneRun {
                min_start: cur.i64()?,
                min_end: cur.i64()?,
                max_end: cur.i64()?,
                values: cur.values()?,
                segments: cur.u32()?,
            });
        }
        zones.set_zone(
            gid,
            GidZone {
                min_start,
                max_end,
                values,
                segments,
                runs,
            },
        );
    }
    // Optional sketch section: absent in pre-sketch sidecars (the body
    // ended at the zones), present — even if only as flags — in everything
    // written since.
    let mut sketched = false;
    if !cur.at_end() {
        sketched = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        for block in &mut blocks {
            match cur.u8()? {
                0 => {}
                1 => {
                    let n = cur.u32()? as usize;
                    let mut sketches: BlockSketches = Vec::with_capacity(n.min(1 << 16));
                    let mut prev: Option<u32> = None;
                    for _ in 0..n {
                        let gid = cur.u32()?;
                        if prev.is_some_and(|p| p >= gid) {
                            return None; // not in canonical gid order
                        }
                        prev = Some(gid);
                        let len = cur.u32()? as usize;
                        sketches.push((gid, BlockSketch::from_bytes(cur.take(len)?)?));
                    }
                    block.sketches = Some(Arc::new(sketches));
                }
                _ => return None,
            }
        }
    }
    // Optional rollup section: absent in pre-rollup sidecars (the body
    // ended at the sketches).
    let mut rollups = None;
    if !cur.at_end() {
        match cur.u8()? {
            0 => {}
            flag @ (1 | 2) => {
                let n_levels = cur.u8()? as usize;
                let mut levels = Vec::with_capacity(n_levels.min(8));
                for _ in 0..n_levels {
                    levels.push(rollup::level_from_tag(cur.u8()?)?);
                }
                let mut cells = BTreeMap::new();
                if flag == 1 {
                    let n = cur.u64()? as usize;
                    for _ in 0..n {
                        let gid = cur.u32()?;
                        let tag = cur.u8()?;
                        rollup::level_from_tag(tag)?;
                        let tid = cur.u32()?;
                        let bucket = cur.i64()?;
                        let acc = RollupAcc {
                            count: cur.u64()?,
                            sum: f64::from_bits(cur.u64()?),
                            min: f64::from_bits(cur.u64()?),
                            max: f64::from_bits(cur.u64()?),
                        };
                        if cells.insert((gid, tag, tid, bucket), acc).is_some() {
                            return None; // duplicate cell key
                        }
                    }
                }
                rollups = Some(RollupCells::from_parts(levels, flag == 1, cells));
            }
            _ => return None,
        }
    }
    cur.at_end().then_some(Sidecar {
        log_len,
        value_bounded,
        sketched,
        blocks,
        zones,
        rollups,
    })
}

// -------------------------------------------------- little-endian helpers --

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_interval(out: &mut Vec<u8>, v: &Option<ValueInterval>) {
    match v {
        None => out.push(0),
        Some(i) => {
            out.push(1);
            put_u64(out, i.lo.to_bits());
            put_u64(out, i.hi.to_bits());
        }
    }
}

fn put_values(out: &mut Vec<u8>, v: &ZoneValues) {
    match v {
        ZoneValues::Empty => out.push(0),
        ZoneValues::Bounded(i) => {
            out.push(1);
            put_u64(out, i.lo.to_bits());
            put_u64(out, i.hi.to_bits());
        }
        ZoneValues::Unbounded => out.push(2),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn opt_interval(&mut self) -> Option<Option<ValueInterval>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let lo = f64::from_bits(self.u64()?);
                let hi = f64::from_bits(self.u64()?);
                Some(Some(ValueInterval { lo, hi }))
            }
            _ => None,
        }
    }

    fn values(&mut self) -> Option<ZoneValues> {
        match self.u8()? {
            0 => Some(ZoneValues::Empty),
            1 => {
                let lo = f64::from_bits(self.u64()?);
                let hi = f64::from_bits(self.u64()?);
                Some(ZoneValues::Bounded(ValueInterval { lo, hi }))
            }
            2 => Some(ZoneValues::Unbounded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::{GapsMask, SegmentRecord};
    use std::path::PathBuf;

    fn temp(tag: &str) -> (mdb_testutil::TempDir, PathBuf) {
        let dir = mdb_testutil::TempDir::new(&format!("sidecar-{tag}"));
        let path = dir.join("segments.idx");
        (dir, path)
    }

    fn sample() -> Sidecar {
        let mut zones = ZoneMap::new();
        for i in 0..100i64 {
            zones.insert(
                &SegmentRecord {
                    gid: 1 + (i % 3) as u32,
                    start_time: i * 1000,
                    end_time: i * 1000 + 900,
                    sampling_interval: 100,
                    mid: 1,
                    params: Bytes::new(),
                    gaps: GapsMask::EMPTY,
                },
                (i % 7 != 0).then(|| ValueInterval::new(-1.0 - i as f64, i as f64)),
            );
        }
        let mut sketch_a = BlockSketch::new();
        let mut sketch_b = BlockSketch::new();
        for i in 0..40u32 {
            sketch_a.quantiles.insert(f64::from(i) * 0.25 - 3.0);
            sketch_a.distinct.insert(u64::from(i % 7));
            sketch_a.topk.add(i % 7, 10);
            sketch_b.quantiles.insert(-f64::from(i));
        }
        Sidecar {
            log_len: 12_345,
            value_bounded: true,
            sketched: true,
            blocks: vec![
                BlockMeta {
                    offset: 0,
                    stored_bytes: 6000,
                    payload_len: 5956,
                    format: BlockFormat::V1,
                    checksum: 0xDEAD_BEEF,
                    count: 50,
                    logical_bytes: 4_096,
                    min_gid: 1,
                    max_gid: 3,
                    min_start: 0,
                    min_end: 900,
                    max_end: 49_900,
                    values: Some(ValueInterval::new(f64::NEG_INFINITY, 3.5)),
                    sketches: Some(Arc::new(vec![(1, sketch_a), (3, sketch_b)])),
                },
                BlockMeta {
                    offset: 6000,
                    stored_bytes: 6345,
                    payload_len: 6301,
                    format: BlockFormat::V2,
                    checksum: 7,
                    count: 50,
                    logical_bytes: 5_120,
                    min_gid: 1,
                    max_gid: 3,
                    min_start: 50_000,
                    min_end: 50_900,
                    max_end: 99_900,
                    values: None,
                    sketches: None,
                },
            ],
            zones,
            rollups: Some(sample_rollups(true)),
        }
    }

    fn sample_rollups(sound: bool) -> RollupCells {
        use mdb_types::TimeLevel;
        let mut cells = BTreeMap::new();
        if sound {
            for i in 0..20u32 {
                cells.insert(
                    (
                        1 + i % 3,
                        rollup::level_tag(TimeLevel::Hour),
                        10 + i,
                        i64::from(i) * 3_600_000,
                    ),
                    RollupAcc {
                        count: u64::from(i) + 1,
                        sum: f64::from(i) * 0.125 - 1.0,
                        min: -f64::from(i),
                        max: f64::from(i),
                    },
                );
            }
            cells.insert(
                (2, rollup::level_tag(TimeLevel::Day), 11, -86_400_000),
                RollupAcc {
                    count: 3,
                    sum: -0.0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                },
            );
        }
        RollupCells::from_parts(vec![TimeLevel::Hour, TimeLevel::Day], sound, cells)
    }

    #[test]
    fn round_trips_bit_exactly() {
        let (_dir, path) = temp("roundtrip");
        let sidecar = sample();
        write(&path, &sidecar).unwrap();
        let back = load(&path).unwrap().expect("valid sidecar");
        assert_eq!(back, sidecar);
    }

    #[test]
    fn missing_file_is_none() {
        let (_dir, path) = temp("missing");
        assert_eq!(load(&path).unwrap(), None);
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let (_dir, path) = temp("corrupt");
        write(&path, &sample()).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of offsets: every mutation must be
        // rejected (magic, version, checksum, or trailing-bytes check).
        for pos in (0..good.len()).step_by(13) {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert_eq!(load(&path).unwrap(), None, "byte {pos} undetected");
        }
        // Truncations are rejected too.
        for cut in [0, 3, 16, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert_eq!(load(&path).unwrap(), None, "truncation at {cut}");
        }
    }

    #[test]
    fn empty_store_sidecar_round_trips() {
        let (_dir, path) = temp("empty");
        let sidecar = Sidecar::default();
        write(&path, &sidecar).unwrap();
        assert_eq!(load(&path).unwrap(), Some(sidecar));
    }

    /// A sidecar written before the sketch section existed — its body ends
    /// at the zone map — must still load, as `sketched: false` with no
    /// per-block sketches (the store then rescans if it wants sketches).
    #[test]
    fn pre_sketch_sidecar_still_loads() {
        let (_dir, path) = temp("legacy");
        let mut sidecar = sample();
        sidecar.sketched = false;
        for block in &mut sidecar.blocks {
            block.sketches = None;
        }
        sidecar.rollups = None;
        write(&path, &sidecar).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // With no sketches and no rollups the trailing sections are exactly
        // the `sketched` flag, one presence byte per block, and the rollup
        // flag; chopping them (and fixing the header's body length and
        // checksum) reproduces the pre-sketch layout.
        let section = 1 + sidecar.blocks.len() + 1;
        bytes.truncate(bytes.len() - section);
        let body_len = (bytes.len() - 16) as u32;
        bytes[12..16].copy_from_slice(&body_len.to_le_bytes());
        let body_checksum = checksum(&bytes[16..]);
        bytes[8..12].copy_from_slice(&body_checksum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let back = load(&path).unwrap().expect("legacy sidecar loads");
        assert_eq!(back, sidecar);

        // A *truncated* sketch section, by contrast, is rejected outright
        // (the checksum no longer matches), forcing the rescan fallback.
        write(&path, &sample()).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 1..section + 20 {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            assert_eq!(load(&path).unwrap(), None, "cut {cut} undetected");
        }
    }

    /// The rollup section round-trips both states: sound with cells
    /// (f64 fields bit-exact, including `-0.0` and infinities) and poisoned
    /// with levels only.
    #[test]
    fn rollup_section_round_trips_sound_and_poisoned() {
        let (_dir, path) = temp("rollups");
        let sidecar = sample();
        write(&path, &sidecar).unwrap();
        let back = load(&path).unwrap().expect("valid sidecar");
        let cells = back.rollups.as_ref().expect("rollups present");
        assert!(cells.is_sound());
        assert_eq!(cells.len(), 21);
        let mut mine = cells.iter();
        for (key, acc) in sidecar.rollups.as_ref().unwrap().iter() {
            let (bkey, bacc) = mine.next().unwrap();
            assert_eq!(bkey, key);
            assert_eq!(bacc.count, acc.count);
            assert_eq!(bacc.sum.to_bits(), acc.sum.to_bits());
            assert_eq!(bacc.min.to_bits(), acc.min.to_bits());
            assert_eq!(bacc.max.to_bits(), acc.max.to_bits());
        }

        let mut poisoned = sample();
        poisoned.rollups = Some(sample_rollups(false));
        write(&path, &poisoned).unwrap();
        let back = load(&path).unwrap().expect("valid sidecar");
        let cells = back.rollups.as_ref().expect("rollups present");
        assert!(!cells.is_sound());
        assert!(cells.is_empty());
        assert_eq!(
            cells.levels(),
            &[mdb_types::TimeLevel::Hour, mdb_types::TimeLevel::Day]
        );
    }
}

//! Continuous aggregates: incrementally materialized time-hierarchy rollup
//! cells.
//!
//! A *cell* is one `(gid, level, tid, bucket_start)` accumulator holding the
//! SUM/COUNT/MIN/MAX of every data point the store has absorbed for that time
//! series inside that calendar bucket (AVG derives as SUM/COUNT at
//! finalization, exactly like the scan path). Cells are maintained on the
//! same append path that feeds [`mdb_types::BlockMeta`] statistics and the
//! block sketches: a caller-provided [`RollupFeedFn`] (typically
//! `mdb_query::rollup_feed` closed over the catalog and model registry)
//! decodes each finalized segment once and returns its per-bucket deltas,
//! which are folded into the cell map in segment order. Because the fold
//! applies *the same floating-point operations in the same order* as the
//! query engine's bucketed scan, a cell-served aggregate is bit-identical to
//! the re-aggregating scan — the invariant `tests/rollup_equivalence.rs`
//! pins.
//!
//! Like every other derived statistic in this store, rollups fail open: a
//! segment the feed cannot decode, or an ingestion order the store cannot
//! guarantee matches its scan order, poisons the cell map
//! ([`RollupCells::poison`]) and queries transparently fall back to the scan
//! path. Soundness (not freshness) is the contract — cells either serve the
//! exact scan answer or do not serve at all.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Arc;

use mdb_types::{Gid, SegmentRecord, Tid, TimeLevel, Timestamp};

/// Stable one-byte tag for a [`TimeLevel`], ordered coarse → fine, used as
/// the level component of cell keys and in the sidecar encoding.
pub fn level_tag(level: TimeLevel) -> u8 {
    match level {
        TimeLevel::Year => 0,
        TimeLevel::Month => 1,
        TimeLevel::Day => 2,
        TimeLevel::Hour => 3,
        TimeLevel::Minute => 4,
        TimeLevel::Second => 5,
    }
}

/// Inverse of [`level_tag`]; `None` for tags this version does not know.
pub fn level_from_tag(tag: u8) -> Option<TimeLevel> {
    match tag {
        0 => Some(TimeLevel::Year),
        1 => Some(TimeLevel::Month),
        2 => Some(TimeLevel::Day),
        3 => Some(TimeLevel::Hour),
        4 => Some(TimeLevel::Minute),
        5 => Some(TimeLevel::Second),
        _ => None,
    }
}

/// The finest (largest tag) of a set of maintained levels — the bucket width
/// the query engine keys plain whole-range aggregates by so they too can be
/// cell-served.
pub fn finest_level(levels: &[TimeLevel]) -> Option<TimeLevel> {
    levels.iter().copied().max_by_key(|l| level_tag(*l))
}

/// One materialized cell: the accumulator state of every data point of one
/// time series inside one calendar bucket. Field semantics and merge
/// arithmetic mirror the query engine's `Accumulator` exactly — that
/// equivalence is what makes cell-served results bit-identical to scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollupAcc {
    /// Number of data points.
    pub count: u64,
    /// Sum of reconstructed (descaled) values.
    pub sum: f64,
    /// Minimum reconstructed value.
    pub min: f64,
    /// Maximum reconstructed value.
    pub max: f64,
}

impl RollupAcc {
    /// Folds another accumulator in — identical operations, in identical
    /// order, to `Accumulator::merge` on the scan path.
    pub fn merge(&mut self, other: &RollupAcc) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The contribution of one segment to one cell, as produced by a
/// [`RollupFeedFn`]: the segment's data points falling in `bucket` at
/// `level`, pre-aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupDelta {
    /// The member time series the delta belongs to.
    pub tid: Tid,
    /// The hierarchy level of the bucket.
    pub level: TimeLevel,
    /// Bucket start (`mdb_types::time::truncate(level, ts)` of every covered
    /// point).
    pub bucket: Timestamp,
    /// Pre-aggregated contribution.
    pub acc: RollupAcc,
}

/// Decodes one finalized segment into its per-bucket deltas for every
/// maintained level, in the same order the query engine's bucketed scan
/// would visit them. `None` means the segment cannot be decoded; the cell
/// map then poisons (fails open), like the sketch feed.
pub type RollupFeedFn = Arc<dyn Fn(&SegmentRecord) -> Option<Vec<RollupDelta>> + Send + Sync>;

/// A rollup feed bundled with the levels it materializes — what stores are
/// configured with.
#[derive(Clone)]
pub struct RollupFeed {
    /// The hierarchy levels the feed produces deltas for.
    pub levels: Vec<TimeLevel>,
    /// The per-segment delta function.
    pub feed: RollupFeedFn,
}

impl std::fmt::Debug for RollupFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollupFeed")
            .field("levels", &self.levels)
            .finish_non_exhaustive()
    }
}

/// The materialized cell map of one store: every cell for every maintained
/// level, keyed `(gid, level_tag, tid, bucket_start)`, plus a soundness flag.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupCells {
    levels: Vec<TimeLevel>,
    sound: bool,
    cells: BTreeMap<(Gid, u8, Tid, Timestamp), RollupAcc>,
}

impl RollupCells {
    /// An empty, sound cell map maintaining `levels`.
    pub fn new(levels: Vec<TimeLevel>) -> Self {
        Self {
            levels,
            sound: true,
            cells: BTreeMap::new(),
        }
    }

    /// Rebuilds a cell map from previously serialized parts (sidecar load).
    pub fn from_parts(
        levels: Vec<TimeLevel>,
        sound: bool,
        cells: BTreeMap<(Gid, u8, Tid, Timestamp), RollupAcc>,
    ) -> Self {
        Self {
            levels,
            sound,
            cells,
        }
    }

    /// The levels this map maintains.
    pub fn levels(&self) -> &[TimeLevel] {
        &self.levels
    }

    /// True while the map still mirrors the scan path exactly.
    pub fn is_sound(&self) -> bool {
        self.sound
    }

    /// Marks the map unsound: queries fall back to the scan path from here
    /// on. Irreversible short of a full rebuild.
    pub fn poison(&mut self) {
        self.sound = false;
    }

    /// Number of materialized cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell is materialized.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Folds one segment's deltas into the map, in delta order — the same
    /// left-fold the scan path performs when it merges per-segment partials
    /// in scan order.
    pub fn apply(&mut self, gid: Gid, deltas: &[RollupDelta]) {
        for d in deltas {
            match self.cells.entry((gid, level_tag(d.level), d.tid, d.bucket)) {
                Entry::Vacant(v) => {
                    v.insert(d.acc);
                }
                Entry::Occupied(mut o) => o.get_mut().merge(&d.acc),
            }
        }
    }

    /// Feeds one finalized segment through `feed`, poisoning on decode
    /// failure. No-op once poisoned.
    pub fn feed_segment(&mut self, feed: &RollupFeedFn, segment: &SegmentRecord) {
        if !self.sound {
            return;
        }
        match feed(segment) {
            Some(deltas) => self.apply(segment.gid, &deltas),
            None => self.sound = false,
        }
    }

    /// Visits every cell of `level` (optionally restricted to `scope`
    /// groups, deduplicated) in `(gid, tid, bucket)` key order. Does not
    /// check soundness — callers gate on [`RollupCells::is_sound`].
    pub fn for_each(
        &self,
        level: TimeLevel,
        scope: Option<&[Gid]>,
        f: &mut dyn FnMut(Gid, Tid, Timestamp, &RollupAcc),
    ) {
        let tag = level_tag(level);
        match scope {
            Some(gids) => {
                let mut gids = gids.to_vec();
                gids.sort_unstable();
                gids.dedup();
                for gid in gids {
                    let range =
                        (gid, tag, Tid::MIN, Timestamp::MIN)..=(gid, tag, Tid::MAX, Timestamp::MAX);
                    for (&(g, _, tid, bucket), acc) in self.cells.range(range) {
                        f(g, tid, bucket, acc);
                    }
                }
            }
            None => {
                for (&(g, t, tid, bucket), acc) in &self.cells {
                    if t == tag {
                        f(g, tid, bucket, acc);
                    }
                }
            }
        }
    }

    /// Iterates every cell in key order (sidecar serialization).
    pub fn iter(&self) -> impl Iterator<Item = (&(Gid, u8, Tid, Timestamp), &RollupAcc)> + '_ {
        self.cells.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(count: u64, sum: f64, min: f64, max: f64) -> RollupAcc {
        RollupAcc {
            count,
            sum,
            min,
            max,
        }
    }

    #[test]
    fn level_tags_round_trip_and_order_coarse_to_fine() {
        let levels = [
            TimeLevel::Year,
            TimeLevel::Month,
            TimeLevel::Day,
            TimeLevel::Hour,
            TimeLevel::Minute,
            TimeLevel::Second,
        ];
        for (i, level) in levels.iter().enumerate() {
            assert_eq!(level_tag(*level) as usize, i);
            assert_eq!(level_from_tag(i as u8), Some(*level));
        }
        assert_eq!(level_from_tag(6), None);
        assert_eq!(
            finest_level(&[TimeLevel::Hour, TimeLevel::Month, TimeLevel::Day]),
            Some(TimeLevel::Hour)
        );
        assert_eq!(finest_level(&[]), None);
    }

    #[test]
    fn apply_folds_in_delta_order() {
        let mut cells = RollupCells::new(vec![TimeLevel::Hour]);
        let d = |bucket, sum| RollupDelta {
            tid: 7,
            level: TimeLevel::Hour,
            bucket,
            acc: acc(2, sum, sum, sum),
        };
        cells.apply(1, &[d(0, 1.5), d(3_600_000, 2.5)]);
        cells.apply(1, &[d(0, 4.0)]);
        assert_eq!(cells.len(), 2);
        let mut seen = Vec::new();
        cells.for_each(TimeLevel::Hour, None, &mut |g, tid, bucket, a| {
            seen.push((g, tid, bucket, *a))
        });
        assert_eq!(seen[0], (1, 7, 0, acc(4, 5.5, 1.5, 4.0)));
        assert_eq!(seen[1], (1, 7, 3_600_000, acc(2, 2.5, 2.5, 2.5)));
    }

    #[test]
    fn scope_filters_and_deduplicates() {
        let mut cells = RollupCells::new(vec![TimeLevel::Day]);
        let d = RollupDelta {
            tid: 1,
            level: TimeLevel::Day,
            bucket: 0,
            acc: acc(1, 1.0, 1.0, 1.0),
        };
        cells.apply(1, std::slice::from_ref(&d));
        cells.apply(2, std::slice::from_ref(&d));
        let mut n = 0;
        cells.for_each(TimeLevel::Day, Some(&[2, 2, 2]), &mut |g, _, _, _| {
            assert_eq!(g, 2);
            n += 1;
        });
        assert_eq!(n, 1);
        let mut m = 0;
        cells.for_each(TimeLevel::Hour, None, &mut |_, _, _, _| m += 1);
        assert_eq!(m, 0, "unmaintained level yields no cells");
    }

    #[test]
    fn feed_failure_poisons() {
        let mut cells = RollupCells::new(vec![TimeLevel::Hour]);
        let fail: RollupFeedFn = Arc::new(|_| None);
        let seg = SegmentRecord {
            gid: 1,
            start_time: 0,
            end_time: 900,
            sampling_interval: 100,
            mid: 0,
            params: bytes::Bytes::new(),
            gaps: mdb_types::GapsMask::EMPTY,
        };
        assert!(cells.is_sound());
        cells.feed_segment(&fail, &seg);
        assert!(!cells.is_sound());
    }
}

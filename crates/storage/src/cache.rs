//! A sharded, memory-budgeted LRU cache over decoded log blocks.
//!
//! The out-of-core [`crate::disk::DiskStore`] keeps only block *summaries*
//! resident; segment bodies are fetched block-by-block on demand and parked
//! here. The cache holds decoded blocks (`Arc<Vec<SegmentRecord>>`) keyed by
//! their log offset — blocks are immutable once written, so there is no
//! invalidation, only eviction. Capacity comes from the engine's
//! `memory_budget_bytes`: `None` caches everything ever fetched (the
//! all-resident behaviour the store had before it went out-of-core),
//! `Some(0)` caches nothing, and anything in between is a hard byte budget
//! split evenly across shards, each evicting least-recently-used blocks.
//!
//! Reads take one shard lock; shards are selected by block offset, so
//! concurrent scans over different regions of the log rarely contend.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mdb_types::{Result, SegmentRecord};

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// Observable cache behaviour: hit ratio for diagnostics, resident/peak
/// segment counts for the memory-budget benchmark (`repro storage`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches answered from memory.
    pub hits: u64,
    /// Fetches that had to read and decode a block.
    pub misses: u64,
    /// Blocks evicted to stay within the budget.
    pub evictions: u64,
    /// Segments currently resident in the cache.
    pub resident_segments: usize,
    /// Bytes currently resident in the cache.
    pub resident_bytes: usize,
    /// High-water mark of `resident_segments` over the cache's lifetime.
    pub peak_resident_segments: usize,
}

/// The in-memory footprint charged for one cached segment: the record
/// struct itself plus its heap-owned model parameters.
pub fn segment_resident_bytes(segment: &SegmentRecord) -> usize {
    std::mem::size_of::<SegmentRecord>() + segment.params.len()
}

struct Entry {
    block: Arc<Vec<SegmentRecord>>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
}

/// The sharded LRU block cache (see the module docs).
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget; `None` = unbounded.
    shard_budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident_segments: AtomicUsize,
    peak_resident_segments: AtomicUsize,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BlockCache")
            .field("shard_budget", &self.shard_budget)
            .field("stats", &stats)
            .finish()
    }
}

impl BlockCache {
    /// A cache bounded by `budget_bytes` in total (`None` = unbounded,
    /// `Some(0)` = cache nothing).
    pub fn new(budget_bytes: Option<u64>) -> Self {
        let shard_budget = budget_bytes.map(|total| {
            let total = usize::try_from(total).unwrap_or(usize::MAX);
            total / SHARDS
        });
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_segments: AtomicUsize::new(0),
            peak_resident_segments: AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, offset: u64) -> &Mutex<Shard> {
        // Offsets are byte positions, typically far apart; mix them so
        // neighbouring blocks spread over shards.
        let h = offset.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % SHARDS]
    }

    /// Returns the block at `offset`, loading it through `load` on a miss.
    /// The loaded block is cached unless it alone exceeds the shard budget
    /// (in particular, a zero budget caches nothing); eviction is LRU.
    pub fn get_or_load(
        &self,
        offset: u64,
        load: impl FnOnce() -> Result<Vec<SegmentRecord>>,
    ) -> Result<Arc<Vec<SegmentRecord>>> {
        {
            let mut shard = self.shard_of(offset).lock().expect("cache shard poisoned");
            let tick = shard.tick + 1;
            shard.tick = tick;
            if let Some(entry) = shard.entries.get_mut(&offset) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.block));
            }
        }
        // Load outside the lock: disk I/O and decoding must not serialize
        // unrelated shard traffic. Two racing loads of the same block both
        // succeed; the second insert simply replaces the first.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let block = Arc::new(load()?);
        let bytes: usize = block.iter().map(segment_resident_bytes).sum();
        if self.shard_budget.is_some_and(|budget| bytes > budget) {
            return Ok(block); // larger than the whole shard: use, don't park
        }
        let mut freed_segments = 0usize;
        {
            let mut shard = self.shard_of(offset).lock().expect("cache shard poisoned");
            let tick = shard.tick + 1;
            shard.tick = tick;
            if let Some(old) = shard.entries.insert(
                offset,
                Entry {
                    block: Arc::clone(&block),
                    bytes,
                    last_used: tick,
                },
            ) {
                shard.bytes -= old.bytes;
                freed_segments += old.block.len();
            }
            shard.bytes += bytes;
            // Evict least-recently-used entries (never the one just
            // inserted) until the shard fits its budget again.
            while let Some(budget) = self.shard_budget {
                if shard.bytes <= budget {
                    break;
                }
                let victim = shard
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != offset)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k);
                let Some(victim) = victim else { break };
                if let Some(old) = shard.entries.remove(&victim) {
                    shard.bytes -= old.bytes;
                    freed_segments += old.block.len();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let added = block.len();
        let resident = if added >= freed_segments {
            self.resident_segments
                .fetch_add(added - freed_segments, Ordering::Relaxed)
                + (added - freed_segments)
        } else {
            self.resident_segments
                .fetch_sub(freed_segments - added, Ordering::Relaxed)
                - (freed_segments - added)
        };
        self.peak_resident_segments
            .fetch_max(resident, Ordering::Relaxed);
        Ok(block)
    }

    /// A point-in-time snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let mut resident_bytes = 0;
        let mut resident_segments = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            resident_bytes += shard.bytes;
            resident_segments += shard.entries.values().map(|e| e.block.len()).sum::<usize>();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_segments,
            resident_bytes,
            peak_resident_segments: self
                .peak_resident_segments
                .load(Ordering::Relaxed)
                .max(resident_segments),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn block(gid: u32, n: usize) -> Vec<SegmentRecord> {
        (0..n)
            .map(|i| SegmentRecord {
                gid,
                start_time: i as i64 * 1000,
                end_time: i as i64 * 1000 + 900,
                sampling_interval: 100,
                mid: 1,
                params: Bytes::from(vec![0u8; 16]),
                gaps: GapsMask::EMPTY,
            })
            .collect()
    }

    #[test]
    fn hits_after_first_load() {
        let cache = BlockCache::new(None);
        let a = cache.get_or_load(0, || Ok(block(1, 4))).unwrap();
        let b = cache.get_or_load(0, || panic!("must not reload")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_segments, 4);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let cache = BlockCache::new(Some(0));
        cache.get_or_load(0, || Ok(block(1, 4))).unwrap();
        cache.get_or_load(0, || Ok(block(1, 4))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.resident_segments, 0);
        assert_eq!(stats.peak_resident_segments, 0);
    }

    #[test]
    fn bounded_budget_evicts_lru_and_tracks_peak() {
        let one_block = block(1, 8);
        let block_bytes: usize = one_block.iter().map(segment_resident_bytes).sum();
        // Room for about two blocks per shard.
        let cache = BlockCache::new(Some((block_bytes * 2 * SHARDS) as u64));
        for offset in 0..64u64 {
            cache.get_or_load(offset, || Ok(block(1, 8))).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert!(
            stats.resident_segments <= 2 * SHARDS * 8,
            "resident {} exceeds capacity",
            stats.resident_segments
        );
        assert!(stats.peak_resident_segments <= 2 * SHARDS * 8 + 8);
        // Recently used blocks survive; the cache still answers correctly.
        let last = cache.get_or_load(63, || Ok(block(9, 1))).unwrap();
        assert_eq!(last[0].gid, 1, "offset 63 must still be the cached block");
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let cache = BlockCache::new(None);
        let err = cache.get_or_load(7, || Err(mdb_types::MdbError::Corrupt("boom".into())));
        assert!(err.is_err());
        assert_eq!(cache.stats().resident_segments, 0);
        // A later good load works.
        assert_eq!(cache.get_or_load(7, || Ok(block(2, 2))).unwrap().len(), 2);
    }
}

//! A sharded, memory-budgeted LRU cache over fetched log blocks.
//!
//! The out-of-core [`crate::disk::DiskStore`] keeps only block *summaries*
//! resident; segment bodies are fetched block-by-block on demand and parked
//! here. The cache holds [`CachedBlock`]s keyed by their log offset —
//! blocks are immutable once written, so there is no invalidation, only
//! eviction. A v2 block is cached as its validated raw buffer
//! ([`BlockView`]) and scanned through borrowed [`SegmentView`]s; a legacy
//! v1 block is cached as the owned records its row-major payload decodes
//! into. Either way an entry is charged its exact *file* bytes (header +
//! payload as stored on disk), so the budget arithmetic is not a heap
//! estimate: cached bytes are file bytes.
//!
//! Capacity comes from the engine's `memory_budget_bytes`: `None` caches
//! everything ever fetched (the all-resident behaviour the store had before
//! it went out-of-core), `Some(0)` caches nothing, and anything in between
//! is a hard byte budget split evenly across shards, each evicting
//! least-recently-used blocks.
//!
//! Reads take one shard lock; shards are selected by block offset, so
//! concurrent scans over different regions of the log rarely contend. The
//! prefetcher inserts through [`BlockCache::insert_prefetched`], which
//! never displaces a demand-loaded entry and tags the block so the first
//! demand hit is counted as a prefetch hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mdb_types::{BlockView, Result, SegmentRecord, SegmentView};

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// Observable cache behaviour: hit ratio and I/O volume for diagnostics,
/// resident/peak segment counts for the memory-budget benchmark
/// (`repro storage`), and decode counters that make the zero-copy claim
/// checkable — a pure-v2 scan shows `owned_decodes == 0` and exactly one
/// validation per block read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches answered from memory.
    pub hits: u64,
    /// Fetches that had to read a block from disk.
    pub misses: u64,
    /// Blocks evicted to stay within the budget.
    pub evictions: u64,
    /// File bytes read from the log (demand loads + prefetches).
    pub bytes_read: u64,
    /// Blocks the prefetcher read into the cache ahead of the scan.
    pub prefetch_issued: u64,
    /// Demand fetches answered by a block the prefetcher had staged.
    pub prefetch_hits: u64,
    /// v2 blocks validated into a [`BlockView`] (once per block read).
    pub decode_validations: u64,
    /// Blocks decoded into owned records (v1 payloads only).
    pub owned_decodes: u64,
    /// Segments currently resident in the cache.
    pub resident_segments: usize,
    /// Bytes currently resident in the cache (exact file bytes).
    pub resident_bytes: usize,
    /// High-water mark of `resident_segments` over the cache's lifetime.
    pub peak_resident_segments: usize,
}

/// One fetched block as the cache holds it: a validated zero-copy buffer
/// for v2 payloads, owned decoded records for legacy v1 payloads. Both
/// variants serve segments as [`SegmentView`]s, so the scan path is
/// format-agnostic and allocation-free over v2.
#[derive(Debug)]
pub enum CachedBlock {
    /// A validated v2 buffer; segments are borrowed straight out of it.
    View(BlockView),
    /// Owned records decoded from a v1 payload.
    Owned(Vec<SegmentRecord>),
}

impl CachedBlock {
    /// Number of segments in the block.
    pub fn len(&self) -> usize {
        match self {
            CachedBlock::View(v) => v.len(),
            CachedBlock::Owned(records) => records.len(),
        }
    }

    /// True when the block holds no segments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th segment, borrowed from the block.
    pub fn segment(&self, i: usize) -> SegmentView<'_> {
        match self {
            CachedBlock::View(v) => v.segment(i),
            CachedBlock::Owned(records) => records[i].view(),
        }
    }

    /// Iterates the block's segments in stored (log) order.
    pub fn segments(&self) -> impl Iterator<Item = SegmentView<'_>> + '_ {
        (0..self.len()).map(|i| self.segment(i))
    }
}

struct Entry {
    block: Arc<CachedBlock>,
    /// Exact file bytes the block occupies on disk.
    bytes: usize,
    last_used: u64,
    /// Staged by the prefetcher and not yet demanded.
    prefetched: bool,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
}

/// The sharded LRU block cache (see the module docs).
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget; `None` = unbounded.
    shard_budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_read: AtomicU64,
    prefetch_issued: AtomicU64,
    prefetch_hits: AtomicU64,
    decode_validations: AtomicU64,
    owned_decodes: AtomicU64,
    resident_segments: AtomicUsize,
    peak_resident_segments: AtomicUsize,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BlockCache")
            .field("shard_budget", &self.shard_budget)
            .field("stats", &stats)
            .finish()
    }
}

impl BlockCache {
    /// A cache bounded by `budget_bytes` in total (`None` = unbounded,
    /// `Some(0)` = cache nothing).
    pub fn new(budget_bytes: Option<u64>) -> Self {
        let shard_budget = budget_bytes.map(|total| {
            let total = usize::try_from(total).unwrap_or(usize::MAX);
            total / SHARDS
        });
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            prefetch_issued: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            decode_validations: AtomicU64::new(0),
            owned_decodes: AtomicU64::new(0),
            resident_segments: AtomicUsize::new(0),
            peak_resident_segments: AtomicUsize::new(0),
        }
    }

    /// True when the budget is `Some(0)`: nothing is ever parked, so
    /// prefetching into the cache is pointless.
    pub fn caches_nothing(&self) -> bool {
        self.shard_budget == Some(0)
    }

    fn shard_of(&self, offset: u64) -> &Mutex<Shard> {
        // Offsets are byte positions, typically far apart; mix them so
        // neighbouring blocks spread over shards.
        let h = offset.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % SHARDS]
    }

    fn note_decode(&self, block: &CachedBlock, file_bytes: usize) {
        self.bytes_read
            .fetch_add(file_bytes as u64, Ordering::Relaxed);
        match block {
            CachedBlock::View(_) => &self.decode_validations,
            CachedBlock::Owned(_) => &self.owned_decodes,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the block at `offset`, loading it through `load` on a miss.
    /// `load` returns the block plus its exact file footprint in bytes,
    /// which is what the budget is charged. The loaded block is cached
    /// unless it alone exceeds the shard budget (in particular, a zero
    /// budget caches nothing); eviction is LRU.
    pub fn get_or_load(
        &self,
        offset: u64,
        load: impl FnOnce() -> Result<(CachedBlock, usize)>,
    ) -> Result<Arc<CachedBlock>> {
        {
            let mut shard = self.shard_of(offset).lock().expect("cache shard poisoned");
            let tick = shard.tick + 1;
            shard.tick = tick;
            if let Some(entry) = shard.entries.get_mut(&offset) {
                entry.last_used = tick;
                if entry.prefetched {
                    entry.prefetched = false;
                    self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.block));
            }
        }
        // Load outside the lock: disk I/O and decoding must not serialize
        // unrelated shard traffic. Two racing loads of the same block both
        // succeed; the second insert simply replaces the first.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (block, file_bytes) = load()?;
        self.note_decode(&block, file_bytes);
        let block = Arc::new(block);
        self.park(offset, &block, file_bytes, false);
        Ok(block)
    }

    /// Stages a block the prefetcher read ahead of the scan. A no-op when
    /// the offset is already cached (the demand path won the race) or when
    /// the cache is budgeted to hold nothing; otherwise the entry is
    /// tagged so the first demand fetch counts as a prefetch hit. Returns
    /// whether the block was actually staged.
    pub fn insert_prefetched(&self, offset: u64, block: CachedBlock, file_bytes: usize) -> bool {
        if self.shard_budget.is_some_and(|budget| file_bytes > budget) {
            return false;
        }
        {
            let shard = self.shard_of(offset).lock().expect("cache shard poisoned");
            if shard.entries.contains_key(&offset) {
                return false;
            }
        }
        self.note_decode(&block, file_bytes);
        self.prefetch_issued.fetch_add(1, Ordering::Relaxed);
        self.park(offset, &Arc::new(block), file_bytes, true);
        true
    }

    /// True when `offset` is already resident (used by the prefetcher to
    /// skip blocks the scan already pulled in).
    pub fn contains(&self, offset: u64) -> bool {
        let shard = self.shard_of(offset).lock().expect("cache shard poisoned");
        shard.entries.contains_key(&offset)
    }

    fn park(&self, offset: u64, block: &Arc<CachedBlock>, bytes: usize, prefetched: bool) {
        if self.shard_budget.is_some_and(|budget| bytes > budget) {
            return; // larger than the whole shard: use, don't park
        }
        let mut freed_segments = 0usize;
        {
            let mut shard = self.shard_of(offset).lock().expect("cache shard poisoned");
            let tick = shard.tick + 1;
            shard.tick = tick;
            if let Some(old) = shard.entries.insert(
                offset,
                Entry {
                    block: Arc::clone(block),
                    bytes,
                    last_used: tick,
                    prefetched,
                },
            ) {
                shard.bytes -= old.bytes;
                freed_segments += old.block.len();
            }
            shard.bytes += bytes;
            // Evict least-recently-used entries (never the one just
            // inserted) until the shard fits its budget again.
            while let Some(budget) = self.shard_budget {
                if shard.bytes <= budget {
                    break;
                }
                let victim = shard
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != offset)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k);
                let Some(victim) = victim else { break };
                if let Some(old) = shard.entries.remove(&victim) {
                    shard.bytes -= old.bytes;
                    freed_segments += old.block.len();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let added = block.len();
        let resident = if added >= freed_segments {
            self.resident_segments
                .fetch_add(added - freed_segments, Ordering::Relaxed)
                + (added - freed_segments)
        } else {
            self.resident_segments
                .fetch_sub(freed_segments - added, Ordering::Relaxed)
                - (freed_segments - added)
        };
        self.peak_resident_segments
            .fetch_max(resident, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let mut resident_bytes = 0;
        let mut resident_segments = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            resident_bytes += shard.bytes;
            resident_segments += shard.entries.values().map(|e| e.block.len()).sum::<usize>();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            decode_validations: self.decode_validations.load(Ordering::Relaxed),
            owned_decodes: self.owned_decodes.load(Ordering::Relaxed),
            resident_segments,
            resident_bytes,
            peak_resident_segments: self
                .peak_resident_segments
                .load(Ordering::Relaxed)
                .max(resident_segments),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::{encode_block_v2, GapsMask};

    fn records(gid: u32, n: usize) -> Vec<SegmentRecord> {
        (0..n)
            .map(|i| SegmentRecord {
                gid,
                start_time: i as i64 * 1000,
                end_time: i as i64 * 1000 + 900,
                sampling_interval: 100,
                mid: 1,
                params: Bytes::from(vec![0u8; 16]),
                gaps: GapsMask::EMPTY,
            })
            .collect()
    }

    fn block(gid: u32, n: usize) -> (CachedBlock, usize) {
        let payload = encode_block_v2(&records(gid, n));
        let bytes = payload.len() + 40; // header-inclusive file footprint
        let view = BlockView::parse(payload, n as u32).unwrap();
        (CachedBlock::View(view), bytes)
    }

    #[test]
    fn hits_after_first_load() {
        let cache = BlockCache::new(None);
        let a = cache.get_or_load(0, || Ok(block(1, 4))).unwrap();
        let b = cache.get_or_load(0, || panic!("must not reload")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_segments, 4);
        assert_eq!(stats.decode_validations, 1);
        assert_eq!(stats.owned_decodes, 0);
        assert_eq!(stats.bytes_read as usize, block(1, 4).1);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let cache = BlockCache::new(Some(0));
        assert!(cache.caches_nothing());
        cache.get_or_load(0, || Ok(block(1, 4))).unwrap();
        cache.get_or_load(0, || Ok(block(1, 4))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.resident_segments, 0);
        assert_eq!(stats.peak_resident_segments, 0);
    }

    #[test]
    fn bounded_budget_evicts_lru_and_tracks_peak() {
        let (_, block_bytes) = block(1, 8);
        // Room for about two blocks per shard, charged at file bytes.
        let cache = BlockCache::new(Some((block_bytes * 2 * SHARDS) as u64));
        for offset in 0..64u64 {
            cache.get_or_load(offset, || Ok(block(1, 8))).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert!(
            stats.resident_segments <= 2 * SHARDS * 8,
            "resident {} exceeds capacity",
            stats.resident_segments
        );
        assert!(stats.resident_bytes <= 2 * SHARDS * block_bytes);
        assert!(stats.peak_resident_segments <= 2 * SHARDS * 8 + 8);
        // Recently used blocks survive; the cache still answers correctly.
        let last = cache.get_or_load(63, || Ok(block(9, 1))).unwrap();
        assert_eq!(
            last.segment(0).gid,
            1,
            "offset 63 must still be the cached block"
        );
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let cache = BlockCache::new(None);
        let err = cache.get_or_load(7, || Err(mdb_types::MdbError::Corrupt("boom".into())));
        assert!(err.is_err());
        assert_eq!(cache.stats().resident_segments, 0);
        // A later good load works.
        assert_eq!(cache.get_or_load(7, || Ok(block(2, 2))).unwrap().len(), 2);
    }

    #[test]
    fn owned_blocks_serve_views_and_count_decodes() {
        let cache = BlockCache::new(None);
        let recs = records(3, 5);
        let expected = recs.clone();
        let cached = cache
            .get_or_load(11, || Ok((CachedBlock::Owned(recs), 300)))
            .unwrap();
        for (view, record) in cached.segments().zip(&expected) {
            assert_eq!(view, record.view());
        }
        let stats = cache.stats();
        assert_eq!(stats.owned_decodes, 1);
        assert_eq!(stats.decode_validations, 0);
        assert_eq!(stats.bytes_read, 300);
    }

    #[test]
    fn prefetched_blocks_hit_and_count_once() {
        let cache = BlockCache::new(None);
        let (b, bytes) = block(2, 4);
        assert!(cache.insert_prefetched(40, b, bytes));
        assert!(cache.contains(40));
        // Re-staging the same offset is refused.
        let (b2, bytes2) = block(2, 4);
        assert!(!cache.insert_prefetched(40, b2, bytes2));
        // First demand fetch is a hit and counts as THE prefetch hit…
        cache.get_or_load(40, || panic!("staged")).unwrap();
        // …later fetches are plain hits.
        cache.get_or_load(40, || panic!("staged")).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.prefetch_issued, 1);
        assert_eq!(stats.prefetch_hits, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.bytes_read as usize, bytes);
    }

    #[test]
    fn zero_budget_refuses_prefetch() {
        let cache = BlockCache::new(Some(0));
        let (b, bytes) = block(2, 4);
        assert!(!cache.insert_prefetched(8, b, bytes));
        assert_eq!(cache.stats().prefetch_issued, 0);
    }
}

//! Segment storage (Section 3.3): the schema of Figure 6 behind a uniform
//! interface with predicate push-down, playing the role Apache Cassandra
//! plays for the paper's system.
//!
//! * [`codec`] — binary encodings. Segments use the Cassandra-layout
//!   optimizations of Section 3.3: clustering by `(Gid, EndTime, Gaps)` and
//!   storing the segment *size in data points* instead of `StartTime`
//!   (recomputed as `StartTime = EndTime − (Size − 1) × SI`).
//! * [`catalog`] — the Time Series table, Model table, group membership and
//!   denormalized dimensions; the in-memory metadata cache of Figure 4.
//! * [`memory`] — a heap-backed store for tests and benchmarks.
//! * [`disk`] — a persistent block-log store with per-block min/max
//!   statistics (gid and end-time ranges) for block skipping, bulk-buffered
//!   writes (Table 1's Bulk Write Size), checksums, and crash-tolerant
//!   recovery that truncates a torn tail block.

pub mod catalog;
pub mod codec;
pub mod disk;
pub mod memory;

use mdb_types::{Gid, Result, SegmentRecord, Timestamp};

pub use catalog::Catalog;
pub use disk::DiskStore;
pub use memory::MemoryStore;

/// Predicates pushed down to the segment store (Section 6.2: the store only
/// needs to index one id per segment — the Gid — plus the time interval).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentPredicate {
    /// Restrict to these groups; `None` scans all groups.
    pub gids: Option<Vec<Gid>>,
    /// Only segments whose interval ends at or after this time.
    pub from: Option<Timestamp>,
    /// Only segments whose interval starts at or before this time.
    pub to: Option<Timestamp>,
}

impl SegmentPredicate {
    /// Match everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to a set of groups.
    pub fn for_gids(gids: Vec<Gid>) -> Self {
        Self { gids: Some(gids), ..Self::default() }
    }

    /// Further restrict to segments overlapping `[from, to]` (inclusive).
    pub fn with_time_range(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Whether `segment` satisfies the predicate.
    pub fn matches(&self, segment: &SegmentRecord) -> bool {
        if let Some(gids) = &self.gids {
            if !gids.contains(&segment.gid) {
                return false;
            }
        }
        if let Some(from) = self.from {
            if segment.end_time < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if segment.start_time > to {
                return false;
            }
        }
        true
    }
}

/// The uniform storage interface of Figure 4 ("Storage Interface …
/// provides a uniform interface with predicate push-down for the persistent
/// segment group store").
pub trait SegmentStore: Send {
    /// Appends one segment (buffered; durability on [`SegmentStore::flush`]).
    fn insert(&mut self, segment: SegmentRecord) -> Result<()>;

    /// Makes all buffered segments durable and queryable.
    fn flush(&mut self) -> Result<()>;

    /// Streams all segments matching `predicate`, in `(gid, end_time)` order.
    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()>;

    /// Number of stored segments (including buffered ones).
    fn len(&self) -> usize;

    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical size of the stored segments in bytes (the quantity compared
    /// across systems in Figures 14–15).
    fn logical_bytes(&self) -> u64;

    /// Bytes on persistent media (0 for the in-memory store).
    fn persistent_bytes(&self) -> u64;
}

/// Collects a scan into a vector (convenience for tests and query code).
pub fn scan_to_vec(store: &dyn SegmentStore, predicate: &SegmentPredicate) -> Result<Vec<SegmentRecord>> {
    let mut out = Vec::new();
    store.scan(predicate, &mut |s| out.push(s.clone()))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: Timestamp, end: Timestamp) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 0,
            params: Bytes::from_static(&[1, 2, 3, 4]),
            gaps: GapsMask::EMPTY,
        }
    }

    #[test]
    fn predicate_matches_gid_and_interval_overlap() {
        let s = seg(3, 1_000, 2_000);
        assert!(SegmentPredicate::all().matches(&s));
        assert!(SegmentPredicate::for_gids(vec![3]).matches(&s));
        assert!(!SegmentPredicate::for_gids(vec![4]).matches(&s));
        assert!(SegmentPredicate::all().with_time_range(2_000, 3_000).matches(&s));
        assert!(SegmentPredicate::all().with_time_range(0, 1_000).matches(&s));
        assert!(!SegmentPredicate::all().with_time_range(2_100, 3_000).matches(&s));
        assert!(!SegmentPredicate::all().with_time_range(0, 900).matches(&s));
        assert!(SegmentPredicate::for_gids(vec![3]).with_time_range(1_500, 1_600).matches(&s));
    }
}

//! Segment storage (Section 3.3): the schema of Figure 6 behind a uniform
//! interface with predicate push-down, playing the role Apache Cassandra
//! plays for the paper's system.
//!
//! * [`codec`] — binary encodings. Segments use the Cassandra-layout
//!   optimizations of Section 3.3: clustering by `(Gid, EndTime, Gaps)` and
//!   storing the segment *size in data points* instead of `StartTime`
//!   (recomputed as `StartTime = EndTime − (Size − 1) × SI`).
//! * [`catalog`] — the Time Series table, Model table, group membership and
//!   denormalized dimensions; the in-memory metadata cache of Figure 4.
//! * [`memory`] — a heap-backed store for tests and benchmarks.
//! * [`disk`] — the persistent, *out-of-core* block-log store: per-block
//!   [`mdb_types::BlockMeta`] statistics for skipping blocks before they are
//!   fetched, bulk-buffered writes (Table 1's Bulk Write Size), checksums,
//!   crash-tolerant recovery that truncates a torn tail block, a persistent
//!   [`sidecar`] index so reopening is O(blocks) instead of O(log), and a
//!   memory-budgeted [`cache`] so resident memory is O(cache capacity)
//!   instead of O(total segments).
//! * [`sidecar`] — the checksummed, versioned `segments.idx` summary of the
//!   log (block statistics + zone map) that makes fast reopen possible.
//! * [`cache`] — the sharded LRU [`BlockCache`] of decoded blocks.
//! * [`zone`] — the segment-pruning zone map: per-group min/max time and
//!   stored-value statistics over runs of segments, maintained on write by
//!   both stores and consulted by [`SegmentStore::scan`] to skip runs that
//!   cannot match a query's push-down predicate.

pub mod cache;
pub mod catalog;
pub mod codec;
pub mod disk;
pub mod memory;
pub mod rollup;
pub mod sidecar;
pub mod zone;

use std::sync::Arc;

use mdb_types::{
    BlockSketch, Gid, Result, SegmentRecord, SegmentView, Tid, TimeLevel, Timestamp, ValueInterval,
};

pub use cache::{BlockCache, CacheStats, CachedBlock};
pub use catalog::Catalog;
pub use codec::{checksum, checksum_v2};
pub use disk::{DiskStore, DiskStoreOptions};
pub use memory::MemoryStore;
pub use rollup::{RollupAcc, RollupCells, RollupDelta, RollupFeed, RollupFeedFn};
pub use zone::{GidZone, SketchFeedFn, ValueBoundsFn, ZoneMap, ZoneRun, ZoneValues};

/// Predicates pushed down to the segment store (Section 6.2: the store only
/// needs to index one id per segment — the Gid — plus the time interval).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentPredicate {
    /// Restrict to these groups; `None` scans all groups.
    pub gids: Option<Vec<Gid>>,
    /// Only segments whose interval ends at or after this time.
    pub from: Option<Timestamp>,
    /// Only segments whose interval starts at or before this time.
    pub to: Option<Timestamp>,
    /// Only segment runs whose *stored* (scaled) value range intersects this
    /// interval, checked against the store's zone map at run granularity —
    /// the store cannot evaluate individual values without decoding models,
    /// so per-point filtering stays in the query engine. `None` disables
    /// value pruning.
    pub values: Option<ValueInterval>,
}

impl SegmentPredicate {
    /// Match everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to a set of groups.
    pub fn for_gids(gids: Vec<Gid>) -> Self {
        Self {
            gids: Some(gids),
            ..Self::default()
        }
    }

    /// Further restrict to segments overlapping `[from, to]` (inclusive).
    pub fn with_time_range(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Further restrict to segment runs whose stored-value range intersects
    /// `values` (run-granular zone-map pruning; see [`SegmentPredicate::values`]).
    pub fn with_values(mut self, values: ValueInterval) -> Self {
        self.values = Some(values);
        self
    }

    /// True when the per-segment clauses (gid, time) restrict nothing, so
    /// every segment of a surviving run matches — the full-span fast path:
    /// scans emit whole blocks as single runs without evaluating a view per
    /// segment. The run-granular `values` clause is irrelevant here; it
    /// prunes blocks and runs, never individual segments.
    pub fn matches_every_segment(&self) -> bool {
        self.gids.is_none() && self.from.is_none() && self.to.is_none()
    }

    /// Whether `segment` satisfies the gid and time parts of the predicate.
    /// The `values` part is run-granular: it cannot be decided per segment
    /// without decoding the model, so it is intentionally not checked here.
    pub fn matches(&self, segment: &SegmentRecord) -> bool {
        self.matches_view(&segment.view())
    }

    /// [`SegmentPredicate::matches`] over a borrowed view — the form the
    /// zero-copy scan path evaluates without materializing a record.
    pub fn matches_view(&self, segment: &SegmentView<'_>) -> bool {
        if let Some(gids) = &self.gids {
            if !gids.contains(&segment.gid) {
                return false;
            }
        }
        if let Some(from) = self.from {
            if segment.end_time < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if segment.start_time > to {
                return false;
            }
        }
        true
    }
}

/// One contiguous run of matching segments as [`SegmentStore::scan_runs`]
/// yields it: either a slice `[lo, hi)` of a cached block — shared, so the
/// consumer holds the block alive and reads segments as borrowed views with
/// no per-segment allocation — or a small owned batch (write buffers, the
/// in-memory store's default adaptation).
#[derive(Debug)]
pub enum SegmentRun {
    /// Segments `lo..hi` of a cached on-disk block.
    Block {
        /// The cached block the run borrows from.
        block: Arc<CachedBlock>,
        /// First matching segment index (inclusive).
        lo: usize,
        /// One past the last matching segment index.
        hi: usize,
    },
    /// An owned batch of segments (already resident, not block-backed).
    Inline(Vec<SegmentRecord>),
}

impl SegmentRun {
    /// Number of segments in the run.
    pub fn len(&self) -> usize {
        match self {
            SegmentRun::Block { lo, hi, .. } => hi - lo,
            SegmentRun::Inline(records) => records.len(),
        }
    }

    /// True when the run is empty (stores never emit empty runs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th segment of the run as a borrowed view.
    pub fn segment(&self, i: usize) -> SegmentView<'_> {
        match self {
            SegmentRun::Block { block, lo, hi } => {
                debug_assert!(lo + i < *hi);
                block.segment(lo + i)
            }
            SegmentRun::Inline(records) => records[i].view(),
        }
    }

    /// Iterates the run's segments in scan order.
    pub fn segments(&self) -> impl Iterator<Item = SegmentView<'_>> + '_ {
        (0..self.len()).map(|i| self.segment(i))
    }
}

/// The uniform storage interface of Figure 4 ("Storage Interface …
/// provides a uniform interface with predicate push-down for the persistent
/// segment group store").
///
/// Stores are `Sync` so the query engine can share one store reference
/// across its scoped scan workers; mutation stays `&mut self`.
pub trait SegmentStore: Send + Sync {
    /// Appends one segment (buffered; durability on [`SegmentStore::flush`]).
    fn insert(&mut self, segment: SegmentRecord) -> Result<()>;

    /// Makes all buffered segments durable and queryable.
    fn flush(&mut self) -> Result<()>;

    /// Streams all segments matching `predicate` in a store-defined
    /// **deterministic** order: [`MemoryStore`] yields `(gid, end_time)` key
    /// order; [`DiskStore`] yields log (insertion) order. Scanning the same
    /// store state twice always yields the same sequence — the invariant
    /// the bit-identical query guarantees are built on. Stores that
    /// maintain a [`ZoneMap`] (or per-block statistics) use it here to skip
    /// whole groups, segment runs, or on-disk blocks whose statistics
    /// cannot match.
    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()>;

    /// Like [`SegmentStore::scan`], but yields contiguous *runs* of matching
    /// segments instead of one segment at a time — the scan shape of the
    /// out-of-core store, where a run borrows a cached block and the query
    /// engine extends its collect buffer per block instead of per segment.
    /// The default adapts [`SegmentStore::scan`] with single-segment runs;
    /// the concatenation of runs is identical to the `scan` sequence.
    fn scan_batches(
        &self,
        predicate: &SegmentPredicate,
        f: &mut dyn FnMut(&[SegmentRecord]),
    ) -> Result<()> {
        self.scan(predicate, &mut |segment| f(std::slice::from_ref(segment)))
    }

    /// Like [`SegmentStore::scan_batches`], but yields [`SegmentRun`]s whose
    /// segments are read as borrowed [`SegmentView`]s — for the out-of-core
    /// store a run shares the cached block itself, so the aggregate scan
    /// path materializes no owned records at all. The concatenation of the
    /// runs' segments is identical to the `scan` sequence. The default
    /// adapts [`SegmentStore::scan_batches`] with owned runs.
    fn scan_runs(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(SegmentRun)) -> Result<()> {
        self.scan_batches(predicate, &mut |run| f(SegmentRun::Inline(run.to_vec())))
    }

    /// Collects every segment of the given groups, preserving the store's
    /// deterministic scan order and its run boundaries — the unit a cluster
    /// group handoff ships to the receiving worker. For the disk store the
    /// runs follow block boundaries, so re-importing with
    /// [`SegmentStore::import_run`] reproduces the source's block structure.
    fn export_runs(&self, gids: &[Gid]) -> Result<Vec<Vec<SegmentRecord>>> {
        let mut runs = Vec::new();
        self.scan_batches(&SegmentPredicate::for_gids(gids.to_vec()), &mut |run| {
            runs.push(run.to_vec())
        })?;
        Ok(runs)
    }

    /// Appends one exported run as a unit. The default inserts the segments
    /// one by one; the disk store additionally cuts a block at the run
    /// boundary, so a handoff target's log mirrors the source's block
    /// structure instead of merging runs by its own bulk-write size.
    /// Durability still requires [`SegmentStore::flush`].
    fn import_run(&mut self, run: Vec<SegmentRecord>) -> Result<()> {
        for segment in run {
            self.insert(segment)?;
        }
        Ok(())
    }

    /// Merges the per-group sketches covering every stored segment
    /// (optionally restricted to the groups in `scope`) **without touching
    /// segment bodies** — for the disk store this reads block metadata
    /// only, never the `BlockCache`. `Ok(None)` means sketch queries are
    /// unanswerable here: the store has no sketch feed configured, or some
    /// segment could not be fed (sketches fail open like every other
    /// statistic). `Ok(Some)` with an empty sketch means "maintained, but
    /// nothing stored in scope".
    fn merge_sketches(&self, _scope: Option<&[Gid]>) -> Result<Option<BlockSketch>> {
        Ok(None)
    }

    /// Visits every materialized rollup cell of `level` (optionally
    /// restricted to `scope` groups) in `(gid, tid, bucket)` key order,
    /// **without touching segment bodies** — for the disk store this never
    /// reads the `BlockCache`. Returns `Ok(false)` when cells cannot serve
    /// here: no rollup feed is configured, `level` is not maintained, or the
    /// cell map was poisoned (rollups fail open like sketches); the caller
    /// then falls back to the scan path. `Ok(true)` means every stored
    /// segment's contribution at `level` was visited.
    fn rollup_cells(
        &self,
        _level: TimeLevel,
        _scope: Option<&[Gid]>,
        _f: &mut dyn FnMut(Gid, Tid, Timestamp, &rollup::RollupAcc),
    ) -> Result<bool> {
        Ok(false)
    }

    /// The store's zone map, if it maintains one (both built-in stores do).
    fn zones(&self) -> Option<&ZoneMap> {
        None
    }

    /// Number of stored segments (including buffered ones).
    fn len(&self) -> usize;

    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical size of the stored segments in bytes (the quantity compared
    /// across systems in Figures 14–15).
    fn logical_bytes(&self) -> u64;

    /// Bytes on persistent media (0 for the in-memory store).
    fn persistent_bytes(&self) -> u64;

    /// Segments currently resident in memory: everything for the in-memory
    /// store, cache plus write buffer for the out-of-core store.
    fn resident_segments(&self) -> usize {
        self.len()
    }

    /// High-water mark of [`SegmentStore::resident_segments`] over the
    /// store's lifetime (an upper bound for stores that track cache and
    /// buffer peaks independently) — the `repro storage` benchmark metric.
    fn resident_segment_peak(&self) -> usize {
        self.resident_segments()
    }

    /// Block-cache counters (reads, prefetches, decode validations). Stores
    /// without a block cache — the in-memory store — report all zeros.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

/// Collects a scan into a vector (convenience for tests and query code).
pub fn scan_to_vec(
    store: &dyn SegmentStore,
    predicate: &SegmentPredicate,
) -> Result<Vec<SegmentRecord>> {
    let mut out = Vec::new();
    store.scan(predicate, &mut |s| out.push(s.clone()))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: Timestamp, end: Timestamp) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 0,
            params: Bytes::from_static(&[1, 2, 3, 4]),
            gaps: GapsMask::EMPTY,
        }
    }

    #[test]
    fn predicate_matches_gid_and_interval_overlap() {
        let s = seg(3, 1_000, 2_000);
        assert!(SegmentPredicate::all().matches(&s));
        assert!(SegmentPredicate::for_gids(vec![3]).matches(&s));
        assert!(!SegmentPredicate::for_gids(vec![4]).matches(&s));
        assert!(SegmentPredicate::all()
            .with_time_range(2_000, 3_000)
            .matches(&s));
        assert!(SegmentPredicate::all()
            .with_time_range(0, 1_000)
            .matches(&s));
        assert!(!SegmentPredicate::all()
            .with_time_range(2_100, 3_000)
            .matches(&s));
        assert!(!SegmentPredicate::all().with_time_range(0, 900).matches(&s));
        assert!(SegmentPredicate::for_gids(vec![3])
            .with_time_range(1_500, 1_600)
            .matches(&s));
    }
}

//! The persistent segment store: an out-of-core append-only block log with a
//! persistent sidecar index and a memory-budgeted block cache.
//!
//! Layout of `segments.log` (unchanged since the first disk store, so old
//! logs recover):
//!
//! ```text
//! repeat:
//!   [u32 magic] [u32 payload_len] [u32 checksum]
//!   [u32 count] [u32 min_gid] [u32 max_gid] [i64 min_end] [i64 max_end]
//!   payload: count × segment records (codec::write_segment)
//! ```
//!
//! Writes are buffered until `bulk_write_size` segments accumulate (Table 1:
//! Bulk Write Size 50,000) or `flush` is called; each flush appends one
//! block and rewrites the sidecar index (`segments.idx`, see
//! [`crate::sidecar`]) holding per-block [`BlockMeta`] statistics plus the
//! zone map.
//!
//! Unlike the original store, segment bodies are **not** resident: `open`
//! loads the block summaries from the sidecar (falling back to a streaming
//! block-by-block rebuild with a bounded buffer when the sidecar is missing
//! or stale), so restart cost is O(blocks) instead of O(log), and scans pull
//! blocks through a sharded LRU [`BlockCache`] bounded by the engine's
//! memory budget, so resident memory is O(cache capacity + write buffer)
//! instead of O(total segments). Zone-map and per-block statistics skip
//! blocks *before* they are fetched from disk — the push-down of
//! Section 3.3/6.2 now saves I/O, not just decoding.
//!
//! A torn tail block (crash during write) fails its checksum and the log is
//! truncated to the last valid block, mirroring a write-ahead-log recovery;
//! the sidecar is trusted only if the last block it describes passes its
//! checksum, and blocks appended after the sidecar was last written (crash
//! between block append and sidecar rename) are picked up by scanning just
//! the log suffix.
//!
//! The log is append-only: unlike [`MemoryStore`](crate::memory::MemoryStore)
//! it does not overwrite duplicate `(gid, end_time, gaps)` keys — the
//! compression pipeline never produces duplicates — and scans stream in
//! *log* (insertion) order rather than key order; every scan over the same
//! store state yields the same deterministic order, which is what the
//! bit-identical query guarantees require.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mdb_types::{
    BlockMeta, BlockSketch, BlockSketches, Gid, MdbError, Result, SegmentRecord, ValueInterval,
};

use crate::cache::{BlockCache, CacheStats};
use crate::codec::{checksum, read_segment, write_segment};
use crate::sidecar::{self, Sidecar};
use crate::zone::{SketchFeedFn, ValueBoundsFn, ZoneMap};
use crate::{SegmentPredicate, SegmentStore};

const BLOCK_MAGIC: u32 = 0x4D44_4253; // "MDBS"
const HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8;

/// How a [`DiskStore`] is opened.
#[derive(Clone, Default)]
pub struct DiskStoreOptions {
    /// Segments buffered before a block is appended (Table 1's Bulk Write
    /// Size); `0` is treated as `1`. The default of 0 therefore flushes a
    /// block per segment — callers normally pass their configured size.
    pub bulk_write_size: usize,
    /// Byte budget for the block cache: `None` keeps every fetched block
    /// resident (the pre-out-of-core behaviour), `Some(0)` caches nothing.
    pub memory_budget_bytes: Option<u64>,
    /// Stored-value range provider for the zone map and block statistics
    /// (typically `mdb_models::segment_value_range` closed over the
    /// registry); without it only time statistics prune.
    pub value_bounds: Option<ValueBoundsFn>,
    /// Sketch provider for per-block mergeable sketches (typically
    /// `mdb_query::sketch_feed`); without it sketch queries are
    /// unanswerable from this store.
    pub sketch_feed: Option<SketchFeedFn>,
}

impl std::fmt::Debug for DiskStoreOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStoreOptions")
            .field("bulk_write_size", &self.bulk_write_size)
            .field("memory_budget_bytes", &self.memory_budget_bytes)
            .field("value_bounds", &self.value_bounds.is_some())
            .field("sketch_feed", &self.sketch_feed.is_some())
            .finish()
    }
}

/// A persistent, out-of-core segment store (see the module docs).
pub struct DiskStore {
    path: PathBuf,
    sidecar_path: PathBuf,
    writer: BufWriter<File>,
    /// Independent read handle for block fetches during `&self` scans.
    reader: Mutex<File>,
    /// Per-block summaries — the only per-segment-body state kept resident.
    blocks: Vec<BlockMeta>,
    zones: ZoneMap,
    cache: BlockCache,
    write_buffer: Vec<SegmentRecord>,
    /// Stored-value range per buffered segment (parallel to `write_buffer`),
    /// computed once at insert for both the zone map and the block summary.
    buffer_ranges: Vec<Option<ValueInterval>>,
    /// High-water mark of the write buffer, for resident-memory accounting.
    buffer_peak: usize,
    bulk_write_size: usize,
    persistent_bytes: u64,
    logical_bytes: u64,
    n_segments: usize,
    /// Blocks appended since the sidecar was last rewritten. The sidecar is
    /// rewritten on [`SegmentStore::flush`] (the durability point), not per
    /// block — sustained ingestion stays O(blocks), and a crash between a
    /// block append and the next flush is covered by the suffix scan.
    sidecar_dirty: bool,
    value_bounds: Option<ValueBoundsFn>,
    sketch_feed: Option<SketchFeedFn>,
    pruning: bool,
}

impl DiskStore {
    /// Opens (or creates) the store in `dir`, recovering from any torn tail
    /// block. `bulk_write_size` is the number of segments buffered before an
    /// automatic flush; the block cache is unbounded.
    pub fn open(dir: &Path, bulk_write_size: usize) -> Result<Self> {
        Self::open_with(
            dir,
            DiskStoreOptions {
                bulk_write_size,
                ..DiskStoreOptions::default()
            },
        )
    }

    /// Like [`DiskStore::open`], but the zone map and block statistics also
    /// record stored-value ranges computed by `value_bounds` — both for
    /// recovered segments and for subsequent inserts.
    pub fn open_with_bounds(
        dir: &Path,
        bulk_write_size: usize,
        value_bounds: Option<ValueBoundsFn>,
    ) -> Result<Self> {
        Self::open_with(
            dir,
            DiskStoreOptions {
                bulk_write_size,
                value_bounds,
                ..DiskStoreOptions::default()
            },
        )
    }

    /// Opens (or creates) the store in `dir` with the full option surface.
    ///
    /// Recovery prefers the sidecar index: when it is present, validated,
    /// and describes a prefix of the log, only the log *suffix* (if any) is
    /// scanned; otherwise the whole log is rebuilt streaming one block at a
    /// time with a bounded buffer. Either way the log is truncated to the
    /// end of its last valid block and a fresh sidecar is written.
    pub fn open_with(dir: &Path, options: DiskStoreOptions) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("segments.log");
        let sidecar_path = dir.join("segments.idx");
        let recovered = recover(
            &path,
            &sidecar_path,
            options.value_bounds.as_ref(),
            options.sketch_feed.as_ref(),
        )?;
        // Not truncated on open: recovery decided how much of the log
        // survives.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(recovered.valid_len)?;
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::End(0))?;
        let reader = Mutex::new(File::open(&path)?);
        let store = Self {
            path,
            sidecar_path,
            writer,
            reader,
            n_segments: recovered.blocks.iter().map(|b| b.count as usize).sum(),
            logical_bytes: recovered.blocks.iter().map(|b| b.logical_bytes).sum(),
            persistent_bytes: recovered.valid_len,
            blocks: recovered.blocks,
            zones: recovered.zones,
            cache: BlockCache::new(options.memory_budget_bytes),
            write_buffer: Vec::new(),
            buffer_ranges: Vec::new(),
            buffer_peak: 0,
            sidecar_dirty: false,
            bulk_write_size: options.bulk_write_size.max(1),
            value_bounds: options.value_bounds,
            sketch_feed: options.sketch_feed,
            pruning: true,
        };
        if !recovered.sidecar_fresh && !store.blocks.is_empty() {
            store.write_sidecar()?;
        }
        Ok(store)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sidecar index path.
    pub fn sidecar_path(&self) -> &Path {
        &self.sidecar_path
    }

    /// Number of blocks on disk.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block-cache counters (hits, misses, resident and peak segments).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Enables or disables zone-map/block-statistics pruning in scans (the
    /// statistics are still maintained). Disabling yields the plain
    /// fetch-every-block scan — the benchmark baseline.
    pub fn set_pruning(&mut self, pruning: bool) {
        self.pruning = pruning;
    }

    /// True when the per-block statistics prove no segment of `meta` can
    /// match `predicate` (with `sorted_gids` the sorted, deduplicated gid
    /// restriction, if any).
    fn block_pruned(
        meta: &BlockMeta,
        predicate: &SegmentPredicate,
        sorted_gids: Option<&[Gid]>,
    ) -> bool {
        if let Some(gids) = sorted_gids {
            if meta.excludes_gids(gids) {
                return true;
            }
        }
        if let Some(from) = predicate.from {
            if meta.ends_before(from) {
                return true;
            }
        }
        if let Some(to) = predicate.to {
            if meta.starts_after(to) {
                return true;
            }
        }
        if let Some(values) = &predicate.values {
            if meta.excludes_values(values) {
                return true;
            }
        }
        false
    }

    /// Fetches one block through the cache, reading and decoding it on a
    /// miss. The payload checksum is verified on every read from disk, so
    /// silent corruption surfaces as [`MdbError::Corrupt`] instead of bad
    /// query results.
    fn fetch_block(&self, meta: &BlockMeta) -> Result<Arc<Vec<SegmentRecord>>> {
        self.cache.get_or_load(meta.offset, || {
            let mut payload = vec![0u8; meta.payload_len as usize];
            {
                let mut reader = self.reader.lock().expect("reader poisoned");
                reader.seek(SeekFrom::Start(meta.offset + HEADER_BYTES as u64))?;
                reader.read_exact(&mut payload)?;
            }
            if checksum(&payload) != meta.checksum {
                return Err(MdbError::Corrupt(format!(
                    "block at offset {} failed its checksum on read",
                    meta.offset
                )));
            }
            decode_block(&payload, meta.count as usize, meta.offset)
        })
    }

    fn write_block(&mut self) -> Result<()> {
        if self.write_buffer.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::new();
        for segment in &self.write_buffer {
            write_segment(&mut payload, segment);
        }
        let meta = summarize_block(
            self.persistent_bytes,
            payload.len() as u32,
            checksum(&payload),
            &self.write_buffer,
            &self.buffer_ranges,
            self.sketch_feed.as_ref(),
        );
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        header.extend_from_slice(&meta.payload_len.to_le_bytes());
        header.extend_from_slice(&meta.checksum.to_le_bytes());
        header.extend_from_slice(&meta.count.to_le_bytes());
        header.extend_from_slice(&meta.min_gid.to_le_bytes());
        header.extend_from_slice(&meta.max_gid.to_le_bytes());
        header.extend_from_slice(&meta.min_end.to_le_bytes());
        header.extend_from_slice(&meta.max_end.to_le_bytes());
        self.writer.write_all(&header)?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.persistent_bytes += meta.stored_bytes;
        self.blocks.push(meta);
        self.write_buffer.clear();
        self.buffer_ranges.clear();
        self.sidecar_dirty = true;
        Ok(())
    }

    fn write_sidecar(&self) -> Result<()> {
        sidecar::write(
            &self.sidecar_path,
            &Sidecar {
                log_len: self.persistent_bytes,
                value_bounded: self.value_bounds.is_some(),
                sketched: self.sketch_feed.is_some(),
                blocks: self.blocks.clone(),
                zones: self.zones.clone(),
            },
        )
    }
}

/// Emits maximal contiguous runs of `segments` matching `predicate` to `f`
/// (zero-copy: runs borrow the block or buffer they live in).
fn emit_matching_runs(
    segments: &[SegmentRecord],
    predicate: &SegmentPredicate,
    f: &mut dyn FnMut(&[SegmentRecord]),
) {
    let mut run_start = None;
    for (i, segment) in segments.iter().enumerate() {
        if predicate.matches(segment) {
            run_start.get_or_insert(i);
        } else if let Some(start) = run_start.take() {
            f(&segments[start..i]);
        }
    }
    if let Some(start) = run_start {
        f(&segments[start..]);
    }
}

/// Builds one block's summary from its segments and their (possibly
/// unknown) stored-value ranges — the single source of truth for both the
/// write path and the streaming rescan, so sidecar-persisted and
/// rescan-rebuilt metadata cannot diverge.
fn summarize_block(
    offset: u64,
    payload_len: u32,
    payload_checksum: u32,
    segments: &[SegmentRecord],
    ranges: &[Option<ValueInterval>],
    sketch_feed: Option<&SketchFeedFn>,
) -> BlockMeta {
    debug_assert_eq!(segments.len(), ranges.len());
    let mut meta = BlockMeta {
        offset,
        stored_bytes: HEADER_BYTES as u64 + u64::from(payload_len),
        payload_len,
        checksum: payload_checksum,
        count: segments.len() as u32,
        logical_bytes: 0,
        min_gid: u32::MAX,
        max_gid: 0,
        min_start: i64::MAX,
        min_end: i64::MAX,
        max_end: i64::MIN,
        values: Some(ValueInterval::EMPTY),
        sketches: sketch_feed.and_then(|feed| sketch_block(segments, feed)),
    };
    for (segment, range) in segments.iter().zip(ranges) {
        meta.min_gid = meta.min_gid.min(segment.gid);
        meta.max_gid = meta.max_gid.max(segment.gid);
        meta.min_start = meta.min_start.min(segment.start_time);
        meta.min_end = meta.min_end.min(segment.end_time);
        meta.max_end = meta.max_end.max(segment.end_time);
        meta.logical_bytes += segment.storage_bytes() as u64;
        meta.values = match (meta.values, range) {
            (Some(acc), Some(r)) => Some(acc.union(r)),
            _ => None, // one unknown range makes the block unknown
        };
    }
    meta
}

/// Runs the sketch feed over a batch of segments, grouped by gid (cluster
/// primary-gid scoping needs per-group granularity). Shared by the write
/// path, the streaming rescan, and the write-buffer contribution at query
/// time, so persisted and recomputed sketches cannot diverge. `None` when
/// any segment fails to decode — the block's sketches fail open.
fn sketch_block(segments: &[SegmentRecord], feed: &SketchFeedFn) -> Option<Arc<BlockSketches>> {
    let mut per_gid: std::collections::BTreeMap<Gid, BlockSketch> =
        std::collections::BTreeMap::new();
    for segment in segments {
        let sketch = per_gid.entry(segment.gid).or_default();
        if !feed(segment, sketch) {
            return None;
        }
    }
    Some(Arc::new(per_gid.into_iter().collect()))
}

/// Decodes one block payload into segment records.
fn decode_block(payload: &[u8], count: usize, offset: u64) -> Result<Vec<SegmentRecord>> {
    let mut slice = payload;
    let mut segments = Vec::with_capacity(count);
    for _ in 0..count {
        match read_segment(&mut slice) {
            Some(s) => segments.push(s),
            None => {
                return Err(MdbError::Corrupt(format!(
                    "block at offset {offset} passed its checksum but failed to decode"
                )))
            }
        }
    }
    if !slice.is_empty() {
        return Err(MdbError::Corrupt(format!(
            "block at offset {offset} passed its checksum but failed to decode"
        )));
    }
    Ok(segments)
}

/// What `open` recovered without keeping any segment bodies resident.
struct Recovered {
    blocks: Vec<BlockMeta>,
    zones: ZoneMap,
    valid_len: u64,
    /// True when the on-disk sidecar already describes exactly this state.
    sidecar_fresh: bool,
}

/// Recovers the store's metadata: from the sidecar when it is valid for a
/// prefix of the log (then only the suffix is scanned), from a full
/// streaming scan otherwise.
fn recover(
    path: &Path,
    sidecar_path: &Path,
    value_bounds: Option<&ValueBoundsFn>,
    sketch_feed: Option<&SketchFeedFn>,
) -> Result<Recovered> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Recovered {
                blocks: Vec::new(),
                zones: ZoneMap::new(),
                valid_len: 0,
                sidecar_fresh: false,
            });
        }
        Err(e) => return Err(e.into()),
    };
    let actual_len = file.metadata()?.len();

    let mut blocks = Vec::new();
    let mut zones = ZoneMap::new();
    let mut scan_from = 0u64;
    let mut sidecar_covered = 0u64;
    if let Some(sc) = sidecar::load(sidecar_path)? {
        // A sidecar written without a value-bounds provider has sound but
        // boundless value statistics; adopting it when this open *has*
        // bounds would permanently disable value pruning a rescan can
        // restore (the other direction is fine — see [`Sidecar`]).
        let bounds_compatible = sc.value_bounded || value_bounds.is_none();
        // Same rule for sketches: a sidecar written without a sketch feed
        // (including any sidecar predating the sketch section) has no
        // sketches to adopt, and adopting it when this open *has* a feed
        // would leave sketch queries permanently unanswerable when a
        // rescan can regenerate them from the blocks.
        let sketch_compatible = sc.sketched || sketch_feed.is_none();
        if bounds_compatible
            && sketch_compatible
            && sc.log_len <= actual_len
            && last_block_intact(&mut file, &sc)
        {
            scan_from = sc.log_len;
            sidecar_covered = sc.log_len;
            blocks = sc.blocks;
            zones = sc.zones;
        }
        // A sidecar describing more log than exists (the log lost a tail)
        // or whose last block fails validation cannot be trusted at all:
        // fall through to the full streaming scan.
    }
    let valid_len = scan_blocks_from(
        &mut file,
        actual_len,
        scan_from,
        value_bounds,
        sketch_feed,
        &mut blocks,
        &mut zones,
    )?;
    Ok(Recovered {
        blocks,
        zones,
        valid_len,
        sidecar_fresh: valid_len == sidecar_covered,
    })
}

/// Validates the last block a sidecar describes against the log: the header
/// must match the recorded summary and the payload its checksum. O(one
/// block), the price of trusting O(blocks) metadata instead of rescanning
/// O(log).
fn last_block_intact(file: &mut File, sc: &Sidecar) -> bool {
    let Some(meta) = sc.blocks.last() else {
        // An empty sidecar describes an empty log prefix; trivially intact.
        return sc.log_len == 0;
    };
    if meta.offset + meta.stored_bytes != sc.log_len {
        return false;
    }
    let mut check = || -> std::io::Result<bool> {
        file.seek(SeekFrom::Start(meta.offset))?;
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let expected = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let count = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if magic != BLOCK_MAGIC
            || payload_len != meta.payload_len
            || expected != meta.checksum
            || count != meta.count
        {
            return Ok(false);
        }
        let mut payload = vec![0u8; payload_len as usize];
        file.read_exact(&mut payload)?;
        Ok(checksum(&payload) == meta.checksum)
    };
    check().unwrap_or(false)
}

/// Streams the log from `offset`, one block at a time with a bounded buffer
/// (never the whole log at once), appending recovered block summaries and
/// zone statistics. Returns the byte offset of the end of the last valid
/// block; a torn or corrupt tail block simply stops the scan.
#[allow(clippy::too_many_arguments)]
fn scan_blocks_from(
    file: &mut File,
    actual_len: u64,
    mut offset: u64,
    value_bounds: Option<&ValueBoundsFn>,
    sketch_feed: Option<&SketchFeedFn>,
    blocks: &mut Vec<BlockMeta>,
    zones: &mut ZoneMap,
) -> Result<u64> {
    let mut header = [0u8; HEADER_BYTES];
    let mut payload = Vec::new();
    file.seek(SeekFrom::Start(offset))?;
    while offset + (HEADER_BYTES as u64) <= actual_len {
        file.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != BLOCK_MAGIC {
            break;
        }
        let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let expected = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let count = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let body_start = offset + HEADER_BYTES as u64;
        if body_start + u64::from(payload_len) > actual_len {
            break; // torn tail block
        }
        payload.resize(payload_len as usize, 0);
        file.read_exact(&mut payload)?;
        if checksum(&payload) != expected {
            break; // corrupt tail block
        }
        let segments = decode_block(&payload, count, offset)?;
        let ranges: Vec<Option<ValueInterval>> = segments
            .iter()
            .map(|segment| value_bounds.and_then(|f| f(segment)))
            .collect();
        for (segment, range) in segments.iter().zip(&ranges) {
            zones.insert(segment, *range);
        }
        blocks.push(summarize_block(
            offset,
            payload_len,
            expected,
            &segments,
            &ranges,
            sketch_feed,
        ));
        offset = body_start + u64::from(payload_len);
    }
    Ok(offset)
}

impl SegmentStore for DiskStore {
    fn insert(&mut self, segment: SegmentRecord) -> Result<()> {
        let range = self.value_bounds.as_ref().and_then(|f| f(&segment));
        self.zones.insert(&segment, range);
        self.logical_bytes += segment.storage_bytes() as u64;
        self.n_segments += 1;
        self.write_buffer.push(segment);
        self.buffer_ranges.push(range);
        self.buffer_peak = self.buffer_peak.max(self.write_buffer.len());
        if self.write_buffer.len() >= self.bulk_write_size {
            self.write_block()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.write_block()?;
        self.writer.get_ref().sync_data()?;
        // The sidecar is rewritten once per flush, not per appended block;
        // blocks a crash strands between flushes are recovered by the
        // suffix scan on reopen.
        if self.sidecar_dirty {
            self.write_sidecar()?;
            self.sidecar_dirty = false;
        }
        Ok(())
    }

    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()> {
        self.scan_batches(predicate, &mut |chunk| {
            for segment in chunk {
                f(segment);
            }
        })
    }

    fn import_run(&mut self, run: Vec<SegmentRecord>) -> Result<()> {
        for segment in run {
            self.insert(segment)?;
        }
        // Cut the block at the run boundary (a no-op if `insert` already
        // cut one via `bulk_write_size`), so an imported log mirrors the
        // source's block structure instead of re-batching it.
        self.write_block()
    }

    fn scan_batches(
        &self,
        predicate: &SegmentPredicate,
        f: &mut dyn FnMut(&[SegmentRecord]),
    ) -> Result<()> {
        let sorted_gids: Option<Vec<Gid>> = predicate.gids.as_ref().map(|gids| {
            let mut sorted = gids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted
        });
        for meta in &self.blocks {
            if self.pruning && Self::block_pruned(meta, predicate, sorted_gids.as_deref()) {
                continue;
            }
            let block = self.fetch_block(meta)?;
            emit_matching_runs(&block, predicate, f);
        }
        // Buffered (not yet durable) segments scan last, in insert order.
        emit_matching_runs(&self.write_buffer, predicate, f);
        Ok(())
    }

    /// Answered from block *metadata* alone: no block body is fetched and
    /// the cache counters do not move — the whole point of carrying
    /// sketches in [`BlockMeta`]. The write buffer's (not yet summarized)
    /// segments are sketched on the fly through the same shared helper.
    fn merge_sketches(&self, scope: Option<&[Gid]>) -> Result<Option<BlockSketch>> {
        let Some(feed) = self.sketch_feed.as_ref() else {
            return Ok(None);
        };
        let sorted_scope: Option<Vec<Gid>> = scope.map(|gids| {
            let mut sorted = gids.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            sorted
        });
        let in_scope = |gid: Gid| {
            sorted_scope
                .as_deref()
                .is_none_or(|s| s.binary_search(&gid).is_ok())
        };
        let mut merged = BlockSketch::new();
        let mut merge_set = |sketches: &BlockSketches| {
            for (gid, sketch) in sketches {
                if in_scope(*gid) {
                    merged.merge(sketch);
                }
            }
        };
        for meta in &self.blocks {
            if let Some(gids) = sorted_scope.as_deref() {
                if meta.excludes_gids(gids) {
                    continue;
                }
            }
            match meta.sketches.as_ref() {
                Some(sketches) => merge_set(sketches),
                // A block without sketches (a segment failed to decode at
                // write time) makes the merged answer unsound: report the
                // store as sketch-less rather than answer wrong.
                None => return Ok(None),
            }
        }
        match sketch_block(&self.write_buffer, feed) {
            Some(sketches) => merge_set(&sketches),
            None => return Ok(None),
        }
        Ok(Some(merged))
    }

    fn zones(&self) -> Option<&ZoneMap> {
        Some(&self.zones)
    }

    fn len(&self) -> usize {
        self.n_segments
    }

    fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    fn persistent_bytes(&self) -> u64 {
        self.persistent_bytes
    }

    fn resident_segments(&self) -> usize {
        self.cache.stats().resident_segments + self.write_buffer.len()
    }

    fn resident_segment_peak(&self) -> usize {
        // Upper bound: the two peaks need not have coincided.
        self.cache.stats().peak_resident_segments + self.buffer_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_to_vec;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: i64, end: i64) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 1,
            params: Bytes::from(vec![gid as u8; 8]),
            gaps: GapsMask::EMPTY,
        }
    }

    fn temp_dir(tag: &str) -> mdb_testutil::TempDir {
        mdb_testutil::TempDir::new(&format!("disk-{tag}"))
    }

    #[test]
    fn write_flush_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        {
            let mut store = DiskStore::open(dir.path(), 10).unwrap();
            for i in 0..25 {
                store
                    .insert(seg(i % 3 + 1, i as i64 * 1000, i as i64 * 1000 + 900))
                    .unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.len(), 25);
        }
        let store = DiskStore::open(dir.path(), 10).unwrap();
        assert_eq!(store.len(), 25);
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2])).unwrap();
        assert!(got.iter().all(|s| s.gid == 2));
        assert!(!got.is_empty());
    }

    #[test]
    fn bulk_write_size_triggers_automatic_blocks() {
        let dir = temp_dir("bulk");
        let mut store = DiskStore::open(dir.path(), 5).unwrap();
        for i in 0..12 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        // Two full blocks are on disk; two segments still buffered.
        assert_eq!(store.block_count(), 2);
        assert!(store.persistent_bytes() > 0);
        let durable_before_flush = store.persistent_bytes();
        store.flush().unwrap();
        assert!(store.persistent_bytes() > durable_before_flush);
        assert_eq!(store.block_count(), 3);
    }

    #[test]
    fn unflushed_segments_are_still_queryable() {
        let dir = temp_dir("buffered");
        let mut store = DiskStore::open(dir.path(), 1000).unwrap();
        store.insert(seg(1, 0, 900)).unwrap();
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap().len(),
            1
        );
    }

    #[test]
    fn torn_tail_block_is_truncated_on_recovery() {
        let dir = temp_dir("torn");
        {
            let mut store = DiskStore::open(dir.path(), 5).unwrap();
            for i in 0..10 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Corrupt the file by appending garbage (simulated torn write).
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 40]);
        std::fs::write(&path, &bytes).unwrap();
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert_eq!(store.len(), 10, "valid blocks survive");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            intact as u64,
            "tail truncated"
        );
    }

    #[test]
    fn corrupt_payload_is_rejected_at_open_or_read() {
        let dir = temp_dir("corrupt");
        {
            let mut store = DiskStore::open(dir.path(), 5).unwrap();
            for i in 0..5 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        // With the sidecar present its last-block validation fails, so the
        // store falls back to a full rescan: the (single) corrupt block is
        // dropped.
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn interior_corruption_is_detected_lazily_by_the_fetch_checksum() {
        let dir = temp_dir("bitrot");
        {
            let mut store = DiskStore::open(dir.path(), 5).unwrap();
            for i in 0..10 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Flip a byte inside the FIRST block's payload: the sidecar's
        // last-block validation still passes, so the store opens with all
        // summaries — but fetching the rotten block must error, never
        // silently return bad segments.
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_BYTES + 4] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert_eq!(store.len(), 10, "summaries open fine");
        let err = scan_to_vec(&store, &SegmentPredicate::all()).unwrap_err();
        assert!(matches!(err, MdbError::Corrupt(_)), "{err}");
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let dir = temp_dir("append");
        {
            let mut store = DiskStore::open(dir.path(), 2).unwrap();
            for i in 0..4 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        {
            let mut store = DiskStore::open(dir.path(), 2).unwrap();
            assert_eq!(store.len(), 4);
            for i in 4..8 {
                store.insert(seg(2, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        let store = DiskStore::open(dir.path(), 2).unwrap();
        assert_eq!(store.len(), 8);
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2]))
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn empty_store_opens_cleanly() {
        let dir = temp_dir("empty");
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.persistent_bytes(), 0);
    }

    #[test]
    fn sidecar_reopen_matches_log_rescan_reopen() {
        let dir = temp_dir("sidecar-vs-scan");
        {
            let mut store = DiskStore::open(dir.path(), 7).unwrap();
            for i in 0..40 {
                store
                    .insert(seg(i % 4 + 1, i as i64 * 1000, i as i64 * 1000 + 900))
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let with_sidecar = DiskStore::open(dir.path(), 7).unwrap();
        let via_sidecar = scan_to_vec(&with_sidecar, &SegmentPredicate::all()).unwrap();
        let zones_via_sidecar = with_sidecar.zones().unwrap().clone();
        drop(with_sidecar);
        std::fs::remove_file(dir.join("segments.idx")).unwrap();
        let rebuilt = DiskStore::open(dir.path(), 7).unwrap();
        let via_scan = scan_to_vec(&rebuilt, &SegmentPredicate::all()).unwrap();
        assert_eq!(via_sidecar, via_scan);
        assert_eq!(&zones_via_sidecar, rebuilt.zones().unwrap());
        assert!(
            dir.join("segments.idx").exists(),
            "rescan rebuilds the sidecar"
        );
    }

    #[test]
    fn opening_with_bounds_rescans_a_boundless_sidecar() {
        let dir = temp_dir("bounds-upgrade");
        {
            // Written without a value-bounds provider: the sidecar carries
            // boundless value statistics.
            let mut store = DiskStore::open(dir.path(), 4).unwrap();
            for i in 0..8 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Reopening WITH bounds must not adopt those statistics — a rescan
        // recomputes them so value pruning works.
        let bounds: ValueBoundsFn =
            Arc::new(|s| Some(ValueInterval::new(s.start_time as f64, s.end_time as f64)));
        let store = DiskStore::open_with_bounds(dir.path(), 4, Some(bounds)).unwrap();
        let zone = store.zones().unwrap().gid(1).unwrap();
        assert!(
            matches!(zone.values, crate::zone::ZoneValues::Bounded(_)),
            "rescan must restore value statistics, got {:?}",
            zone.values
        );
        // And the rescan rewrote a bounds-aware sidecar: the next open
        // trusts it directly and sees the same statistics.
        let store = DiskStore::open_with_bounds(
            dir.path(),
            4,
            Some(Arc::new(|s: &SegmentRecord| {
                Some(ValueInterval::new(s.start_time as f64, s.end_time as f64))
            })),
        )
        .unwrap();
        let zone = store.zones().unwrap().gid(1).unwrap();
        assert!(matches!(zone.values, crate::zone::ZoneValues::Bounded(_)));
    }

    #[test]
    fn blocks_appended_after_a_stale_sidecar_are_recovered() {
        let dir = temp_dir("stale-forward");
        {
            let mut store = DiskStore::open(dir.path(), 4).unwrap();
            for i in 0..8 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Save the current (2-block) sidecar, append two more blocks, then
        // put the stale sidecar back: reopen must scan just the suffix.
        let stale = std::fs::read(dir.join("segments.idx")).unwrap();
        {
            let mut store = DiskStore::open(dir.path(), 4).unwrap();
            for i in 8..16 {
                store.insert(seg(2, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        std::fs::write(dir.join("segments.idx"), &stale).unwrap();
        let store = DiskStore::open(dir.path(), 4).unwrap();
        assert_eq!(store.len(), 16);
        assert_eq!(store.block_count(), 4);
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2]))
                .unwrap()
                .len(),
            8
        );
    }

    #[test]
    fn block_pruning_skips_fetches_under_a_time_range() {
        let dir = temp_dir("prune-io");
        let mut store = DiskStore::open(dir.path(), 8).unwrap();
        for i in 0..64 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        store.flush().unwrap();
        // A range inside the last block must fetch exactly one block.
        let got = scan_to_vec(
            &store,
            &SegmentPredicate::all().with_time_range(60_000, 60_500),
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        // Disabling pruning fetches every block (the baseline).
        store.set_pruning(false);
        let got = scan_to_vec(
            &store,
            &SegmentPredicate::all().with_time_range(60_000, 60_500),
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(store.cache_stats().misses + store.cache_stats().hits, 9);
    }

    #[test]
    fn export_import_round_trip_preserves_order_and_run_blocks() {
        let src_dir = temp_dir("export-src");
        let dst_dir = temp_dir("export-dst");
        let mut src = DiskStore::open(src_dir.path(), 4).unwrap();
        for i in 0..24i64 {
            // Runs of three: gids 1,1,1,2,2,2,... so exports see real runs.
            src.insert(seg((i / 3 % 2 + 1) as Gid, i * 1000, i * 1000 + 900))
                .unwrap();
        }
        src.flush().unwrap();
        let runs = src.export_runs(&[2]).unwrap();
        let exported: Vec<SegmentRecord> = runs.iter().flatten().cloned().collect();
        assert_eq!(
            exported,
            scan_to_vec(&src, &SegmentPredicate::for_gids(vec![2])).unwrap(),
            "export preserves scan order"
        );
        assert!(runs.len() > 1, "expected several runs, got {}", runs.len());

        // Import into a store whose own bulk size would merge everything
        // into one block: run boundaries must still be preserved.
        let mut dst = DiskStore::open(dst_dir.path(), 1000).unwrap();
        let n_runs = runs.len();
        for run in runs {
            dst.import_run(run).unwrap();
        }
        dst.flush().unwrap();
        assert_eq!(dst.block_count(), n_runs, "one block per imported run");
        assert_eq!(
            scan_to_vec(&dst, &SegmentPredicate::all()).unwrap(),
            exported
        );
        // A restart scans the identical log order.
        drop(dst);
        let dst = DiskStore::open(dst_dir.path(), 1000).unwrap();
        assert_eq!(
            scan_to_vec(&dst, &SegmentPredicate::all()).unwrap(),
            exported
        );
    }

    #[test]
    fn bounded_cache_keeps_resident_segments_near_capacity() {
        let dir = temp_dir("budget");
        let block_segments = 16usize;
        let per_segment = crate::cache::segment_resident_bytes(&seg(1, 0, 900));
        // Budget ≈ 2 blocks per shard × 8 shards.
        let budget = (per_segment * block_segments * 16) as u64;
        let mut store = DiskStore::open_with(
            dir.path(),
            DiskStoreOptions {
                bulk_write_size: block_segments,
                memory_budget_bytes: Some(budget),
                ..DiskStoreOptions::default()
            },
        )
        .unwrap();
        let total = 64 * block_segments;
        for i in 0..total as i64 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap().len(),
            total
        );
        let peak = store.resident_segment_peak();
        assert!(
            peak < total / 2,
            "peak {peak} should stay well below {total}"
        );
    }
}

//! The persistent segment store: an append-only block log with per-block
//! statistics for predicate push-down.
//!
//! Layout of `segments.log`:
//!
//! ```text
//! repeat:
//!   [u32 magic] [u32 payload_len] [u32 checksum]
//!   [u32 count] [u32 min_gid] [u32 max_gid] [i64 min_end] [i64 max_end]
//!   payload: count × segment records (codec::write_segment)
//! ```
//!
//! Writes are buffered until `bulk_write_size` segments accumulate (Table 1:
//! Bulk Write Size 50,000) or `flush` is called; each flush appends one
//! block. On open the log is scanned to rebuild the in-memory index; a torn
//! tail block (crash during write) fails its checksum and the log is
//! truncated to the last valid block, mirroring a write-ahead-log recovery.
//! Block statistics let scans skip blocks whose gid or end-time ranges
//! cannot match — the push-down of Section 3.3/6.2 — but since the whole
//! index is resident the skip logic lives in the scan path over in-memory
//! block summaries.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use mdb_types::{MdbError, Result, SegmentRecord};

use crate::codec::{checksum, read_segment, write_segment};
use crate::memory::MemoryStore;
use crate::zone::{ValueBoundsFn, ZoneMap};
use crate::{SegmentPredicate, SegmentStore};

const BLOCK_MAGIC: u32 = 0x4D44_4253; // "MDBS"
const HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8;

/// A persistent segment store.
pub struct DiskStore {
    path: PathBuf,
    file: BufWriter<File>,
    /// Resident index over everything durable plus the write buffer.
    index: MemoryStore,
    write_buffer: Vec<SegmentRecord>,
    bulk_write_size: usize,
    persistent_bytes: u64,
}

impl DiskStore {
    /// Opens (or creates) the store in `dir`, recovering from any torn tail
    /// block. `bulk_write_size` is the number of segments buffered before an
    /// automatic flush.
    pub fn open(dir: &Path, bulk_write_size: usize) -> Result<Self> {
        Self::open_with_bounds(dir, bulk_write_size, None)
    }

    /// Like [`DiskStore::open`], but the resident index's zone map also
    /// records stored-value ranges computed by `value_bounds` — both for
    /// recovered segments and for subsequent inserts.
    pub fn open_with_bounds(
        dir: &Path,
        bulk_write_size: usize,
        value_bounds: Option<ValueBoundsFn>,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("segments.log");
        let mut index = match value_bounds {
            Some(f) => MemoryStore::with_value_bounds(f),
            None => MemoryStore::new(),
        };
        let valid_len = recover(&path, &mut index)?;
        // Not truncated: recovery decided how much of the log survives.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(valid_len)?;
        let mut file = BufWriter::new(file);
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            path,
            file,
            index,
            write_buffer: Vec::new(),
            bulk_write_size: bulk_write_size.max(1),
            persistent_bytes: valid_len,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Enables or disables zone-map pruning on the resident index (see
    /// [`MemoryStore::set_pruning`]).
    pub fn set_pruning(&mut self, pruning: bool) {
        self.index.set_pruning(pruning);
    }

    fn write_block(&mut self) -> Result<()> {
        if self.write_buffer.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::new();
        let mut min_gid = u32::MAX;
        let mut max_gid = 0u32;
        let mut min_end = i64::MAX;
        let mut max_end = i64::MIN;
        for segment in &self.write_buffer {
            min_gid = min_gid.min(segment.gid);
            max_gid = max_gid.max(segment.gid);
            min_end = min_end.min(segment.end_time);
            max_end = max_end.max(segment.end_time);
            write_segment(&mut payload, segment);
        }
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        header.extend_from_slice(&checksum(&payload).to_le_bytes());
        header.extend_from_slice(&(self.write_buffer.len() as u32).to_le_bytes());
        header.extend_from_slice(&min_gid.to_le_bytes());
        header.extend_from_slice(&max_gid.to_le_bytes());
        header.extend_from_slice(&min_end.to_le_bytes());
        header.extend_from_slice(&max_end.to_le_bytes());
        self.file.write_all(&header)?;
        self.file.write_all(&payload)?;
        self.file.flush()?;
        self.persistent_bytes += (header.len() + payload.len()) as u64;
        self.write_buffer.clear();
        Ok(())
    }
}

/// Scans the log, filling `index`, and returns the byte offset of the end of
/// the last valid block.
fn recover(path: &Path, index: &mut MemoryStore) -> Result<u64> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut offset = 0usize;
    while offset + HEADER_BYTES <= bytes.len() {
        let magic = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        if magic != BLOCK_MAGIC {
            break;
        }
        let payload_len =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap()) as usize;
        let expected = u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().unwrap());
        let count =
            u32::from_le_bytes(bytes[offset + 12..offset + 16].try_into().unwrap()) as usize;
        let body_start = offset + HEADER_BYTES;
        if body_start + payload_len > bytes.len() {
            break; // torn tail block
        }
        let payload = &bytes[body_start..body_start + payload_len];
        if checksum(payload) != expected {
            break; // corrupt tail block
        }
        let mut slice = payload;
        let mut ok = true;
        let mut block_segments = Vec::with_capacity(count);
        for _ in 0..count {
            match read_segment(&mut slice) {
                Some(s) => block_segments.push(s),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || !slice.is_empty() {
            return Err(MdbError::Corrupt(format!(
                "block at offset {offset} passed its checksum but failed to decode"
            )));
        }
        for s in block_segments {
            index.insert(s)?;
        }
        offset = body_start + payload_len;
    }
    Ok(offset as u64)
}

impl SegmentStore for DiskStore {
    fn insert(&mut self, segment: SegmentRecord) -> Result<()> {
        self.index.insert(segment.clone())?;
        self.write_buffer.push(segment);
        if self.write_buffer.len() >= self.bulk_write_size {
            self.write_block()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.write_block()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()> {
        self.index.scan(predicate, f)
    }

    fn zones(&self) -> Option<&ZoneMap> {
        self.index.zones()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.index.logical_bytes()
    }

    fn persistent_bytes(&self) -> u64 {
        self.persistent_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_to_vec;
    use bytes::Bytes;
    use mdb_types::{GapsMask, Gid};

    fn seg(gid: Gid, start: i64, end: i64) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 1,
            params: Bytes::from(vec![gid as u8; 8]),
            gaps: GapsMask::EMPTY,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdb-disk-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn write_flush_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        {
            let mut store = DiskStore::open(&dir, 10).unwrap();
            for i in 0..25 {
                store
                    .insert(seg(i % 3 + 1, i as i64 * 1000, i as i64 * 1000 + 900))
                    .unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.len(), 25);
        }
        let store = DiskStore::open(&dir, 10).unwrap();
        assert_eq!(store.len(), 25);
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2])).unwrap();
        assert!(got.iter().all(|s| s.gid == 2));
        assert!(!got.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bulk_write_size_triggers_automatic_blocks() {
        let dir = temp_dir("bulk");
        let mut store = DiskStore::open(&dir, 5).unwrap();
        for i in 0..12 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        // Two full blocks are on disk; two segments still buffered.
        assert!(store.persistent_bytes() > 0);
        let durable_before_flush = store.persistent_bytes();
        store.flush().unwrap();
        assert!(store.persistent_bytes() > durable_before_flush);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unflushed_segments_are_still_queryable() {
        let dir = temp_dir("buffered");
        let mut store = DiskStore::open(&dir, 1000).unwrap();
        store.insert(seg(1, 0, 900)).unwrap();
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap().len(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_block_is_truncated_on_recovery() {
        let dir = temp_dir("torn");
        {
            let mut store = DiskStore::open(&dir, 5).unwrap();
            for i in 0..10 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Corrupt the file by appending garbage (simulated torn write).
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 40]);
        std::fs::write(&path, &bytes).unwrap();
        let store = DiskStore::open(&dir, 5).unwrap();
        assert_eq!(store.len(), 10, "valid blocks survive");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            intact as u64,
            "tail truncated"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_payload_is_detected_by_checksum() {
        let dir = temp_dir("corrupt");
        {
            let mut store = DiskStore::open(&dir, 5).unwrap();
            for i in 0..5 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        // The (single) block is corrupt → recovered store is empty.
        let store = DiskStore::open(&dir, 5).unwrap();
        assert_eq!(store.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let dir = temp_dir("append");
        {
            let mut store = DiskStore::open(&dir, 2).unwrap();
            for i in 0..4 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        {
            let mut store = DiskStore::open(&dir, 2).unwrap();
            assert_eq!(store.len(), 4);
            for i in 4..8 {
                store.insert(seg(2, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        let store = DiskStore::open(&dir, 2).unwrap();
        assert_eq!(store.len(), 8);
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2]))
                .unwrap()
                .len(),
            4
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_opens_cleanly() {
        let dir = temp_dir("empty");
        let store = DiskStore::open(&dir, 5).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.persistent_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The persistent segment store: an out-of-core append-only block log with a
//! persistent sidecar index, a memory-budgeted block cache, and a read-ahead
//! prefetcher.
//!
//! Layout of `segments.log` (the framing is unchanged since the first disk
//! store, so old logs recover):
//!
//! ```text
//! repeat:
//!   [u32 magic] [u32 payload_len] [u32 checksum]
//!   [u32 count] [u32 min_gid] [u32 max_gid] [i64 min_end] [i64 max_end]
//!   payload: per the magic —
//!     "MDBS": count × varint segment records (codec::write_segment, v1)
//!     "MDB2": self-describing columnar layout (mdb_types::view, v2)
//! ```
//!
//! The log is heterogeneous: the magic selects the payload format per
//! block, so a store reopened over v1 blocks keeps serving them through the
//! owned-decode path while appending new blocks in the configured
//! `write_format` (v2 by default) — v1 logs migrate lazily, block by block,
//! as the log grows. A fetched v2 block is validated **once** into a
//! [`BlockView`] and scanned through borrowed views: the scan path
//! materializes no owned records and performs no per-segment allocation.
//!
//! Writes are buffered until `bulk_write_size` segments accumulate (Table 1:
//! Bulk Write Size 50,000) or `flush` is called; each flush appends one
//! block and rewrites the sidecar index (`segments.idx`, see
//! [`crate::sidecar`]) holding per-block [`BlockMeta`] statistics plus the
//! zone map.
//!
//! Unlike the original store, segment bodies are **not** resident: `open`
//! loads the block summaries from the sidecar (falling back to a streaming
//! block-by-block rebuild with a bounded buffer when the sidecar is missing
//! or stale), so restart cost is O(blocks) instead of O(log), and scans pull
//! blocks through a sharded LRU [`BlockCache`] bounded by the engine's
//! memory budget, so resident memory is O(cache capacity + write buffer)
//! instead of O(total segments). Zone-map and per-block statistics skip
//! blocks *before* they are fetched from disk — the push-down of
//! Section 3.3/6.2 now saves I/O, not just decoding.
//!
//! A torn tail block (crash during write) fails its checksum and the log is
//! truncated to the last valid block, mirroring a write-ahead-log recovery;
//! the sidecar is trusted only if the last block it describes passes its
//! checksum, and blocks appended after the sidecar was last written (crash
//! between block append and sidecar rename) are picked up by scanning just
//! the log suffix.
//!
//! The log is append-only: unlike [`MemoryStore`](crate::memory::MemoryStore)
//! it does not overwrite duplicate `(gid, end_time, gaps)` keys — the
//! compression pipeline never produces duplicates — and scans stream in
//! *log* (insertion) order rather than key order; every scan over the same
//! store state yields the same deterministic order, which is what the
//! bit-identical query guarantees require.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mdb_types::{
    encode_block_v2, BlockFormat, BlockMeta, BlockSketch, BlockSketches, BlockView, Gid, MdbError,
    Result, SegmentRecord, Tid, TimeLevel, Timestamp, ValueInterval,
};

use crate::cache::{BlockCache, CacheStats, CachedBlock};
use crate::codec::{checksum, checksum_v2, read_segment, write_segment};
use crate::rollup::{RollupAcc, RollupCells, RollupFeed};
use crate::sidecar::{self, Sidecar};
use crate::zone::{SketchFeedFn, ValueBoundsFn, ZoneMap};
use crate::{SegmentPredicate, SegmentRun, SegmentStore};

const BLOCK_MAGIC: u32 = 0x4D44_4253; // "MDBS" — v1 varint payload
const BLOCK_MAGIC_V2: u32 = 0x4D44_4232; // "MDB2" — v2 columnar payload
const HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8;

fn magic_of(format: BlockFormat) -> u32 {
    match format {
        BlockFormat::V1 => BLOCK_MAGIC,
        BlockFormat::V2 => BLOCK_MAGIC_V2,
    }
}

fn format_of(magic: u32) -> Option<BlockFormat> {
    match magic {
        BLOCK_MAGIC => Some(BlockFormat::V1),
        BLOCK_MAGIC_V2 => Some(BlockFormat::V2),
        _ => None,
    }
}

/// How a [`DiskStore`] is opened.
#[derive(Clone, Default)]
pub struct DiskStoreOptions {
    /// Segments buffered before a block is appended (Table 1's Bulk Write
    /// Size); `0` is treated as `1`. The default of 0 therefore flushes a
    /// block per segment — callers normally pass their configured size.
    pub bulk_write_size: usize,
    /// Byte budget for the block cache: `None` keeps every fetched block
    /// resident (the pre-out-of-core behaviour), `Some(0)` caches nothing.
    pub memory_budget_bytes: Option<u64>,
    /// Stored-value range provider for the zone map and block statistics
    /// (typically `mdb_models::segment_value_range` closed over the
    /// registry); without it only time statistics prune.
    pub value_bounds: Option<ValueBoundsFn>,
    /// Sketch provider for per-block mergeable sketches (typically
    /// `mdb_query::sketch_feed`); without it sketch queries are
    /// unanswerable from this store.
    pub sketch_feed: Option<SketchFeedFn>,
    /// Continuous-aggregate feed (typically `mdb_query::rollup_feed`):
    /// materialized rollup cells are maintained on insert, persisted in the
    /// sidecar, and rebuilt by the streaming rescan. Without it rollup
    /// queries fall back to the scan path.
    pub rollup_feed: Option<RollupFeed>,
    /// How many zone-map-surviving blocks the background prefetcher reads
    /// ahead of the scan (0 disables prefetching and spawns no thread).
    /// Engines pass `Config::prefetch_depth` (default 2).
    pub prefetch_depth: usize,
    /// Payload format for newly appended blocks. Existing blocks keep
    /// their on-disk format and are dispatched on per fetch.
    pub write_format: BlockFormat,
}

impl std::fmt::Debug for DiskStoreOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStoreOptions")
            .field("bulk_write_size", &self.bulk_write_size)
            .field("memory_budget_bytes", &self.memory_budget_bytes)
            .field("value_bounds", &self.value_bounds.is_some())
            .field("sketch_feed", &self.sketch_feed.is_some())
            .field("rollup_feed", &self.rollup_feed.is_some())
            .field("prefetch_depth", &self.prefetch_depth)
            .field("write_format", &self.write_format)
            .finish()
    }
}

/// The offsets the prefetcher has accepted but not yet finished: the scan
/// waits on this before demand-fetching a block it already issued, so a
/// block is read from disk exactly once per cold scan — never by both the
/// worker and the demand path racing each other.
struct PrefetchState {
    pending: Mutex<std::collections::HashSet<u64>>,
    done: Condvar,
}

impl PrefetchState {
    fn begin_span(&self, span: &[BlockMeta]) {
        let mut pending = self.pending.lock().expect("prefetch state poisoned");
        for meta in span {
            pending.insert(meta.offset);
        }
    }

    /// Completes a whole span under one lock with one wake-up — the
    /// per-block variant would wake the waiting scan once per block, which
    /// on a loaded machine degenerates into a context switch per block.
    fn complete_span(&self, span: &[BlockMeta]) {
        let mut pending = self.pending.lock().expect("prefetch state poisoned");
        for meta in span {
            pending.remove(&meta.offset);
        }
        drop(pending);
        self.done.notify_all();
    }

    fn wait_for(&self, offset: u64) {
        let mut pending = self.pending.lock().expect("prefetch state poisoned");
        while pending.contains(&offset) {
            pending = self.done.wait(pending).expect("prefetch state poisoned");
        }
    }
}

/// The background read-ahead worker: a bounded queue of *spans* — runs of
/// file-contiguous block summaries the scan wants next — drained by one
/// thread with its own file handle that reads each span in a single
/// contiguous read, then verifies and stages its blocks in the shared
/// cache. Coalescing matters: a cold sequential scan issues one syscall per
/// span instead of one per block. The queue is fed with `try_send` — when
/// it is full the scan simply stops issuing, so prefetching never blocks
/// the scan on anything but a block it would read next anyway. Errors are
/// swallowed here: the demand fetch re-reads and re-surfaces them.
struct Prefetcher {
    tx: Option<SyncSender<Vec<BlockMeta>>>,
    handle: Option<JoinHandle<()>>,
    state: Arc<PrefetchState>,
    depth: usize,
}

impl Prefetcher {
    fn spawn(path: &Path, cache: Arc<BlockCache>, depth: usize) -> Result<Self> {
        let file = File::open(path)?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<BlockMeta>>(depth);
        let state = Arc::new(PrefetchState {
            pending: Mutex::new(std::collections::HashSet::new()),
            done: Condvar::new(),
        });
        let worker_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("mdb-prefetch".into())
            .spawn(move || prefetch_loop(rx, file, cache, worker_state))?;
        Ok(Self {
            tx: Some(tx),
            handle: Some(handle),
            state,
            depth,
        })
    }

    /// Queues one file-contiguous span of blocks for read-ahead; false when
    /// the queue is full (the caller stops issuing for this round).
    fn issue(&self, span: Vec<BlockMeta>) -> bool {
        let Some(tx) = self.tx.as_ref() else {
            return false;
        };
        self.state.begin_span(&span);
        match tx.try_send(span) {
            Ok(()) => true,
            Err(TrySendError::Full(span) | TrySendError::Disconnected(span)) => {
                self.state.complete_span(&span);
                false
            }
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect: the worker drains and exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn prefetch_loop(
    rx: Receiver<Vec<BlockMeta>>,
    mut file: File,
    cache: Arc<BlockCache>,
    state: Arc<PrefetchState>,
) {
    let mut buffer = Vec::new();
    while let Ok(span) = rx.recv() {
        // One contiguous read covers the whole span, headers included (the
        // issuer guarantees adjacency in the file).
        let start = span[0].offset;
        let total: u64 = span.iter().map(|meta| meta.stored_bytes).sum();
        buffer.clear();
        let read_ok = file.seek(SeekFrom::Start(start)).is_ok()
            && (&mut file)
                .take(total)
                .read_to_end(&mut buffer)
                .is_ok_and(|n| n as u64 == total);
        let mut at = 0usize;
        for meta in &span {
            let stored = meta.stored_bytes as usize;
            // On any failure just leave the block unstaged: the demand
            // fetch re-reads and reports the error properly.
            if read_ok && !cache.contains(meta.offset) {
                let payload = &buffer[at + HEADER_BYTES..at + stored];
                if payload_checksum(meta.format, payload) == meta.checksum {
                    if let Ok(block) = decode_cached(payload.to_vec(), meta) {
                        cache.insert_prefetched(meta.offset, block, stored);
                    }
                }
            }
            at += stored;
        }
        state.complete_span(&span);
    }
}

/// A persistent, out-of-core segment store (see the module docs).
pub struct DiskStore {
    path: PathBuf,
    sidecar_path: PathBuf,
    writer: BufWriter<File>,
    /// Independent read handle for block fetches during `&self` scans.
    reader: Mutex<File>,
    /// Per-block summaries — the only per-segment-body state kept resident.
    blocks: Vec<BlockMeta>,
    zones: ZoneMap,
    /// Shared with the prefetcher thread (when one is running).
    cache: Arc<BlockCache>,
    /// The background read-ahead worker; `None` when `prefetch_depth` is 0
    /// or the cache is budgeted to hold nothing.
    prefetch: Option<Prefetcher>,
    /// Payload format for newly appended blocks.
    write_format: BlockFormat,
    write_buffer: Vec<SegmentRecord>,
    /// Stored-value range per buffered segment (parallel to `write_buffer`),
    /// computed once at insert for both the zone map and the block summary.
    buffer_ranges: Vec<Option<ValueInterval>>,
    /// High-water mark of the write buffer, for resident-memory accounting.
    buffer_peak: usize,
    bulk_write_size: usize,
    persistent_bytes: u64,
    logical_bytes: u64,
    n_segments: usize,
    /// Blocks appended since the sidecar was last rewritten. The sidecar is
    /// rewritten on [`SegmentStore::flush`] (the durability point), not per
    /// block — sustained ingestion stays O(blocks), and a crash between a
    /// block append and the next flush is covered by the suffix scan.
    sidecar_dirty: bool,
    value_bounds: Option<ValueBoundsFn>,
    sketch_feed: Option<SketchFeedFn>,
    /// Continuous-aggregate feed; `None` disables rollup maintenance.
    rollup_feed: Option<RollupFeed>,
    /// The materialized cell map, present exactly when a feed is configured.
    /// Fed on every insert, so cells always cover the write buffer too —
    /// the same coverage a scan has.
    rollups: Option<RollupCells>,
    pruning: bool,
}

impl DiskStore {
    /// Opens (or creates) the store in `dir`, recovering from any torn tail
    /// block. `bulk_write_size` is the number of segments buffered before an
    /// automatic flush; the block cache is unbounded.
    pub fn open(dir: &Path, bulk_write_size: usize) -> Result<Self> {
        Self::open_with(
            dir,
            DiskStoreOptions {
                bulk_write_size,
                ..DiskStoreOptions::default()
            },
        )
    }

    /// Like [`DiskStore::open`], but the zone map and block statistics also
    /// record stored-value ranges computed by `value_bounds` — both for
    /// recovered segments and for subsequent inserts.
    pub fn open_with_bounds(
        dir: &Path,
        bulk_write_size: usize,
        value_bounds: Option<ValueBoundsFn>,
    ) -> Result<Self> {
        Self::open_with(
            dir,
            DiskStoreOptions {
                bulk_write_size,
                value_bounds,
                ..DiskStoreOptions::default()
            },
        )
    }

    /// Opens (or creates) the store in `dir` with the full option surface.
    ///
    /// Recovery prefers the sidecar index: when it is present, validated,
    /// and describes a prefix of the log, only the log *suffix* (if any) is
    /// scanned; otherwise the whole log is rebuilt streaming one block at a
    /// time with a bounded buffer. Either way the log is truncated to the
    /// end of its last valid block and a fresh sidecar is written.
    pub fn open_with(dir: &Path, options: DiskStoreOptions) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("segments.log");
        let sidecar_path = dir.join("segments.idx");
        let recovered = recover(
            &path,
            &sidecar_path,
            options.value_bounds.as_ref(),
            options.sketch_feed.as_ref(),
            options.rollup_feed.as_ref(),
        )?;
        // Not truncated on open: recovery decided how much of the log
        // survives.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(recovered.valid_len)?;
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::End(0))?;
        let reader = Mutex::new(File::open(&path)?);
        let cache = Arc::new(BlockCache::new(options.memory_budget_bytes));
        // No prefetcher when disabled or when nothing can be staged anyway.
        let prefetch = if options.prefetch_depth > 0 && !cache.caches_nothing() {
            Some(Prefetcher::spawn(
                &path,
                Arc::clone(&cache),
                options.prefetch_depth,
            )?)
        } else {
            None
        };
        let store = Self {
            path,
            sidecar_path,
            writer,
            reader,
            n_segments: recovered.blocks.iter().map(|b| b.count as usize).sum(),
            logical_bytes: recovered.blocks.iter().map(|b| b.logical_bytes).sum(),
            persistent_bytes: recovered.valid_len,
            blocks: recovered.blocks,
            zones: recovered.zones,
            cache,
            prefetch,
            write_format: options.write_format,
            write_buffer: Vec::new(),
            buffer_ranges: Vec::new(),
            buffer_peak: 0,
            sidecar_dirty: false,
            bulk_write_size: options.bulk_write_size.max(1),
            value_bounds: options.value_bounds,
            sketch_feed: options.sketch_feed,
            rollup_feed: options.rollup_feed,
            rollups: recovered.rollups,
            pruning: true,
        };
        if !recovered.sidecar_fresh && !store.blocks.is_empty() {
            store.write_sidecar()?;
        }
        Ok(store)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sidecar index path.
    pub fn sidecar_path(&self) -> &Path {
        &self.sidecar_path
    }

    /// Number of blocks on disk.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Payload format newly appended blocks are written in. Blocks already
    /// on disk keep whatever format they were written with.
    pub fn write_format(&self) -> BlockFormat {
        self.write_format
    }

    /// Enables or disables zone-map/block-statistics pruning in scans (the
    /// statistics are still maintained). Disabling yields the plain
    /// fetch-every-block scan — the benchmark baseline.
    pub fn set_pruning(&mut self, pruning: bool) {
        self.pruning = pruning;
    }

    /// True when the per-block statistics prove no segment of `meta` can
    /// match `predicate` (with `sorted_gids` the sorted, deduplicated gid
    /// restriction, if any).
    fn block_pruned(
        meta: &BlockMeta,
        predicate: &SegmentPredicate,
        sorted_gids: Option<&[Gid]>,
    ) -> bool {
        if let Some(gids) = sorted_gids {
            if meta.excludes_gids(gids) {
                return true;
            }
        }
        if let Some(from) = predicate.from {
            if meta.ends_before(from) {
                return true;
            }
        }
        if let Some(to) = predicate.to {
            if meta.starts_after(to) {
                return true;
            }
        }
        if let Some(values) = &predicate.values {
            if meta.excludes_values(values) {
                return true;
            }
        }
        false
    }

    /// Fetches one block through the cache, reading (and for v2 validating,
    /// for v1 decoding) it on a miss. The payload checksum is verified on
    /// every read from disk, so silent corruption surfaces as
    /// [`MdbError::Corrupt`] instead of bad query results.
    fn fetch_block(&self, meta: &BlockMeta) -> Result<Arc<CachedBlock>> {
        self.cache.get_or_load(meta.offset, || {
            let mut payload = vec![0u8; meta.payload_len as usize];
            {
                let mut reader = self.reader.lock().expect("reader poisoned");
                reader.seek(SeekFrom::Start(meta.offset + HEADER_BYTES as u64))?;
                reader.read_exact(&mut payload)?;
            }
            if payload_checksum(meta.format, &payload) != meta.checksum {
                return Err(MdbError::Corrupt(format!(
                    "block at offset {} failed its checksum on read",
                    meta.offset
                )));
            }
            Ok((decode_cached(payload, meta)?, meta.stored_bytes as usize))
        })
    }

    fn write_block(&mut self) -> Result<()> {
        if self.write_buffer.is_empty() {
            return Ok(());
        }
        let payload = match self.write_format {
            BlockFormat::V1 => {
                let mut payload = Vec::new();
                for segment in &self.write_buffer {
                    write_segment(&mut payload, segment);
                }
                payload
            }
            BlockFormat::V2 => encode_block_v2(&self.write_buffer),
        };
        let meta = summarize_block(
            self.persistent_bytes,
            payload.len() as u32,
            payload_checksum(self.write_format, &payload),
            self.write_format,
            &self.write_buffer,
            &self.buffer_ranges,
            self.sketch_feed.as_ref(),
        );
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&magic_of(self.write_format).to_le_bytes());
        header.extend_from_slice(&meta.payload_len.to_le_bytes());
        header.extend_from_slice(&meta.checksum.to_le_bytes());
        header.extend_from_slice(&meta.count.to_le_bytes());
        header.extend_from_slice(&meta.min_gid.to_le_bytes());
        header.extend_from_slice(&meta.max_gid.to_le_bytes());
        header.extend_from_slice(&meta.min_end.to_le_bytes());
        header.extend_from_slice(&meta.max_end.to_le_bytes());
        self.writer.write_all(&header)?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.persistent_bytes += meta.stored_bytes;
        self.blocks.push(meta);
        self.write_buffer.clear();
        self.buffer_ranges.clear();
        self.sidecar_dirty = true;
        Ok(())
    }

    fn write_sidecar(&self) -> Result<()> {
        sidecar::write(
            &self.sidecar_path,
            &Sidecar {
                log_len: self.persistent_bytes,
                value_bounded: self.value_bounds.is_some(),
                sketched: self.sketch_feed.is_some(),
                blocks: self.blocks.clone(),
                zones: self.zones.clone(),
                rollups: self.rollups.clone(),
            },
        )
    }
}

/// Emits maximal contiguous runs of `segments` matching `predicate` to `f`
/// (zero-copy: runs borrow the block or buffer they live in).
fn emit_matching_runs(
    segments: &[SegmentRecord],
    predicate: &SegmentPredicate,
    f: &mut dyn FnMut(&[SegmentRecord]),
) {
    if predicate.matches_every_segment() {
        if !segments.is_empty() {
            f(segments);
        }
        return;
    }
    let mut run_start = None;
    for (i, segment) in segments.iter().enumerate() {
        if predicate.matches(segment) {
            run_start.get_or_insert(i);
        } else if let Some(start) = run_start.take() {
            f(&segments[start..i]);
        }
    }
    if let Some(start) = run_start {
        f(&segments[start..]);
    }
}

/// Emits maximal contiguous index ranges `[lo, hi)` of `block`'s segments
/// matching `predicate` — evaluated over borrowed views, so no segment is
/// materialized to decide membership.
fn emit_view_runs(
    block: &CachedBlock,
    predicate: &SegmentPredicate,
    f: &mut dyn FnMut(usize, usize),
) {
    if predicate.matches_every_segment() {
        if !block.is_empty() {
            f(0, block.len());
        }
        return;
    }
    let mut run_start = None;
    for i in 0..block.len() {
        if predicate.matches_view(&block.segment(i)) {
            run_start.get_or_insert(i);
        } else if let Some(start) = run_start.take() {
            f(start, i);
        }
    }
    if let Some(start) = run_start {
        f(start, block.len());
    }
}

/// Builds one block's summary from its segments and their (possibly
/// unknown) stored-value ranges — the single source of truth for both the
/// write path and the streaming rescan, so sidecar-persisted and
/// rescan-rebuilt metadata cannot diverge.
fn summarize_block(
    offset: u64,
    payload_len: u32,
    payload_checksum: u32,
    format: BlockFormat,
    segments: &[SegmentRecord],
    ranges: &[Option<ValueInterval>],
    sketch_feed: Option<&SketchFeedFn>,
) -> BlockMeta {
    debug_assert_eq!(segments.len(), ranges.len());
    let mut meta = BlockMeta {
        offset,
        stored_bytes: HEADER_BYTES as u64 + u64::from(payload_len),
        payload_len,
        format,
        checksum: payload_checksum,
        count: segments.len() as u32,
        logical_bytes: 0,
        min_gid: u32::MAX,
        max_gid: 0,
        min_start: i64::MAX,
        min_end: i64::MAX,
        max_end: i64::MIN,
        values: Some(ValueInterval::EMPTY),
        sketches: sketch_feed.and_then(|feed| sketch_block(segments, feed)),
    };
    for (segment, range) in segments.iter().zip(ranges) {
        meta.min_gid = meta.min_gid.min(segment.gid);
        meta.max_gid = meta.max_gid.max(segment.gid);
        meta.min_start = meta.min_start.min(segment.start_time);
        meta.min_end = meta.min_end.min(segment.end_time);
        meta.max_end = meta.max_end.max(segment.end_time);
        meta.logical_bytes += segment.storage_bytes() as u64;
        meta.values = match (meta.values, range) {
            (Some(acc), Some(r)) => Some(acc.union(r)),
            _ => None, // one unknown range makes the block unknown
        };
    }
    meta
}

/// Runs the sketch feed over a batch of segments, grouped by gid (cluster
/// primary-gid scoping needs per-group granularity). Shared by the write
/// path, the streaming rescan, and the write-buffer contribution at query
/// time, so persisted and recomputed sketches cannot diverge. `None` when
/// any segment fails to decode — the block's sketches fail open.
fn sketch_block(segments: &[SegmentRecord], feed: &SketchFeedFn) -> Option<Arc<BlockSketches>> {
    let mut per_gid: std::collections::BTreeMap<Gid, BlockSketch> =
        std::collections::BTreeMap::new();
    for segment in segments {
        let sketch = per_gid.entry(segment.gid).or_default();
        if !feed(segment, sketch) {
            return None;
        }
    }
    Some(Arc::new(per_gid.into_iter().collect()))
}

/// The payload checksum of a block format: v1 keeps the byte-wise FNV the
/// format shipped with; v2 payloads use the word-folded variant.
fn payload_checksum(format: BlockFormat, payload: &[u8]) -> u32 {
    match format {
        BlockFormat::V1 => checksum(payload),
        BlockFormat::V2 => checksum_v2(payload),
    }
}

/// Turns one checksum-verified payload into the cache's representation:
/// v2 payloads are validated once into a zero-copy [`BlockView`], v1
/// payloads are decoded into owned records.
fn decode_cached(payload: Vec<u8>, meta: &BlockMeta) -> Result<CachedBlock> {
    match meta.format {
        BlockFormat::V2 => BlockView::parse(payload, meta.count)
            .map(CachedBlock::View)
            .ok_or_else(|| {
                MdbError::Corrupt(format!(
                    "v2 block at offset {} passed its checksum but failed layout validation",
                    meta.offset
                ))
            }),
        BlockFormat::V1 => {
            decode_block(&payload, meta.count as usize, meta.offset).map(CachedBlock::Owned)
        }
    }
}

/// Decodes one v1 block payload into segment records.
fn decode_block(payload: &[u8], count: usize, offset: u64) -> Result<Vec<SegmentRecord>> {
    let mut slice = payload;
    let mut segments = Vec::with_capacity(count);
    for _ in 0..count {
        match read_segment(&mut slice) {
            Some(s) => segments.push(s),
            None => {
                return Err(MdbError::Corrupt(format!(
                    "block at offset {offset} passed its checksum but failed to decode"
                )))
            }
        }
    }
    if !slice.is_empty() {
        return Err(MdbError::Corrupt(format!(
            "block at offset {offset} passed its checksum but failed to decode"
        )));
    }
    Ok(segments)
}

/// What `open` recovered without keeping any segment bodies resident.
struct Recovered {
    blocks: Vec<BlockMeta>,
    zones: ZoneMap,
    /// Rollup cells adopted from the sidecar and/or rebuilt by the scan;
    /// present exactly when a rollup feed was configured.
    rollups: Option<RollupCells>,
    valid_len: u64,
    /// True when the on-disk sidecar already describes exactly this state.
    sidecar_fresh: bool,
}

/// Recovers the store's metadata: from the sidecar when it is valid for a
/// prefix of the log (then only the suffix is scanned), from a full
/// streaming scan otherwise.
fn recover(
    path: &Path,
    sidecar_path: &Path,
    value_bounds: Option<&ValueBoundsFn>,
    sketch_feed: Option<&SketchFeedFn>,
    rollup_feed: Option<&RollupFeed>,
) -> Result<Recovered> {
    let mut rollups = rollup_feed.map(|feed| RollupCells::new(feed.levels.clone()));
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Recovered {
                blocks: Vec::new(),
                zones: ZoneMap::new(),
                rollups,
                valid_len: 0,
                sidecar_fresh: false,
            });
        }
        Err(e) => return Err(e.into()),
    };
    let actual_len = file.metadata()?.len();

    let mut blocks = Vec::new();
    let mut zones = ZoneMap::new();
    let mut scan_from = 0u64;
    let mut sidecar_covered = 0u64;
    if let Some(sc) = sidecar::load(sidecar_path)? {
        // A sidecar written without a value-bounds provider has sound but
        // boundless value statistics; adopting it when this open *has*
        // bounds would permanently disable value pruning a rescan can
        // restore (the other direction is fine — see [`Sidecar`]).
        let bounds_compatible = sc.value_bounded || value_bounds.is_none();
        // Same rule for sketches: a sidecar written without a sketch feed
        // (including any sidecar predating the sketch section) has no
        // sketches to adopt, and adopting it when this open *has* a feed
        // would leave sketch queries permanently unanswerable when a
        // rescan can regenerate them from the blocks.
        let sketch_compatible = sc.sketched || sketch_feed.is_none();
        // And for rollups: a store opened *with* a feed only adopts a
        // sidecar whose cells were maintained at the same levels (a
        // poisoned map is adopted as-is — staying unsound is correct; a
        // level mismatch or a rollup-less sidecar forces the rescan that
        // rebuilds the cells).
        let rollup_compatible = match rollup_feed {
            None => true,
            Some(feed) => sc
                .rollups
                .as_ref()
                .is_some_and(|cells| cells.levels() == feed.levels.as_slice()),
        };
        if bounds_compatible
            && sketch_compatible
            && rollup_compatible
            && sc.log_len <= actual_len
            && last_block_intact(&mut file, &sc)
        {
            scan_from = sc.log_len;
            sidecar_covered = sc.log_len;
            blocks = sc.blocks;
            zones = sc.zones;
            if rollup_feed.is_some() {
                rollups = sc.rollups;
            }
        }
        // A sidecar describing more log than exists (the log lost a tail)
        // or whose last block fails validation cannot be trusted at all:
        // fall through to the full streaming scan.
    }
    let valid_len = scan_blocks_from(
        &mut file,
        actual_len,
        scan_from,
        value_bounds,
        sketch_feed,
        rollup_feed,
        &mut rollups,
        &mut blocks,
        &mut zones,
    )?;
    Ok(Recovered {
        blocks,
        zones,
        rollups,
        valid_len,
        sidecar_fresh: valid_len == sidecar_covered,
    })
}

/// Validates the last block a sidecar describes against the log: the header
/// must match the recorded summary and the payload its checksum. O(one
/// block), the price of trusting O(blocks) metadata instead of rescanning
/// O(log).
fn last_block_intact(file: &mut File, sc: &Sidecar) -> bool {
    let Some(meta) = sc.blocks.last() else {
        // An empty sidecar describes an empty log prefix; trivially intact.
        return sc.log_len == 0;
    };
    if meta.offset + meta.stored_bytes != sc.log_len {
        return false;
    }
    let mut check = || -> std::io::Result<bool> {
        file.seek(SeekFrom::Start(meta.offset))?;
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let expected = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let count = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if magic != magic_of(meta.format)
            || payload_len != meta.payload_len
            || expected != meta.checksum
            || count != meta.count
        {
            return Ok(false);
        }
        let mut payload = vec![0u8; payload_len as usize];
        file.read_exact(&mut payload)?;
        Ok(payload_checksum(meta.format, &payload) == meta.checksum)
    };
    check().unwrap_or(false)
}

/// Streams the log from `offset`, one block at a time with a bounded buffer
/// (never the whole log at once), appending recovered block summaries and
/// zone statistics. Returns the byte offset of the end of the last valid
/// block; a torn or corrupt tail block simply stops the scan.
#[allow(clippy::too_many_arguments)]
fn scan_blocks_from(
    file: &mut File,
    actual_len: u64,
    mut offset: u64,
    value_bounds: Option<&ValueBoundsFn>,
    sketch_feed: Option<&SketchFeedFn>,
    rollup_feed: Option<&RollupFeed>,
    rollups: &mut Option<RollupCells>,
    blocks: &mut Vec<BlockMeta>,
    zones: &mut ZoneMap,
) -> Result<u64> {
    let mut header = [0u8; HEADER_BYTES];
    let mut payload = Vec::new();
    file.seek(SeekFrom::Start(offset))?;
    while offset + (HEADER_BYTES as u64) <= actual_len {
        file.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let Some(format) = format_of(magic) else {
            break;
        };
        let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let expected = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let count = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let body_start = offset + HEADER_BYTES as u64;
        if body_start + u64::from(payload_len) > actual_len {
            break; // torn tail block
        }
        payload.resize(payload_len as usize, 0);
        file.read_exact(&mut payload)?;
        if payload_checksum(format, &payload) != expected {
            break; // corrupt tail block
        }
        // The one-time rescan materializes records whatever the format —
        // zone statistics need every segment once.
        let segments = match format {
            BlockFormat::V1 => decode_block(&payload, count, offset)?,
            BlockFormat::V2 => BlockView::parse(payload.clone(), count as u32)
                .ok_or_else(|| {
                    MdbError::Corrupt(format!(
                        "v2 block at offset {offset} passed its checksum but failed layout validation"
                    ))
                })?
                .to_records(),
        };
        let ranges: Vec<Option<ValueInterval>> = segments
            .iter()
            .map(|segment| value_bounds.and_then(|f| f(segment)))
            .collect();
        for (segment, range) in segments.iter().zip(&ranges) {
            zones.insert(segment, *range);
        }
        // Rebuild (or extend, on a suffix scan) the rollup cells in log
        // order — the same order the insert path fed them in originally.
        if let (Some(feed), Some(cells)) = (rollup_feed, rollups.as_mut()) {
            for segment in &segments {
                cells.feed_segment(&feed.feed, segment);
            }
        }
        blocks.push(summarize_block(
            offset,
            payload_len,
            expected,
            format,
            &segments,
            &ranges,
            sketch_feed,
        ));
        offset = body_start + u64::from(payload_len);
    }
    Ok(offset)
}

impl SegmentStore for DiskStore {
    fn insert(&mut self, segment: SegmentRecord) -> Result<()> {
        let range = self.value_bounds.as_ref().and_then(|f| f(&segment));
        self.zones.insert(&segment, range);
        if let (Some(feed), Some(cells)) = (self.rollup_feed.as_ref(), self.rollups.as_mut()) {
            cells.feed_segment(&feed.feed, &segment);
        }
        self.logical_bytes += segment.storage_bytes() as u64;
        self.n_segments += 1;
        self.write_buffer.push(segment);
        self.buffer_ranges.push(range);
        self.buffer_peak = self.buffer_peak.max(self.write_buffer.len());
        if self.write_buffer.len() >= self.bulk_write_size {
            self.write_block()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.write_block()?;
        self.writer.get_ref().sync_data()?;
        // The sidecar is rewritten once per flush, not per appended block;
        // blocks a crash strands between flushes are recovered by the
        // suffix scan on reopen.
        if self.sidecar_dirty {
            self.write_sidecar()?;
            self.sidecar_dirty = false;
        }
        Ok(())
    }

    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()> {
        self.scan_batches(predicate, &mut |chunk| {
            for segment in chunk {
                f(segment);
            }
        })
    }

    fn import_run(&mut self, run: Vec<SegmentRecord>) -> Result<()> {
        for segment in run {
            self.insert(segment)?;
        }
        // Cut the block at the run boundary (a no-op if `insert` already
        // cut one via `bulk_write_size`), so an imported log mirrors the
        // source's block structure instead of re-batching it.
        self.write_block()
    }

    fn scan_batches(
        &self,
        predicate: &SegmentPredicate,
        f: &mut dyn FnMut(&[SegmentRecord]),
    ) -> Result<()> {
        // Materializes block runs into a reused scratch buffer for callers
        // that want owned-record slices (listing, export, handoff). The
        // aggregate scan path uses `scan_runs` directly and never pays this.
        let mut scratch: Vec<SegmentRecord> = Vec::new();
        self.scan_runs(predicate, &mut |run| match &run {
            SegmentRun::Inline(records) => f(records),
            SegmentRun::Block { block, lo, hi } => {
                if let CachedBlock::Owned(records) = block.as_ref() {
                    f(&records[*lo..*hi]);
                } else {
                    scratch.clear();
                    scratch.extend(run.segments().map(|view| view.to_record()));
                    f(&scratch);
                }
            }
        })
    }

    fn scan_runs(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(SegmentRun)) -> Result<()> {
        let sorted_gids: Option<Vec<Gid>> = predicate.gids.as_ref().map(|gids| {
            let mut sorted = gids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted
        });
        let survivors: Vec<&BlockMeta> = self
            .blocks
            .iter()
            .filter(|meta| {
                !self.pruning || !Self::block_pruned(meta, predicate, sorted_gids.as_deref())
            })
            .collect();
        // Read-ahead: while block k is fetched and folded, the prefetcher
        // pulls the next surviving blocks into the cache, coalescing
        // file-adjacent blocks into single-read spans. `issued` never
        // regresses, so each block is queued at most once per scan; a full
        // queue just pauses issuing until the scan catches up.
        let mut issued = 0usize;
        for (k, meta) in survivors.iter().enumerate() {
            if let Some(prefetch) = &self.prefetch {
                issued = issued.max(k + 1);
                // Top up only once the lookahead has drained to half the
                // window: topping up on every block would degenerate into
                // single-block spans (and a thread handoff per block) as
                // soon as the window slides.
                let drained = issued <= k + prefetch.depth.div_ceil(2);
                'issue: while drained && issued < survivors.len() && issued <= k + prefetch.depth {
                    if self.cache.contains(survivors[issued].offset) {
                        issued += 1;
                        continue;
                    }
                    let mut span = vec![BlockMeta::clone(survivors[issued])];
                    let mut next = issued + 1;
                    while next < survivors.len() && next <= k + prefetch.depth {
                        let tail = span.last().expect("span is non-empty");
                        if survivors[next].offset != tail.offset + tail.stored_bytes
                            || self.cache.contains(survivors[next].offset)
                        {
                            break;
                        }
                        span.push(BlockMeta::clone(survivors[next]));
                        next += 1;
                    }
                    if !prefetch.issue(span) {
                        break 'issue;
                    }
                    issued = next;
                }
            }
            // If the block is in the prefetcher's hands, wait for it to be
            // staged instead of reading it a second time.
            if let Some(prefetch) = &self.prefetch {
                prefetch.state.wait_for(meta.offset);
            }
            let block = self.fetch_block(meta)?;
            emit_view_runs(&block, predicate, &mut |lo, hi| {
                f(SegmentRun::Block {
                    block: Arc::clone(&block),
                    lo,
                    hi,
                })
            });
        }
        // Buffered (not yet durable) segments scan last, in insert order.
        emit_matching_runs(&self.write_buffer, predicate, &mut |run| {
            f(SegmentRun::Inline(run.to_vec()))
        });
        Ok(())
    }

    /// Answered from block *metadata* alone: no block body is fetched and
    /// the cache counters do not move — the whole point of carrying
    /// sketches in [`BlockMeta`]. The write buffer's (not yet summarized)
    /// segments are sketched on the fly through the same shared helper.
    fn merge_sketches(&self, scope: Option<&[Gid]>) -> Result<Option<BlockSketch>> {
        let Some(feed) = self.sketch_feed.as_ref() else {
            return Ok(None);
        };
        let sorted_scope: Option<Vec<Gid>> = scope.map(|gids| {
            let mut sorted = gids.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            sorted
        });
        let in_scope = |gid: Gid| {
            sorted_scope
                .as_deref()
                .is_none_or(|s| s.binary_search(&gid).is_ok())
        };
        let mut merged = BlockSketch::new();
        let mut merge_set = |sketches: &BlockSketches| {
            for (gid, sketch) in sketches {
                if in_scope(*gid) {
                    merged.merge(sketch);
                }
            }
        };
        for meta in &self.blocks {
            if let Some(gids) = sorted_scope.as_deref() {
                if meta.excludes_gids(gids) {
                    continue;
                }
            }
            match meta.sketches.as_ref() {
                Some(sketches) => merge_set(sketches),
                // A block without sketches (a segment failed to decode at
                // write time) makes the merged answer unsound: report the
                // store as sketch-less rather than answer wrong.
                None => return Ok(None),
            }
        }
        match sketch_block(&self.write_buffer, feed) {
            Some(sketches) => merge_set(&sketches),
            None => return Ok(None),
        }
        Ok(Some(merged))
    }

    /// Answered from the materialized cell map alone: no block body is
    /// fetched and the cache counters do not move. Cells are fed on insert,
    /// so buffered segments are covered exactly like a scan would cover
    /// them. `Ok(false)` (no feed, unmaintained level, or a poisoned map)
    /// sends the caller to the scan path.
    fn rollup_cells(
        &self,
        level: TimeLevel,
        scope: Option<&[Gid]>,
        f: &mut dyn FnMut(Gid, Tid, Timestamp, &RollupAcc),
    ) -> Result<bool> {
        let Some(cells) = self.rollups.as_ref() else {
            return Ok(false);
        };
        if !cells.is_sound() || !cells.levels().contains(&level) {
            return Ok(false);
        }
        cells.for_each(level, scope, f);
        Ok(true)
    }

    fn zones(&self) -> Option<&ZoneMap> {
        Some(&self.zones)
    }

    fn len(&self) -> usize {
        self.n_segments
    }

    fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    fn persistent_bytes(&self) -> u64 {
        self.persistent_bytes
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn resident_segments(&self) -> usize {
        self.cache.stats().resident_segments + self.write_buffer.len()
    }

    fn resident_segment_peak(&self) -> usize {
        // Upper bound: the two peaks need not have coincided.
        self.cache.stats().peak_resident_segments + self.buffer_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_to_vec;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: i64, end: i64) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 1,
            params: Bytes::from(vec![gid as u8; 8]),
            gaps: GapsMask::EMPTY,
        }
    }

    fn temp_dir(tag: &str) -> mdb_testutil::TempDir {
        mdb_testutil::TempDir::new(&format!("disk-{tag}"))
    }

    #[test]
    fn write_flush_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        {
            let mut store = DiskStore::open(dir.path(), 10).unwrap();
            for i in 0..25 {
                store
                    .insert(seg(i % 3 + 1, i as i64 * 1000, i as i64 * 1000 + 900))
                    .unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.len(), 25);
        }
        let store = DiskStore::open(dir.path(), 10).unwrap();
        assert_eq!(store.len(), 25);
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2])).unwrap();
        assert!(got.iter().all(|s| s.gid == 2));
        assert!(!got.is_empty());
    }

    #[test]
    fn bulk_write_size_triggers_automatic_blocks() {
        let dir = temp_dir("bulk");
        let mut store = DiskStore::open(dir.path(), 5).unwrap();
        for i in 0..12 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        // Two full blocks are on disk; two segments still buffered.
        assert_eq!(store.block_count(), 2);
        assert!(store.persistent_bytes() > 0);
        let durable_before_flush = store.persistent_bytes();
        store.flush().unwrap();
        assert!(store.persistent_bytes() > durable_before_flush);
        assert_eq!(store.block_count(), 3);
    }

    #[test]
    fn unflushed_segments_are_still_queryable() {
        let dir = temp_dir("buffered");
        let mut store = DiskStore::open(dir.path(), 1000).unwrap();
        store.insert(seg(1, 0, 900)).unwrap();
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap().len(),
            1
        );
    }

    #[test]
    fn torn_tail_block_is_truncated_on_recovery() {
        let dir = temp_dir("torn");
        {
            let mut store = DiskStore::open(dir.path(), 5).unwrap();
            for i in 0..10 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Corrupt the file by appending garbage (simulated torn write).
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 40]);
        std::fs::write(&path, &bytes).unwrap();
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert_eq!(store.len(), 10, "valid blocks survive");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            intact as u64,
            "tail truncated"
        );
    }

    #[test]
    fn corrupt_payload_is_rejected_at_open_or_read() {
        let dir = temp_dir("corrupt");
        {
            let mut store = DiskStore::open(dir.path(), 5).unwrap();
            for i in 0..5 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        // With the sidecar present its last-block validation fails, so the
        // store falls back to a full rescan: the (single) corrupt block is
        // dropped.
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn interior_corruption_is_detected_lazily_by_the_fetch_checksum() {
        let dir = temp_dir("bitrot");
        {
            let mut store = DiskStore::open(dir.path(), 5).unwrap();
            for i in 0..10 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Flip a byte inside the FIRST block's payload: the sidecar's
        // last-block validation still passes, so the store opens with all
        // summaries — but fetching the rotten block must error, never
        // silently return bad segments.
        let path = dir.join("segments.log");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_BYTES + 4] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert_eq!(store.len(), 10, "summaries open fine");
        let err = scan_to_vec(&store, &SegmentPredicate::all()).unwrap_err();
        assert!(matches!(err, MdbError::Corrupt(_)), "{err}");
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let dir = temp_dir("append");
        {
            let mut store = DiskStore::open(dir.path(), 2).unwrap();
            for i in 0..4 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        {
            let mut store = DiskStore::open(dir.path(), 2).unwrap();
            assert_eq!(store.len(), 4);
            for i in 4..8 {
                store.insert(seg(2, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        let store = DiskStore::open(dir.path(), 2).unwrap();
        assert_eq!(store.len(), 8);
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2]))
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn empty_store_opens_cleanly() {
        let dir = temp_dir("empty");
        let store = DiskStore::open(dir.path(), 5).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.persistent_bytes(), 0);
    }

    #[test]
    fn sidecar_reopen_matches_log_rescan_reopen() {
        let dir = temp_dir("sidecar-vs-scan");
        {
            let mut store = DiskStore::open(dir.path(), 7).unwrap();
            for i in 0..40 {
                store
                    .insert(seg(i % 4 + 1, i as i64 * 1000, i as i64 * 1000 + 900))
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let with_sidecar = DiskStore::open(dir.path(), 7).unwrap();
        let via_sidecar = scan_to_vec(&with_sidecar, &SegmentPredicate::all()).unwrap();
        let zones_via_sidecar = with_sidecar.zones().unwrap().clone();
        drop(with_sidecar);
        std::fs::remove_file(dir.join("segments.idx")).unwrap();
        let rebuilt = DiskStore::open(dir.path(), 7).unwrap();
        let via_scan = scan_to_vec(&rebuilt, &SegmentPredicate::all()).unwrap();
        assert_eq!(via_sidecar, via_scan);
        assert_eq!(&zones_via_sidecar, rebuilt.zones().unwrap());
        assert!(
            dir.join("segments.idx").exists(),
            "rescan rebuilds the sidecar"
        );
    }

    #[test]
    fn opening_with_bounds_rescans_a_boundless_sidecar() {
        let dir = temp_dir("bounds-upgrade");
        {
            // Written without a value-bounds provider: the sidecar carries
            // boundless value statistics.
            let mut store = DiskStore::open(dir.path(), 4).unwrap();
            for i in 0..8 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Reopening WITH bounds must not adopt those statistics — a rescan
        // recomputes them so value pruning works.
        let bounds: ValueBoundsFn =
            Arc::new(|s| Some(ValueInterval::new(s.start_time as f64, s.end_time as f64)));
        let store = DiskStore::open_with_bounds(dir.path(), 4, Some(bounds)).unwrap();
        let zone = store.zones().unwrap().gid(1).unwrap();
        assert!(
            matches!(zone.values, crate::zone::ZoneValues::Bounded(_)),
            "rescan must restore value statistics, got {:?}",
            zone.values
        );
        // And the rescan rewrote a bounds-aware sidecar: the next open
        // trusts it directly and sees the same statistics.
        let store = DiskStore::open_with_bounds(
            dir.path(),
            4,
            Some(Arc::new(|s: &SegmentRecord| {
                Some(ValueInterval::new(s.start_time as f64, s.end_time as f64))
            })),
        )
        .unwrap();
        let zone = store.zones().unwrap().gid(1).unwrap();
        assert!(matches!(zone.values, crate::zone::ZoneValues::Bounded(_)));
    }

    #[test]
    fn blocks_appended_after_a_stale_sidecar_are_recovered() {
        let dir = temp_dir("stale-forward");
        {
            let mut store = DiskStore::open(dir.path(), 4).unwrap();
            for i in 0..8 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Save the current (2-block) sidecar, append two more blocks, then
        // put the stale sidecar back: reopen must scan just the suffix.
        let stale = std::fs::read(dir.join("segments.idx")).unwrap();
        {
            let mut store = DiskStore::open(dir.path(), 4).unwrap();
            for i in 8..16 {
                store.insert(seg(2, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        std::fs::write(dir.join("segments.idx"), &stale).unwrap();
        let store = DiskStore::open(dir.path(), 4).unwrap();
        assert_eq!(store.len(), 16);
        assert_eq!(store.block_count(), 4);
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2]))
                .unwrap()
                .len(),
            8
        );
    }

    #[test]
    fn block_pruning_skips_fetches_under_a_time_range() {
        let dir = temp_dir("prune-io");
        let mut store = DiskStore::open(dir.path(), 8).unwrap();
        for i in 0..64 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        store.flush().unwrap();
        // A range inside the last block must fetch exactly one block.
        let got = scan_to_vec(
            &store,
            &SegmentPredicate::all().with_time_range(60_000, 60_500),
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        // Disabling pruning fetches every block (the baseline).
        store.set_pruning(false);
        let got = scan_to_vec(
            &store,
            &SegmentPredicate::all().with_time_range(60_000, 60_500),
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(store.cache_stats().misses + store.cache_stats().hits, 9);
    }

    #[test]
    fn export_import_round_trip_preserves_order_and_run_blocks() {
        let src_dir = temp_dir("export-src");
        let dst_dir = temp_dir("export-dst");
        let mut src = DiskStore::open(src_dir.path(), 4).unwrap();
        for i in 0..24i64 {
            // Runs of three: gids 1,1,1,2,2,2,... so exports see real runs.
            src.insert(seg((i / 3 % 2 + 1) as Gid, i * 1000, i * 1000 + 900))
                .unwrap();
        }
        src.flush().unwrap();
        let runs = src.export_runs(&[2]).unwrap();
        let exported: Vec<SegmentRecord> = runs.iter().flatten().cloned().collect();
        assert_eq!(
            exported,
            scan_to_vec(&src, &SegmentPredicate::for_gids(vec![2])).unwrap(),
            "export preserves scan order"
        );
        assert!(runs.len() > 1, "expected several runs, got {}", runs.len());

        // Import into a store whose own bulk size would merge everything
        // into one block: run boundaries must still be preserved.
        let mut dst = DiskStore::open(dst_dir.path(), 1000).unwrap();
        let n_runs = runs.len();
        for run in runs {
            dst.import_run(run).unwrap();
        }
        dst.flush().unwrap();
        assert_eq!(dst.block_count(), n_runs, "one block per imported run");
        assert_eq!(
            scan_to_vec(&dst, &SegmentPredicate::all()).unwrap(),
            exported
        );
        // A restart scans the identical log order.
        drop(dst);
        let dst = DiskStore::open(dst_dir.path(), 1000).unwrap();
        assert_eq!(
            scan_to_vec(&dst, &SegmentPredicate::all()).unwrap(),
            exported
        );
    }

    #[test]
    fn bounded_cache_keeps_resident_segments_near_capacity() {
        let dir = temp_dir("budget");
        let block_segments = 16usize;
        let total = 64 * block_segments;
        // Write once to learn the exact per-block file footprint (the
        // budget's unit is file bytes now, not a heap estimate).
        let per_block = {
            let mut store = DiskStore::open(dir.path(), block_segments).unwrap();
            for i in 0..total as i64 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
            store.persistent_bytes() / store.block_count() as u64
        };
        // Budget ≈ 2 blocks per shard × 8 shards.
        let store = DiskStore::open_with(
            dir.path(),
            DiskStoreOptions {
                bulk_write_size: block_segments,
                memory_budget_bytes: Some(per_block * 16),
                ..DiskStoreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap().len(),
            total
        );
        let peak = store.resident_segment_peak();
        assert!(
            peak < total / 2,
            "peak {peak} should stay well below {total}"
        );
        let stats = store.cache_stats();
        assert!(
            stats.resident_bytes as u64 <= per_block * 16,
            "file-byte accounting must respect the budget: {stats:?}"
        );
    }

    #[test]
    fn v2_scans_validate_without_owned_decodes() {
        let dir = temp_dir("v2-counters");
        let mut store = DiskStore::open(dir.path(), 8).unwrap();
        for i in 0..32 {
            store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap().len(),
            32
        );
        let stats = store.cache_stats();
        assert_eq!(stats.owned_decodes, 0, "v2 blocks never decode to owned");
        assert_eq!(stats.decode_validations, stats.misses);
        // Exact accounting: bytes read == file bytes of the fetched blocks.
        assert_eq!(stats.bytes_read, store.persistent_bytes());
    }

    #[test]
    fn v1_write_format_round_trips_and_migrates_lazily() {
        let dir = temp_dir("v1-compat");
        // Write a log in the legacy format.
        {
            let mut store = DiskStore::open_with(
                dir.path(),
                DiskStoreOptions {
                    bulk_write_size: 4,
                    write_format: BlockFormat::V1,
                    ..DiskStoreOptions::default()
                },
            )
            .unwrap();
            for i in 0..8 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Reopen with the default (v2) writer: v1 blocks stay readable,
        // new blocks append as v2, and scans cross the format boundary.
        let mut store = DiskStore::open(dir.path(), 4).unwrap();
        assert_eq!(store.len(), 8);
        assert!(store.blocks.iter().all(|b| b.format == BlockFormat::V1));
        for i in 8..16 {
            store.insert(seg(2, i * 1000, i * 1000 + 900)).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.blocks[2].format, BlockFormat::V2);
        let got = scan_to_vec(&store, &SegmentPredicate::all()).unwrap();
        assert_eq!(got.len(), 16);
        let stats = store.cache_stats();
        assert_eq!(stats.owned_decodes, 2, "the two v1 blocks decode owned");
        assert_eq!(stats.decode_validations, 2, "the two v2 blocks validate");
        // A third open over the mixed log recovers everything (sidecar and
        // rescan paths both understand both magics).
        drop(store);
        std::fs::remove_file(dir.join("segments.idx")).unwrap();
        let store = DiskStore::open(dir.path(), 4).unwrap();
        assert_eq!(scan_to_vec(&store, &SegmentPredicate::all()).unwrap(), got);
    }

    /// A deterministic synthetic rollup feed: one delta per segment keyed by
    /// its start hour, so cells are exactly reconstructible from the log.
    fn test_rollup_feed() -> crate::rollup::RollupFeed {
        use crate::rollup::{RollupAcc, RollupDelta, RollupFeed};
        use mdb_types::TimeLevel;
        RollupFeed {
            levels: vec![TimeLevel::Hour],
            feed: Arc::new(|s: &SegmentRecord| {
                Some(vec![RollupDelta {
                    tid: s.gid * 100,
                    level: TimeLevel::Hour,
                    bucket: s.start_time.div_euclid(3_600_000) * 3_600_000,
                    acc: RollupAcc {
                        count: 1,
                        sum: s.end_time as f64 * 0.5,
                        min: s.start_time as f64,
                        max: s.end_time as f64,
                    },
                }])
            }),
        }
    }

    type FlatCell = (Gid, Tid, Timestamp, u64, u64);

    fn collect_cells(store: &DiskStore) -> Option<Vec<FlatCell>> {
        let mut cells = Vec::new();
        store
            .rollup_cells(TimeLevel::Hour, None, &mut |g, t, b, a| {
                cells.push((g, t, b, a.count, a.sum.to_bits()))
            })
            .unwrap()
            .then_some(cells)
    }

    #[test]
    fn rollup_cells_survive_sidecar_reopen_and_rescan_rebuild() {
        let dir = temp_dir("rollups");
        let open = || {
            DiskStore::open_with(
                dir.path(),
                DiskStoreOptions {
                    bulk_write_size: 4,
                    rollup_feed: Some(test_rollup_feed()),
                    ..DiskStoreOptions::default()
                },
            )
            .unwrap()
        };
        let original = {
            let mut store = open();
            for i in 0..10 {
                store
                    .insert(seg(i % 3 + 1, i as i64 * 1000, i as i64 * 1000 + 900))
                    .unwrap();
            }
            // Cells cover the write buffer too (two segments not yet in a
            // block).
            let cells = collect_cells(&store).expect("served before flush");
            store.flush().unwrap();
            assert_eq!(collect_cells(&store).unwrap(), cells);
            cells
        };
        // Reopen via the sidecar: adopted bit-exactly.
        assert_eq!(collect_cells(&open()).unwrap(), original);
        // Delete the sidecar: the streaming rescan rebuilds identical cells
        // (and rewrites the sidecar).
        std::fs::remove_file(dir.join("segments.idx")).unwrap();
        assert_eq!(collect_cells(&open()).unwrap(), original);
        assert_eq!(collect_cells(&open()).unwrap(), original);
        // Opening without a feed serves nothing, and its sidecar rewrite (if
        // any) must not poison a later feed-ful open.
        let plain = DiskStore::open(dir.path(), 4).unwrap();
        assert!(collect_cells(&plain).is_none());
        drop(plain);
        assert_eq!(collect_cells(&open()).unwrap(), original);
    }

    #[test]
    fn rollup_level_mismatch_forces_a_rebuilding_rescan() {
        let dir = temp_dir("rollup-levels");
        {
            let mut store = DiskStore::open_with(
                dir.path(),
                DiskStoreOptions {
                    bulk_write_size: 4,
                    rollup_feed: Some(test_rollup_feed()),
                    ..DiskStoreOptions::default()
                },
            )
            .unwrap();
            for i in 0..8 {
                store.insert(seg(1, i * 1000, i * 1000 + 900)).unwrap();
            }
            store.flush().unwrap();
        }
        // Reopen with a feed maintaining a different level set: the sidecar
        // cells are incompatible, so a rescan rebuilds at the new levels.
        let mut feed = test_rollup_feed();
        feed.levels = vec![mdb_types::TimeLevel::Day];
        feed.feed = {
            let inner = test_rollup_feed().feed;
            Arc::new(move |s: &SegmentRecord| {
                inner(s).map(|deltas| {
                    deltas
                        .into_iter()
                        .map(|mut d| {
                            d.level = mdb_types::TimeLevel::Day;
                            d.bucket = 0;
                            d
                        })
                        .collect()
                })
            })
        };
        let store = DiskStore::open_with(
            dir.path(),
            DiskStoreOptions {
                bulk_write_size: 4,
                rollup_feed: Some(feed),
                ..DiskStoreOptions::default()
            },
        )
        .unwrap();
        let mut n = 0;
        assert!(store
            .rollup_cells(mdb_types::TimeLevel::Day, None, &mut |_, _, _, _| n += 1)
            .unwrap());
        assert_eq!(n, 1, "all 8 segments fold into the single day bucket");
    }

    #[test]
    fn prefetch_stages_blocks_and_scans_agree() {
        let dir = temp_dir("prefetch");
        let build = |depth: usize| {
            DiskStore::open_with(
                dir.path(),
                DiskStoreOptions {
                    bulk_write_size: 8,
                    prefetch_depth: depth,
                    ..DiskStoreOptions::default()
                },
            )
            .unwrap()
        };
        {
            let mut store = build(0);
            for i in 0..64 {
                store
                    .insert(seg(i as Gid % 3 + 1, i * 1000, i * 1000 + 900))
                    .unwrap();
            }
            store.flush().unwrap();
        }
        let plain = {
            let store = build(0);
            scan_to_vec(&store, &SegmentPredicate::all()).unwrap()
        };
        let store = build(2);
        // Repeat scans: the first may race the prefetcher, later ones hit.
        for _ in 0..3 {
            assert_eq!(
                scan_to_vec(&store, &SegmentPredicate::all()).unwrap(),
                plain
            );
        }
        let stats = store.cache_stats();
        assert_eq!(
            stats.prefetch_issued + stats.misses,
            8,
            "every block read exactly once: {stats:?}"
        );
        assert_eq!(stats.prefetch_hits, stats.prefetch_issued);
        assert_eq!(stats.bytes_read, store.persistent_bytes());
    }
}

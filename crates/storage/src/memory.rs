//! An in-memory segment store: the write path's staging area (the Main
//! Memory Segment Cache of Figure 4) and the store used by tests and
//! micro-benchmarks.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use mdb_types::{BlockSketch, Gid, Result, SegmentRecord, Tid, TimeLevel, Timestamp};

use crate::rollup::{RollupAcc, RollupCells, RollupFeed};
use crate::zone::{SketchFeedFn, ValueBoundsFn, ZoneMap};
use crate::{SegmentPredicate, SegmentStore};

/// Heap-backed store, ordered by `(gid, end_time, gaps)` like the
/// Cassandra clustering key of Section 3.3. A [`ZoneMap`] is maintained on
/// every insert; scans consult it to skip whole groups and segment runs.
pub struct MemoryStore {
    segments: BTreeMap<(Gid, i64, u64), SegmentRecord>,
    logical_bytes: u64,
    zones: ZoneMap,
    /// Computes stored-value ranges for the zone map; without it, runs are
    /// unbounded and only time statistics prune.
    value_bounds: Option<ValueBoundsFn>,
    /// Feeds inserted segments into the per-group sketches; without it
    /// sketch queries are unanswerable from this store.
    sketch_feed: Option<SketchFeedFn>,
    /// Per-group sketches over every inserted segment (the in-memory
    /// analogue of the disk store's per-block sketches — one "block").
    sketches: BTreeMap<Gid, BlockSketch>,
    /// Cleared when a segment could not be fed (sketches then fail open),
    /// mirroring a disk block with `sketches: None`. A rare duplicate-key
    /// overwrite also clears it: sketch counts are not subtractable, and
    /// the compression pipeline never produces duplicates.
    sketches_sound: bool,
    /// Continuous-aggregate feed; `None` disables rollup maintenance.
    rollup_feed: Option<RollupFeed>,
    /// Materialized rollup cells, present exactly when a feed is configured.
    /// Unlike the disk store (whose scan order *is* insert order), this
    /// store scans in `(gid, end_time, gaps)` key order — so the cells stay
    /// sound only while every gid's inserts arrive in ascending key order;
    /// an out-of-order or duplicate insert poisons the map (queries then
    /// fall back to the scan path, which remains exact).
    rollups: Option<RollupCells>,
    /// Highest `(end_time, gaps)` key inserted per gid — the out-of-order
    /// detector for the invariant above.
    rollup_max_key: BTreeMap<Gid, (Timestamp, u64)>,
    pruning: bool,
}

impl std::fmt::Debug for MemoryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryStore")
            .field("segments", &self.segments.len())
            .field("logical_bytes", &self.logical_bytes)
            .field("zones", &self.zones.run_count())
            .field("pruning", &self.pruning)
            .finish()
    }
}

impl Default for MemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryStore {
    /// An empty store (time-only zone statistics).
    pub fn new() -> Self {
        Self {
            segments: BTreeMap::new(),
            logical_bytes: 0,
            zones: ZoneMap::new(),
            value_bounds: None,
            sketch_feed: None,
            sketches: BTreeMap::new(),
            sketches_sound: true,
            rollup_feed: None,
            rollups: None,
            rollup_max_key: BTreeMap::new(),
            pruning: true,
        }
    }

    /// An empty store whose zone map also records stored-value ranges
    /// computed by `value_bounds` (typically `mdb_models::segment_value_range`
    /// closed over the registry and group sizes).
    pub fn with_value_bounds(value_bounds: ValueBoundsFn) -> Self {
        Self {
            value_bounds: Some(value_bounds),
            ..Self::new()
        }
    }

    /// Builder: additionally maintain per-group sketches on insert, fed by
    /// `sketch_feed` (typically `mdb_query::sketch_feed`), enabling
    /// [`SegmentStore::merge_sketches`].
    pub fn with_sketch_feed(mut self, sketch_feed: SketchFeedFn) -> Self {
        self.sketch_feed = Some(sketch_feed);
        self
    }

    /// Builder: additionally maintain materialized rollup cells on insert,
    /// fed by `rollup_feed` (typically `mdb_query::rollup_feed`), enabling
    /// [`SegmentStore::rollup_cells`].
    pub fn with_rollup_feed(mut self, rollup_feed: RollupFeed) -> Self {
        self.rollups = Some(RollupCells::new(rollup_feed.levels.clone()));
        self.rollup_feed = Some(rollup_feed);
        self
    }

    /// Enables or disables zone-map pruning in [`SegmentStore::scan`] (the
    /// map is still maintained). Disabling yields the plain sequential scan —
    /// the baseline the `repro query` benchmark measures against.
    pub fn set_pruning(&mut self, pruning: bool) {
        self.pruning = pruning;
    }
}

impl SegmentStore for MemoryStore {
    fn insert(&mut self, segment: SegmentRecord) -> Result<()> {
        let range = self.value_bounds.as_ref().and_then(|f| f(&segment));
        self.zones.insert(&segment, range);
        self.logical_bytes += segment.storage_bytes() as u64;
        if let Some(feed) = self.sketch_feed.as_ref() {
            let sketch = self.sketches.entry(segment.gid).or_default();
            if !feed(&segment, sketch) {
                self.sketches_sound = false;
            }
        }
        if let (Some(feed), Some(cells)) = (self.rollup_feed.as_ref(), self.rollups.as_mut()) {
            // Cells fold contributions in insert order, but this store scans
            // in key order: a non-ascending key within a gid (out-of-order
            // insert or duplicate overwrite) breaks the order equivalence,
            // so the map poisons and queries fall back to the exact scan.
            let key = (segment.end_time, segment.gaps.0);
            match self.rollup_max_key.entry(segment.gid) {
                Entry::Occupied(mut max) => {
                    if key <= *max.get() {
                        cells.poison();
                    } else {
                        max.insert(key);
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert(key);
                }
            }
            cells.feed_segment(&feed.feed, &segment);
        }
        let key = (segment.gid, segment.end_time, segment.gaps.0);
        if let Some(old) = self.segments.insert(key, segment) {
            self.logical_bytes -= old.storage_bytes() as u64;
            // The duplicate's first insertion was already sketched and
            // cannot be subtracted back out.
            self.sketches_sound = false;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()> {
        if !self.pruning {
            // The unpruned baseline: filter every segment individually.
            match &predicate.gids {
                Some(gids) => {
                    let mut sorted = gids.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    for gid in sorted {
                        // Range scan within one gid, using end_time >= from
                        // for the lower bound.
                        let lower = predicate.from.unwrap_or(i64::MIN);
                        for (_, segment) in self
                            .segments
                            .range((gid, lower, 0)..=(gid, i64::MAX, u64::MAX))
                        {
                            if predicate.matches(segment) {
                                f(segment);
                            }
                        }
                    }
                }
                None => {
                    for segment in self.segments.values() {
                        if predicate.matches(segment) {
                            f(segment);
                        }
                    }
                }
            }
            return Ok(());
        }
        // Pruned scan: resolve the candidate groups, then walk each group's
        // zone runs, range-scanning only runs whose statistics can match.
        // Groups ascend and runs within a group partition the end-time axis
        // in order, so the `(gid, end_time)` output order is preserved.
        let gids: Vec<Gid> = match &predicate.gids {
            Some(gids) => {
                let mut sorted = gids.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted
            }
            None => self.zones.gids().collect(),
        };
        for gid in gids {
            let Some(zone) = self.zones.gid(gid) else {
                continue;
            };
            if zone.prunes(predicate) {
                continue;
            }
            for run in &zone.runs {
                if run.prunes(predicate) {
                    continue;
                }
                for (_, segment) in self
                    .segments
                    .range((gid, run.min_end, 0)..=(gid, run.max_end, u64::MAX))
                {
                    if predicate.matches(segment) {
                        f(segment);
                    }
                }
            }
        }
        Ok(())
    }

    fn merge_sketches(&self, scope: Option<&[Gid]>) -> Result<Option<BlockSketch>> {
        if self.sketch_feed.is_none() || !self.sketches_sound {
            return Ok(None);
        }
        let mut merged = BlockSketch::new();
        for (gid, sketch) in &self.sketches {
            if scope.is_none_or(|s| s.contains(gid)) {
                merged.merge(sketch);
            }
        }
        Ok(Some(merged))
    }

    fn rollup_cells(
        &self,
        level: TimeLevel,
        scope: Option<&[Gid]>,
        f: &mut dyn FnMut(Gid, Tid, Timestamp, &RollupAcc),
    ) -> Result<bool> {
        let Some(cells) = self.rollups.as_ref() else {
            return Ok(false);
        };
        if !cells.is_sound() || !cells.levels().contains(&level) {
            return Ok(false);
        }
        cells.for_each(level, scope, f);
        Ok(true)
    }

    fn zones(&self) -> Option<&ZoneMap> {
        Some(&self.zones)
    }

    fn len(&self) -> usize {
        self.segments.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    fn persistent_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_to_vec;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: i64, end: i64, gaps: u64) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 0,
            params: Bytes::from_static(&[0; 4]),
            gaps: GapsMask(gaps),
        }
    }

    #[test]
    fn scan_orders_by_gid_then_end_time() {
        let mut store = MemoryStore::new();
        store.insert(seg(2, 0, 900, 0)).unwrap();
        store.insert(seg(1, 1000, 1900, 0)).unwrap();
        store.insert(seg(1, 0, 900, 0)).unwrap();
        let all = scan_to_vec(&store, &SegmentPredicate::all()).unwrap();
        let keys: Vec<(Gid, i64)> = all.iter().map(|s| (s.gid, s.end_time)).collect();
        assert_eq!(keys, vec![(1, 900), (1, 1900), (2, 900)]);
    }

    #[test]
    fn gid_pushdown_restricts_scan() {
        let mut store = MemoryStore::new();
        for gid in 1..=5 {
            store.insert(seg(gid, 0, 900, 0)).unwrap();
        }
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2, 4])).unwrap();
        assert_eq!(got.iter().map(|s| s.gid).collect::<Vec<_>>(), vec![2, 4]);
        // Duplicate gids in the predicate do not duplicate results.
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2, 2])).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn time_range_pushdown() {
        let mut store = MemoryStore::new();
        store.insert(seg(1, 0, 900, 0)).unwrap();
        store.insert(seg(1, 1000, 1900, 0)).unwrap();
        store.insert(seg(1, 2000, 2900, 0)).unwrap();
        let got = scan_to_vec(
            &store,
            &SegmentPredicate::for_gids(vec![1]).with_time_range(950, 1950),
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start_time, 1000);
        // Overlap at the edges is inclusive.
        let got = scan_to_vec(&store, &SegmentPredicate::all().with_time_range(900, 1000)).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn sibling_segments_with_same_end_time_coexist() {
        // Dynamic splitting produces same (gid, end_time) with different
        // gaps — the reason Gaps is part of the primary key (Section 3.3).
        let mut store = MemoryStore::new();
        store.insert(seg(1, 0, 900, 0b01)).unwrap();
        store.insert(seg(1, 0, 900, 0b10)).unwrap();
        assert_eq!(store.len(), 2);
        // True duplicates overwrite.
        store.insert(seg(1, 0, 900, 0b10)).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn rollup_cells_serve_in_order_and_poison_out_of_order() {
        use crate::rollup::{RollupAcc, RollupDelta, RollupFeed};
        use std::sync::Arc;
        let feed = RollupFeed {
            levels: vec![TimeLevel::Hour],
            feed: Arc::new(|s: &SegmentRecord| {
                Some(vec![RollupDelta {
                    tid: s.gid * 10,
                    level: TimeLevel::Hour,
                    bucket: 0,
                    acc: RollupAcc {
                        count: 1,
                        sum: s.end_time as f64,
                        min: 0.0,
                        max: 1.0,
                    },
                }])
            }),
        };
        let mut store = MemoryStore::new().with_rollup_feed(feed);
        store.insert(seg(1, 0, 900, 0)).unwrap();
        store.insert(seg(1, 1000, 1900, 0)).unwrap();
        let mut seen = Vec::new();
        assert!(store
            .rollup_cells(TimeLevel::Hour, None, &mut |g, t, b, a| {
                seen.push((g, t, b, a.count, a.sum))
            })
            .unwrap());
        assert_eq!(seen, vec![(1, 10, 0, 2, 2800.0)]);
        assert!(
            !store
                .rollup_cells(TimeLevel::Day, None, &mut |_, _, _, _| {})
                .unwrap(),
            "unmaintained level is not served"
        );
        // An out-of-order insert within the gid breaks the insert-order ==
        // scan-order equivalence: the map poisons.
        store.insert(seg(1, 500, 950, 0)).unwrap();
        assert!(!store
            .rollup_cells(TimeLevel::Hour, None, &mut |_, _, _, _| {})
            .unwrap());
    }

    #[test]
    fn rollups_absent_without_a_feed() {
        let mut store = MemoryStore::new();
        store.insert(seg(1, 0, 900, 0)).unwrap();
        assert!(!store
            .rollup_cells(TimeLevel::Hour, None, &mut |_, _, _, _| {})
            .unwrap());
    }

    #[test]
    fn logical_bytes_tracks_inserts() {
        let mut store = MemoryStore::new();
        assert_eq!(store.logical_bytes(), 0);
        store.insert(seg(1, 0, 900, 0)).unwrap();
        assert_eq!(store.logical_bytes(), 29);
        store.insert(seg(1, 0, 900, 0)).unwrap(); // overwrite, not double
        assert_eq!(store.logical_bytes(), 29);
        assert_eq!(store.persistent_bytes(), 0);
    }
}

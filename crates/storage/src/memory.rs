//! An in-memory segment store: the write path's staging area (the Main
//! Memory Segment Cache of Figure 4) and the store used by tests and
//! micro-benchmarks.

use std::collections::BTreeMap;

use mdb_types::{Gid, Result, SegmentRecord};

use crate::{SegmentPredicate, SegmentStore};

/// Heap-backed store, ordered by `(gid, end_time, gaps)` like the
/// Cassandra clustering key of Section 3.3.
#[derive(Debug, Default)]
pub struct MemoryStore {
    segments: BTreeMap<(Gid, i64, u64), SegmentRecord>,
    logical_bytes: u64,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SegmentStore for MemoryStore {
    fn insert(&mut self, segment: SegmentRecord) -> Result<()> {
        self.logical_bytes += segment.storage_bytes() as u64;
        let key = (segment.gid, segment.end_time, segment.gaps.0);
        if let Some(old) = self.segments.insert(key, segment) {
            self.logical_bytes -= old.storage_bytes() as u64;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn scan(&self, predicate: &SegmentPredicate, f: &mut dyn FnMut(&SegmentRecord)) -> Result<()> {
        match &predicate.gids {
            Some(gids) => {
                let mut sorted = gids.clone();
                sorted.sort_unstable();
                sorted.dedup();
                for gid in sorted {
                    // Range scan within one gid, using end_time >= from for
                    // the lower bound.
                    let lower = predicate.from.unwrap_or(i64::MIN);
                    for (_, segment) in self.segments.range((gid, lower, 0)..=(gid, i64::MAX, u64::MAX)) {
                        if predicate.matches(segment) {
                            f(segment);
                        }
                    }
                }
            }
            None => {
                for segment in self.segments.values() {
                    if predicate.matches(segment) {
                        f(segment);
                    }
                }
            }
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.segments.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    fn persistent_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_to_vec;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: i64, end: i64, gaps: u64) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 0,
            params: Bytes::from_static(&[0; 4]),
            gaps: GapsMask(gaps),
        }
    }

    #[test]
    fn scan_orders_by_gid_then_end_time() {
        let mut store = MemoryStore::new();
        store.insert(seg(2, 0, 900, 0)).unwrap();
        store.insert(seg(1, 1000, 1900, 0)).unwrap();
        store.insert(seg(1, 0, 900, 0)).unwrap();
        let all = scan_to_vec(&store, &SegmentPredicate::all()).unwrap();
        let keys: Vec<(Gid, i64)> = all.iter().map(|s| (s.gid, s.end_time)).collect();
        assert_eq!(keys, vec![(1, 900), (1, 1900), (2, 900)]);
    }

    #[test]
    fn gid_pushdown_restricts_scan() {
        let mut store = MemoryStore::new();
        for gid in 1..=5 {
            store.insert(seg(gid, 0, 900, 0)).unwrap();
        }
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2, 4])).unwrap();
        assert_eq!(got.iter().map(|s| s.gid).collect::<Vec<_>>(), vec![2, 4]);
        // Duplicate gids in the predicate do not duplicate results.
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![2, 2])).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn time_range_pushdown() {
        let mut store = MemoryStore::new();
        store.insert(seg(1, 0, 900, 0)).unwrap();
        store.insert(seg(1, 1000, 1900, 0)).unwrap();
        store.insert(seg(1, 2000, 2900, 0)).unwrap();
        let got = scan_to_vec(&store, &SegmentPredicate::for_gids(vec![1]).with_time_range(950, 1950)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start_time, 1000);
        // Overlap at the edges is inclusive.
        let got = scan_to_vec(&store, &SegmentPredicate::all().with_time_range(900, 1000)).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn sibling_segments_with_same_end_time_coexist() {
        // Dynamic splitting produces same (gid, end_time) with different
        // gaps — the reason Gaps is part of the primary key (Section 3.3).
        let mut store = MemoryStore::new();
        store.insert(seg(1, 0, 900, 0b01)).unwrap();
        store.insert(seg(1, 0, 900, 0b10)).unwrap();
        assert_eq!(store.len(), 2);
        // True duplicates overwrite.
        store.insert(seg(1, 0, 900, 0b10)).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn logical_bytes_tracks_inserts() {
        let mut store = MemoryStore::new();
        assert_eq!(store.logical_bytes(), 0);
        store.insert(seg(1, 0, 900, 0)).unwrap();
        assert_eq!(store.logical_bytes(), 29);
        store.insert(seg(1, 0, 900, 0)).unwrap(); // overwrite, not double
        assert_eq!(store.logical_bytes(), 29);
        assert_eq!(store.persistent_bytes(), 0);
    }
}

//! The segment-pruning zone map: per-group min/max statistics over *runs* of
//! segments, maintained on every write.
//!
//! This plays the role block statistics play in columnar formats (and that
//! the per-block gid/end-time ranges already play in the [`crate::disk`]
//! log): a query's push-down predicate is checked against a run's statistics
//! once, and a miss skips the whole run before a single segment is visited
//! or a single model decoded. Statistics only ever *over*-approximate —
//! unions widen, overwrites never shrink — so pruning is sound: a pruned run
//! provably contains no matching segment.
//!
//! Two statistic kinds are kept per run (and aggregated per group):
//!
//! * **time**: the minimum start time and minimum/maximum end time of the
//!   run's segments, pruning time-ranged scans;
//! * **values**: the union of the segments' stored-value ranges (computed by
//!   an optional caller-provided [`ValueBoundsFn`], typically
//!   `mdb_models::segment_value_range`), pruning `Value` predicates.
//!   Segments whose model has no closed form make the run *unbounded*, which
//!   disables value pruning for that run but keeps it correct.

use std::collections::BTreeMap;
use std::sync::Arc;

use mdb_types::{BlockSketch, Gid, SegmentRecord, Timestamp, ValueInterval};

use crate::SegmentPredicate;

/// Computes the stored-value range of a segment on the write path, or `None`
/// when it cannot be known cheaply (the run then becomes unbounded).
pub type ValueBoundsFn = Arc<dyn Fn(&SegmentRecord) -> Option<ValueInterval> + Send + Sync>;

/// Feeds one segment — its member time series ids and every reconstructed
/// data-point value — into a block sketch on the write path (typically
/// `mdb_query::sketch_feed` closed over the catalog and model registry).
/// Returns `false` when the segment cannot be decoded; the enclosing
/// block's sketches then fail open to `None`, like every other statistic.
pub type SketchFeedFn = Arc<dyn Fn(&SegmentRecord, &mut BlockSketch) -> bool + Send + Sync>;

/// How many segments a run covers before a new one is started. Small enough
/// that a time-ranged query over months of data skips most runs; large
/// enough that run headers stay negligible next to the segments themselves.
pub const RUN_SEGMENTS: u32 = 32;

/// The value statistic of a run or group.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ZoneValues {
    /// No segment recorded yet.
    #[default]
    Empty,
    /// Every segment's values lie in this interval.
    Bounded(ValueInterval),
    /// At least one segment has unknown bounds: value pruning is disabled.
    Unbounded,
}

impl ZoneValues {
    /// Widens the statistic with one segment's (possibly unknown) range.
    pub fn absorb(&mut self, range: Option<ValueInterval>) {
        *self = match (*self, range) {
            (ZoneValues::Unbounded, _) | (_, None) => ZoneValues::Unbounded,
            (ZoneValues::Empty, Some(r)) => ZoneValues::Bounded(r),
            (ZoneValues::Bounded(mine), Some(r)) => ZoneValues::Bounded(mine.union(&r)),
        };
    }

    /// True when the statistic *proves* no stored value intersects `wanted`.
    pub fn excludes(&self, wanted: &ValueInterval) -> bool {
        match self {
            ZoneValues::Bounded(range) => !range.intersects(wanted),
            ZoneValues::Empty | ZoneValues::Unbounded => false,
        }
    }
}

/// Statistics over one run of segments of one group. Runs partition a
/// group's end-time axis: within a group, run end-time ranges are disjoint
/// and sorted, so a run maps to a contiguous range of the store's
/// `(gid, end_time, gaps)` clustering key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneRun {
    /// Minimum start time of the run's segments.
    pub min_start: Timestamp,
    /// Minimum end time of the run's segments (the run's key-range start).
    pub min_end: Timestamp,
    /// Maximum end time of the run's segments (the run's key-range end).
    pub max_end: Timestamp,
    /// Union of the segments' stored-value ranges.
    pub values: ZoneValues,
    /// Number of segments recorded (overwrites count twice; the count is
    /// informational, the ranges stay sound).
    pub segments: u32,
}

impl ZoneRun {
    fn for_segment(segment: &SegmentRecord, range: Option<ValueInterval>) -> Self {
        let mut values = ZoneValues::Empty;
        values.absorb(range);
        Self {
            min_start: segment.start_time,
            min_end: segment.end_time,
            max_end: segment.end_time,
            values,
            segments: 1,
        }
    }

    fn absorb(&mut self, segment: &SegmentRecord, range: Option<ValueInterval>) {
        self.min_start = self.min_start.min(segment.start_time);
        self.min_end = self.min_end.min(segment.end_time);
        self.max_end = self.max_end.max(segment.end_time);
        self.values.absorb(range);
        self.segments += 1;
    }

    /// True when the statistics prove no segment of the run matches
    /// `predicate` (gid restrictions are resolved by the caller).
    pub fn prunes(&self, predicate: &SegmentPredicate) -> bool {
        if let Some(from) = predicate.from {
            if self.max_end < from {
                return true;
            }
        }
        if let Some(to) = predicate.to {
            if self.min_start > to {
                return true;
            }
        }
        if let Some(values) = &predicate.values {
            if self.values.excludes(values) {
                return true;
            }
        }
        false
    }
}

/// The zone of one group: aggregate statistics plus the per-run breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GidZone {
    /// Minimum start time over all segments.
    pub min_start: Timestamp,
    /// Maximum end time over all segments.
    pub max_end: Timestamp,
    /// Union of all segments' stored-value ranges.
    pub values: ZoneValues,
    /// Segments recorded.
    pub segments: u64,
    /// The runs, sorted by `min_end` with disjoint `[min_end, max_end]`.
    pub runs: Vec<ZoneRun>,
}

impl GidZone {
    /// True when the group-level statistics prove no segment matches.
    pub fn prunes(&self, predicate: &SegmentPredicate) -> bool {
        if self.segments == 0 {
            return true;
        }
        if let Some(from) = predicate.from {
            if self.max_end < from {
                return true;
            }
        }
        if let Some(to) = predicate.to {
            if self.min_start > to {
                return true;
            }
        }
        if let Some(values) = &predicate.values {
            if self.values.excludes(values) {
                return true;
            }
        }
        false
    }

    fn insert(&mut self, segment: &SegmentRecord, range: Option<ValueInterval>) {
        if self.segments == 0 {
            self.min_start = segment.start_time;
            self.max_end = segment.end_time;
        } else {
            self.min_start = self.min_start.min(segment.start_time);
            self.max_end = self.max_end.max(segment.end_time);
        }
        self.values.absorb(range);
        self.segments += 1;

        match self.runs.last_mut() {
            None => self.runs.push(ZoneRun::for_segment(segment, range)),
            Some(last) if segment.end_time >= last.min_end => {
                // The common append case: the segment lands in or after the
                // newest run. Seal the run once it is full *and* the segment
                // extends past it, keeping run ranges disjoint.
                if last.segments >= RUN_SEGMENTS && segment.end_time > last.max_end {
                    self.runs.push(ZoneRun::for_segment(segment, range));
                } else {
                    last.absorb(segment, range);
                }
            }
            Some(_) => {
                // Out-of-order insert: widen the first run whose range ends
                // at or after this end time. Its predecessor ends strictly
                // earlier, so disjointness is preserved.
                let idx = self.runs.partition_point(|r| r.max_end < segment.end_time);
                debug_assert!(idx < self.runs.len());
                self.runs[idx].absorb(segment, range);
            }
        }
    }
}

/// The store-wide zone map: one [`GidZone`] per group that has segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZoneMap {
    gids: BTreeMap<Gid, GidZone>,
}

impl ZoneMap {
    /// An empty zone map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one inserted segment with its (possibly unknown) stored-value
    /// range.
    pub fn insert(&mut self, segment: &SegmentRecord, range: Option<ValueInterval>) {
        self.gids
            .entry(segment.gid)
            .or_default()
            .insert(segment, range);
    }

    /// The zone of one group, if any segment of it was recorded.
    pub fn gid(&self, gid: Gid) -> Option<&GidZone> {
        self.gids.get(&gid)
    }

    /// All groups with segments, ascending.
    pub fn gids(&self) -> impl Iterator<Item = Gid> + '_ {
        self.gids.keys().copied()
    }

    /// All `(gid, zone)` pairs, ascending by gid — the iteration the
    /// persistent sidecar index serializes.
    pub fn iter(&self) -> impl Iterator<Item = (Gid, &GidZone)> + '_ {
        self.gids.iter().map(|(g, z)| (*g, z))
    }

    /// Installs a fully-built zone for `gid`, replacing any existing one —
    /// the inverse of [`ZoneMap::iter`], used when the sidecar index is
    /// deserialized instead of replaying every insert.
    pub fn set_zone(&mut self, gid: Gid, zone: GidZone) {
        self.gids.insert(gid, zone);
    }

    /// Total runs across all groups (diagnostics).
    pub fn run_count(&self) -> usize {
        self.gids.values().map(|z| z.runs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::GapsMask;

    fn seg(gid: Gid, start: Timestamp, end: Timestamp) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: 100,
            mid: 0,
            params: Bytes::new(),
            gaps: GapsMask::EMPTY,
        }
    }

    fn pred(from: Timestamp, to: Timestamp) -> SegmentPredicate {
        SegmentPredicate::all().with_time_range(from, to)
    }

    #[test]
    fn runs_seal_and_stay_disjoint() {
        let mut zones = ZoneMap::new();
        for i in 0..(RUN_SEGMENTS as i64 * 3) {
            zones.insert(&seg(1, i * 1000, i * 1000 + 900), None);
        }
        let zone = zones.gid(1).unwrap();
        assert_eq!(zone.runs.len(), 3);
        assert_eq!(zone.segments, u64::from(RUN_SEGMENTS) * 3);
        for w in zone.runs.windows(2) {
            assert!(w[0].max_end < w[1].min_end, "overlapping runs: {w:?}");
        }
        // Group-level aggregates cover everything.
        assert_eq!(zone.min_start, 0);
        assert_eq!(zone.max_end, (RUN_SEGMENTS as i64 * 3 - 1) * 1000 + 900);
    }

    #[test]
    fn time_pruning_is_sound_and_effective() {
        let mut zones = ZoneMap::new();
        for i in 0..(RUN_SEGMENTS as i64 * 2) {
            zones.insert(&seg(1, i * 1000, i * 1000 + 900), None);
        }
        let zone = zones.gid(1).unwrap();
        // A range inside the second run prunes the first, not the second.
        let late = pred(
            RUN_SEGMENTS as i64 * 1000 + 50,
            RUN_SEGMENTS as i64 * 1000 + 60,
        );
        assert!(zone.runs[0].prunes(&late));
        assert!(!zone.runs[1].prunes(&late));
        assert!(!zone.prunes(&late));
        // A range before all data prunes the whole group.
        assert!(zone.prunes(&SegmentPredicate {
            to: Some(-1),
            ..SegmentPredicate::all()
        }));
        assert!(zone.prunes(&SegmentPredicate {
            from: Some(zone.max_end + 1),
            ..SegmentPredicate::all()
        }));
    }

    #[test]
    fn value_pruning_requires_bounded_runs() {
        let mut zones = ZoneMap::new();
        zones.insert(&seg(1, 0, 900), Some(ValueInterval::new(10.0, 20.0)));
        zones.insert(&seg(1, 1000, 1900), Some(ValueInterval::new(15.0, 30.0)));
        let wanted = SegmentPredicate {
            values: Some(ValueInterval::new(40.0, 50.0)),
            ..Default::default()
        };
        assert!(zones.gid(1).unwrap().prunes(&wanted));
        let overlapping = SegmentPredicate {
            values: Some(ValueInterval::new(25.0, 50.0)),
            ..Default::default()
        };
        assert!(!zones.gid(1).unwrap().prunes(&overlapping));
        // One unknown segment makes the zone unbounded: never pruned.
        zones.insert(&seg(1, 2000, 2900), None);
        assert!(!zones.gid(1).unwrap().prunes(&wanted));
    }

    #[test]
    fn out_of_order_inserts_widen_an_existing_run() {
        let mut zones = ZoneMap::new();
        for i in 0..(RUN_SEGMENTS as i64 * 2) {
            zones.insert(&seg(1, i * 1000, i * 1000 + 900), None);
        }
        // A late arrival whose end time falls into the first run.
        zones.insert(&seg(1, 100, 950), None);
        let zone = zones.gid(1).unwrap();
        assert_eq!(zone.runs.len(), 2);
        for w in zone.runs.windows(2) {
            assert!(w[0].max_end < w[1].min_end);
        }
        assert!(zone.runs[0].min_end <= 950 && zone.runs[0].max_end >= 950);
    }

    #[test]
    fn empty_zone_prunes_everything() {
        let zone = GidZone::default();
        assert!(zone.prunes(&SegmentPredicate::all()));
    }
}

//! Binary codecs for segments and catalog metadata.
//!
//! The segment layout follows the two Cassandra-specific optimizations of
//! Section 3.3: the clustering key is `(Gid, EndTime, Gaps)` — `Gaps` is part
//! of the key because dynamic splitting can give sibling segments the same
//! `(Gid, EndTime)` — and `StartTime` is not stored; the segment *size in
//! data points* is, with `StartTime = EndTime − (Size − 1) × SI` recomputed
//! on read.

use bytes::{Buf, BufMut, Bytes};
use mdb_encoding::varint;
use mdb_types::{GapsMask, MdbError, Result, SegmentRecord};

/// FNV-1a 32-bit checksum, used to detect torn or corrupt v1 blocks.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Word-folded FNV-1a checksum for v2 block payloads: one 64-bit multiply
/// per eight bytes instead of one 32-bit multiply per byte, so verifying a
/// cold scan's reads stops being a measurable fraction of scan time. The
/// payload length seeds the hash, so the zero-padded tail word cannot alias
/// payloads that differ only in trailing zeros.
pub fn checksum_v2(bytes: &[u8]) -> u32 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xCBF2_9CE4_8422_2325u64 ^ bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = hash.wrapping_mul(PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(PRIME);
    }
    (hash ^ (hash >> 32)) as u32
}

/// Serializes one segment into `out`.
pub fn write_segment(out: &mut Vec<u8>, segment: &SegmentRecord) {
    varint::write_u64(out, u64::from(segment.gid));
    varint::write_i64(out, segment.end_time);
    varint::write_u64(out, segment.gaps.0);
    // Size in data points instead of StartTime (Section 3.3).
    varint::write_u64(out, segment.len() as u64);
    varint::write_i64(out, segment.sampling_interval);
    out.put_u8(segment.mid);
    varint::write_u64(out, segment.params.len() as u64);
    out.extend_from_slice(&segment.params);
}

/// Deserializes one segment; `None` on malformed input.
pub fn read_segment(input: &mut &[u8]) -> Option<SegmentRecord> {
    let gid = varint::read_u64(input)? as u32;
    let end_time = varint::read_i64(input)?;
    let gaps = GapsMask(varint::read_u64(input)?);
    let size = varint::read_u64(input)? as i64;
    let sampling_interval = varint::read_i64(input)?;
    if size < 1 || sampling_interval < 1 {
        return None;
    }
    if !input.has_remaining() {
        return None;
    }
    let mid = input.get_u8();
    let param_len = varint::read_u64(input)? as usize;
    if param_len > input.len() {
        return None;
    }
    let (params, rest) = input.split_at(param_len);
    let params = Bytes::copy_from_slice(params);
    *input = rest;
    Some(SegmentRecord {
        gid,
        // StartTime = EndTime − (Size − 1) × SI.
        start_time: end_time - (size - 1) * sampling_interval,
        end_time,
        sampling_interval,
        mid,
        params,
        gaps,
    })
}

/// A generic length-prefixed string writer/reader for catalog metadata.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed string.
pub fn read_str(input: &mut &[u8]) -> Result<String> {
    let len = varint::read_u64(input).ok_or_else(truncated)? as usize;
    if len > input.len() {
        return Err(truncated());
    }
    let (head, rest) = input.split_at(len);
    let s = String::from_utf8(head.to_vec())
        .map_err(|_| MdbError::Corrupt("invalid utf-8 in catalog string".into()))?;
    *input = rest;
    Ok(s)
}

pub(crate) fn truncated() -> MdbError {
    MdbError::Corrupt("truncated catalog or segment data".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gid: u32, start: i64, end: i64, si: i64, gaps: u64, params: &[u8]) -> SegmentRecord {
        SegmentRecord {
            gid,
            start_time: start,
            end_time: end,
            sampling_interval: si,
            mid: 2,
            params: Bytes::copy_from_slice(params),
            gaps: GapsMask(gaps),
        }
    }

    #[test]
    fn segment_round_trips() {
        let s = sample(
            7,
            1_460_442_200_000,
            1_460_442_620_000,
            60_000,
            0b10,
            &[9; 40],
        );
        let mut buf = Vec::new();
        write_segment(&mut buf, &s);
        let mut slice = buf.as_slice();
        let back = read_segment(&mut slice).unwrap();
        assert_eq!(back, s);
        assert!(slice.is_empty());
    }

    #[test]
    fn start_time_is_recomputed_from_size() {
        // 8 data points at SI 100 ending at 1000 start at 300.
        let s = sample(1, 300, 1_000, 100, 0, &[1]);
        assert_eq!(s.len(), 8);
        let mut buf = Vec::new();
        write_segment(&mut buf, &s);
        let back = read_segment(&mut buf.as_slice()).unwrap();
        assert_eq!(back.start_time, 300);
    }

    #[test]
    fn multiple_segments_stream() {
        let segs: Vec<SegmentRecord> = (1..20)
            .map(|i| {
                sample(
                    i,
                    i as i64 * 100,
                    i as i64 * 1_000,
                    100,
                    u64::from(i % 4),
                    &vec![i as u8; i as usize],
                )
            })
            .collect();
        let mut buf = Vec::new();
        for s in &segs {
            write_segment(&mut buf, s);
        }
        let mut slice = buf.as_slice();
        for s in &segs {
            assert_eq!(&read_segment(&mut slice).unwrap(), s);
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn malformed_segments_rejected() {
        let s = sample(1, 0, 900, 100, 0, &[5; 10]);
        let mut buf = Vec::new();
        write_segment(&mut buf, &s);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(read_segment(&mut slice).is_none(), "cut {cut} should fail");
        }
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data = b"segment block payload";
        let base = checksum(data);
        let mut corrupted = data.to_vec();
        corrupted[3] ^= 0x01;
        assert_ne!(checksum(&corrupted), base);
        assert_eq!(checksum(data), base);
        assert_eq!(checksum(&[]), 0x811C_9DC5);
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "Aalborg");
        write_str(&mut buf, "");
        write_str(&mut buf, "Farsø");
        let mut slice = buf.as_slice();
        assert_eq!(read_str(&mut slice).unwrap(), "Aalborg");
        assert_eq!(read_str(&mut slice).unwrap(), "");
        assert_eq!(read_str(&mut slice).unwrap(), "Farsø");
        let mut bad = &buf[..2];
        assert!(read_str(&mut bad).is_err());
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_segments_round_trip(
            gid in 1u32..10_000,
            end in 0i64..2_000_000_000_000,
            size in 1i64..5_000,
            si in 1i64..100_000,
            gaps in proptest::num::u64::ANY,
            params in proptest::collection::vec(proptest::num::u8::ANY, 0..100),
        ) {
            let s = SegmentRecord {
                gid,
                start_time: end - (size - 1) * si,
                end_time: end,
                sampling_interval: si,
                mid: 1,
                params: Bytes::from(params),
                gaps: GapsMask(gaps),
            };
            let mut buf = Vec::new();
            write_segment(&mut buf, &s);
            let back = read_segment(&mut buf.as_slice()).unwrap();
            proptest::prop_assert_eq!(back, s);
        }
    }
}

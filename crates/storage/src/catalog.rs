//! The catalog: the Time Series table, Model table, group membership, and
//! user-defined dimensions of Figure 6, cached in memory during query
//! processing (the Metadata Cache of Figure 4) and persisted alongside the
//! segment log.

use std::path::Path;

use mdb_encoding::varint;
use mdb_types::{
    DimensionSchema, Dimensions, Gid, GroupMeta, MdbError, Result, Tid, TimeSeriesMeta,
};

use crate::codec::{checksum, read_str, truncated, write_str};

const MAGIC: &[u8; 4] = b"MDBC";
const VERSION: u8 = 1;

/// All metadata of a ModelarDB+ instance.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// The Time Series table, in tid order.
    pub series: Vec<TimeSeriesMeta>,
    /// Group membership, in gid order.
    pub groups: Vec<GroupMeta>,
    /// The Model table: Mid → name.
    pub model_names: Vec<String>,
    /// The denormalized user-defined dimensions.
    pub dimensions: Dimensions,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self {
            dimensions: Dimensions::new(),
            ..Self::default()
        }
    }

    /// Metadata for `tid`.
    pub fn series_meta(&self, tid: Tid) -> Option<&TimeSeriesMeta> {
        self.series.iter().find(|m| m.tid == tid)
    }

    /// The group `gid`.
    pub fn group(&self, gid: Gid) -> Option<&GroupMeta> {
        self.groups.iter().find(|g| g.gid == gid)
    }

    /// The gid of `tid` (the Gid→Tid mapping of Algorithm 5's query
    /// rewriting step).
    pub fn gid_of(&self, tid: Tid) -> Option<Gid> {
        self.series_meta(tid).map(|m| m.gid)
    }

    /// The scaling constant of `tid` (divided back out in the iterate step
    /// of every aggregate, Section 6.1).
    pub fn scaling_of(&self, tid: Tid) -> f64 {
        self.series_meta(tid).map_or(1.0, |m| m.scaling)
    }

    /// All tids.
    pub fn tids(&self) -> Vec<Tid> {
        self.series.iter().map(|m| m.tid).collect()
    }

    /// Rewrites a set of tids to the gids of their groups, deduplicated —
    /// the `rewriteQuery` step of Algorithms 5 and 6.
    pub fn gids_for_tids(&self, tids: &[Tid]) -> Vec<Gid> {
        let mut gids: Vec<Gid> = tids.iter().filter_map(|&t| self.gid_of(t)).collect();
        gids.sort_unstable();
        gids.dedup();
        gids
    }

    /// Rewrites a dimensional member to the gids of groups containing series
    /// with that member (the member→Gid rewriting of Section 6.2).
    pub fn gids_for_member(&self, dim: usize, level: usize, member: &str) -> Vec<Gid> {
        let Some(m) = self.dimensions.member_id(member) else {
            return Vec::new();
        };
        let tids = self.dimensions.tids_with_member(dim, level, m);
        self.gids_for_tids(tids)
    }

    /// Serializes the catalog to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        varint::write_u64(&mut body, self.series.len() as u64);
        for m in &self.series {
            varint::write_u64(&mut body, u64::from(m.tid));
            varint::write_i64(&mut body, m.sampling_interval);
            body.extend_from_slice(&m.scaling.to_le_bytes());
            varint::write_u64(&mut body, u64::from(m.gid));
        }
        varint::write_u64(&mut body, self.groups.len() as u64);
        for g in &self.groups {
            varint::write_u64(&mut body, u64::from(g.gid));
            varint::write_i64(&mut body, g.sampling_interval);
            varint::write_u64(&mut body, g.tids.len() as u64);
            for &t in &g.tids {
                varint::write_u64(&mut body, u64::from(t));
            }
        }
        varint::write_u64(&mut body, self.model_names.len() as u64);
        for name in &self.model_names {
            write_str(&mut body, name);
        }
        // Dimensions: schemas, then per-tid member paths (as names, so the
        // interning pool is rebuilt on load).
        let schemas = self.dimensions.schemas();
        varint::write_u64(&mut body, schemas.len() as u64);
        for s in schemas {
            write_str(&mut body, s.name());
            varint::write_u64(&mut body, s.height() as u64);
            for level in 1..=s.height() {
                write_str(&mut body, s.level_name(level).unwrap());
            }
        }
        let mut tids: Vec<Tid> = self.dimensions.tids().collect();
        tids.sort_unstable();
        varint::write_u64(&mut body, tids.len() as u64);
        for tid in tids {
            varint::write_u64(&mut body, u64::from(tid));
            for (d, s) in schemas.iter().enumerate() {
                match self.dimensions.path(tid, d) {
                    Some(path) => {
                        varint::write_u64(&mut body, path.len() as u64);
                        for &m in path {
                            write_str(&mut body, self.dimensions.member_name(m));
                        }
                    }
                    None => varint::write_u64(&mut body, 0),
                }
                let _ = s;
            }
        }

        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&checksum(&body).to_le_bytes());
        varint::write_u64(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
        out
    }

    /// Deserializes a catalog from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut input = bytes;
        if input.len() < 5 || &input[..4] != MAGIC {
            return Err(MdbError::Corrupt("bad catalog magic".into()));
        }
        if input[4] != VERSION {
            return Err(MdbError::Corrupt(format!(
                "unsupported catalog version {}",
                input[4]
            )));
        }
        input = &input[5..];
        if input.len() < 4 {
            return Err(truncated());
        }
        let expected = u32::from_le_bytes(input[..4].try_into().unwrap());
        input = &input[4..];
        let body_len = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
        if body_len > input.len() {
            return Err(truncated());
        }
        let body = &input[..body_len];
        if checksum(body) != expected {
            return Err(MdbError::Corrupt("catalog checksum mismatch".into()));
        }
        let mut input = body;

        let mut catalog = Catalog::new();
        let n_series = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
        for _ in 0..n_series {
            let tid = varint::read_u64(&mut input).ok_or_else(truncated)? as Tid;
            let si = varint::read_i64(&mut input).ok_or_else(truncated)?;
            if input.len() < 8 {
                return Err(truncated());
            }
            let scaling = f64::from_le_bytes(input[..8].try_into().unwrap());
            input = &input[8..];
            let gid = varint::read_u64(&mut input).ok_or_else(truncated)? as Gid;
            catalog.series.push(TimeSeriesMeta {
                tid,
                sampling_interval: si,
                scaling,
                gid,
            });
        }
        let n_groups = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
        for _ in 0..n_groups {
            let gid = varint::read_u64(&mut input).ok_or_else(truncated)? as Gid;
            let si = varint::read_i64(&mut input).ok_or_else(truncated)?;
            let n = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
            let mut tids = Vec::with_capacity(n);
            for _ in 0..n {
                tids.push(varint::read_u64(&mut input).ok_or_else(truncated)? as Tid);
            }
            catalog.groups.push(GroupMeta {
                gid,
                tids,
                sampling_interval: si,
            });
        }
        let n_models = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
        for _ in 0..n_models {
            catalog.model_names.push(read_str(&mut input)?);
        }
        let n_schemas = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
        for _ in 0..n_schemas {
            let name = read_str(&mut input)?;
            let n_levels = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
            let mut levels = Vec::with_capacity(n_levels);
            for _ in 0..n_levels {
                levels.push(read_str(&mut input)?);
            }
            catalog
                .dimensions
                .add_dimension(DimensionSchema::new(name, levels)?)?;
        }
        let n_paths = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
        for _ in 0..n_paths {
            let tid = varint::read_u64(&mut input).ok_or_else(truncated)? as Tid;
            for d in 0..n_schemas {
                let n = varint::read_u64(&mut input).ok_or_else(truncated)? as usize;
                if n == 0 {
                    continue;
                }
                let mut path = Vec::with_capacity(n);
                for _ in 0..n {
                    path.push(read_str(&mut input)?);
                }
                let refs: Vec<&str> = path.iter().map(String::as_str).collect();
                catalog.dimensions.set_members(tid, d, &refs)?;
            }
        }
        Ok(catalog)
    }

    /// Persists the catalog as `catalog.mdb` inside `dir`.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join("catalog.mdb.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(tmp, dir.join("catalog.mdb"))?;
        Ok(())
    }

    /// Loads a catalog previously written by [`Catalog::save`].
    pub fn load(dir: &Path) -> Result<Self> {
        let bytes = std::fs::read(dir.join("catalog.mdb"))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        let loc = c
            .dimensions
            .add_dimension(
                DimensionSchema::new(
                    "Location",
                    vec!["Country".into(), "Park".into(), "Entity".into()],
                )
                .unwrap(),
            )
            .unwrap();
        c.dimensions
            .set_members(1, loc, &["Denmark", "Aalborg", "9632"])
            .unwrap();
        c.dimensions
            .set_members(2, loc, &["Denmark", "Aalborg", "9634"])
            .unwrap();
        c.dimensions
            .set_members(3, loc, &["Denmark", "Farsø", "9572"])
            .unwrap();
        c.series = vec![
            TimeSeriesMeta {
                tid: 1,
                sampling_interval: 60_000,
                scaling: 1.0,
                gid: 1,
            },
            TimeSeriesMeta {
                tid: 2,
                sampling_interval: 60_000,
                scaling: 4.75,
                gid: 1,
            },
            TimeSeriesMeta {
                tid: 3,
                sampling_interval: 60_000,
                scaling: 1.0,
                gid: 2,
            },
        ];
        c.groups = vec![
            GroupMeta {
                gid: 1,
                tids: vec![1, 2],
                sampling_interval: 60_000,
            },
            GroupMeta {
                gid: 2,
                tids: vec![3],
                sampling_interval: 60_000,
            },
        ];
        c.model_names = vec!["PMC-Mean".into(), "Swing".into(), "Gorilla".into()];
        c
    }

    #[test]
    fn lookups() {
        let c = sample();
        assert_eq!(c.gid_of(2), Some(1));
        assert_eq!(c.gid_of(9), None);
        assert_eq!(c.scaling_of(2), 4.75);
        assert_eq!(c.scaling_of(9), 1.0);
        assert_eq!(c.group(2).unwrap().tids, vec![3]);
        assert_eq!(c.tids(), vec![1, 2, 3]);
    }

    #[test]
    fn tid_to_gid_rewriting_deduplicates() {
        let c = sample();
        assert_eq!(c.gids_for_tids(&[1, 2, 3]), vec![1, 2]);
        assert_eq!(c.gids_for_tids(&[2]), vec![1]);
        assert_eq!(c.gids_for_tids(&[42]), Vec::<Gid>::new());
    }

    #[test]
    fn member_to_gid_rewriting() {
        let c = sample();
        // Aalborg (level 2 of Location) covers tids 1,2 → gid 1.
        assert_eq!(c.gids_for_member(0, 2, "Aalborg"), vec![1]);
        assert_eq!(c.gids_for_member(0, 1, "Denmark"), vec![1, 2]);
        assert_eq!(c.gids_for_member(0, 2, "Nowhere"), Vec::<Gid>::new());
    }

    #[test]
    fn round_trips_through_bytes() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Catalog::from_bytes(&bytes).unwrap();
        assert_eq!(back.series, c.series);
        assert_eq!(back.groups, c.groups);
        assert_eq!(back.model_names, c.model_names);
        assert_eq!(back.gids_for_member(0, 2, "Aalborg"), vec![1]);
        assert_eq!(back.dimensions.schemas().len(), 1);
        assert_eq!(back.dimensions.lca_level(&[1], &[2], 0), 2);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let c = sample();
        let mut bytes = c.to_bytes();
        assert!(Catalog::from_bytes(&bytes[..10]).is_err());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(
            Catalog::from_bytes(&bytes).is_err(),
            "checksum must catch the flip"
        );
        assert!(Catalog::from_bytes(b"JUNKJUNKJUNK").is_err());
    }

    #[test]
    fn save_and_load_from_disk() {
        let dir = mdb_testutil::TempDir::new("catalog-save-load");
        let c = sample();
        c.save(dir.path()).unwrap();
        let back = Catalog::load(dir.path()).unwrap();
        assert_eq!(back.series, c.series);
    }

    #[test]
    fn empty_catalog_round_trips() {
        let c = Catalog::new();
        let back = Catalog::from_bytes(&c.to_bytes()).unwrap();
        assert!(back.series.is_empty());
        assert!(back.groups.is_empty());
    }
}

//! Result cells and result sets.

use std::fmt;

/// A single value in a query result.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Int(i64),
    Float(f64),
    Str(String),
    /// Milliseconds since the epoch, displayed as civil UTC time.
    Timestamp(i64),
    Null,
}

impl Cell {
    /// Numeric value, when the cell has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(v) => Some(*v as f64),
            Cell::Float(v) => Some(*v),
            Cell::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer value, when the cell has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(v) => Some(*v),
            Cell::Timestamp(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float(v) => write!(f, "{v:.4}"),
            Cell::Str(v) => write!(f, "{v}"),
            Cell::Timestamp(v) => {
                let c = mdb_types::time::decompose(*v);
                write!(
                    f,
                    "{:04}-{:02}-{:02} {:02}:{:02}:{:02}.{:03}",
                    c.year, c.month, c.day, c.hour, c.minute, c.second, c.millisecond
                )
            }
            Cell::Null => write!(f, "NULL"),
        }
    }
}

/// An ordered result set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl QueryResult {
    /// A result with the given column names and no rows yet.
    pub fn new(columns: Vec<String>) -> Self {
        Self {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Renders an ASCII table (used by examples and the repro harness).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in rendered {
            for (i, s) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{:<width$}  ",
                    s,
                    width = widths.get(i).copied().unwrap_or(0)
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_accessors() {
        assert_eq!(Cell::Int(3).as_f64(), Some(3.0));
        assert_eq!(Cell::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Cell::Str("x".into()).as_f64(), None);
        assert_eq!(Cell::Timestamp(100).as_i64(), Some(100));
        assert_eq!(Cell::Null.as_f64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cell::Int(42).to_string(), "42");
        assert_eq!(Cell::Float(1.0).to_string(), "1.0000");
        assert_eq!(Cell::Null.to_string(), "NULL");
        assert_eq!(Cell::Timestamp(0).to_string(), "1970-01-01 00:00:00.000");
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let mut r = QueryResult::new(vec!["Tid".into(), "SUM_S(*)".into()]);
        r.rows.push(vec![Cell::Int(1), Cell::Float(2996.9)]);
        let t = r.to_table();
        assert!(t.contains("Tid"));
        assert!(t.contains("2996.9000"));
        assert_eq!(r.column_index("tid"), Some(0));
        assert_eq!(r.column_index("nope"), None);
    }
}

//! The unified front-door of every ModelarDB+ deployment.
//!
//! The embedded engine (`ModelarDb`) and the cluster runtime (`Cluster`)
//! expose the same four capabilities — ingest, SQL, flush, health — with
//! historically slightly different signatures, so every caller that wanted
//! to drive "either one" (the network server, `repro`, the integration
//! tests) duplicated match arms. [`Datastore`] is the common trait both
//! implement; code routes through `&mut dyn Datastore` and works against
//! either deployment, with bit-identical query results.

use mdb_types::{Gid, Result, RowBatch, Tid, Timestamp, Value};

use crate::QueryResult;

/// A uniform health summary; the cluster fills it from its worker probes,
/// the embedded engine is healthy whenever it can answer at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatastoreHealth {
    /// Which deployment answered: `"engine"` or `"cluster"`.
    pub backend: String,
    /// True when data is being served below the configured redundancy (a
    /// dead cluster worker) or not at all ([`DatastoreHealth::lost_gids`]).
    /// Always false for the embedded engine.
    pub degraded: bool,
    /// Groups with no surviving holder; queries silently omit them.
    pub lost_gids: Vec<Gid>,
    /// Human-readable detail (worker states, segment counts, …).
    pub detail: String,
}

/// Ingestion and SQL over *some* ModelarDB+ deployment.
///
/// Mutating operations take `&mut self` — the embedded engine genuinely
/// needs exclusive access, and the cluster (internally synchronized, all
/// `&self`) satisfies the stricter signature for free. Queries take
/// `&self`, so a shared wrapper (the server's `RwLock`) can serve many
/// readers concurrently.
pub trait Datastore: Send + Sync {
    /// A short static name for the deployment (`"engine"`, `"cluster"`).
    fn backend(&self) -> &'static str;

    /// Ingests a full-width batch: column `i` belongs to the catalog's
    /// `series[i]`. Rows every member of a group missed are skipped as
    /// gaps, so writers owning disjoint groups can interleave batches
    /// freely — the per-group segment streams stay deterministic.
    fn ingest_batch(&mut self, batch: &RowBatch) -> Result<()>;

    /// Ingests loose `(tid, timestamp, value)` points, assembling rows
    /// internally; the out-of-band path for sources that do not produce
    /// aligned batches.
    fn ingest_points(&mut self, points: &[(Tid, Timestamp, Value)]) -> Result<()>;

    /// Runs one SQL statement. Results are bit-identical across
    /// deployments, parallelism, and placement.
    fn sql(&self, query: &str) -> Result<QueryResult>;

    /// Drains every buffer so subsequent queries see all ingested data.
    fn flush(&mut self) -> Result<()>;

    /// Probes the deployment's health.
    fn health(&self) -> Result<DatastoreHealth>;
}

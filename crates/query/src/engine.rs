//! The query engine: Algorithm 5 (simple aggregates on the Segment View),
//! Algorithm 6 (aggregation in the time dimension), and the listing paths of
//! both views (the point/range workload).
//!
//! The engine is deliberately split into *rewrite → partial → merge/finalize*
//! phases so the cluster runtime can run the partial phase on every worker
//! and merge at the master, exactly as the pseudo-code annotates ("executed
//! on workers with the result sent to the master").
//!
//! The partial phase is itself parallel: the rewritten push-down predicate
//! (including the zone-map value/time pruning of `mdb_storage::zone`) first
//! shrinks the scan to the surviving [`SegmentRun`]s — block-backed runs
//! share the cached block buffer, so segments are evaluated as borrowed
//! [`SegmentView`]s with **no per-segment allocation** — then fold groups
//! of consecutive segments (addressed by global scan index, so boundaries
//! never depend on block shapes or worker counts) are evaluated on a worker
//! pool fed over crossbeam channels. Each fold group produces its own fresh
//! [`PartialAggregates`] and the groups are folded back **in scan order**,
//! so the result is bit-identical to the sequential scan no matter how many
//! workers ran — float accumulation happens in exactly the same order
//! either way.
//!
//! When the store maintains continuous aggregates ([`mdb_storage::rollup`]),
//! whole-bucket time-hierarchy aggregates are answered from materialized
//! cells instead of a scan — see [`QueryEngine::with_rollups`] — with
//! segment scans only for the partial buckets at the edges of a time range.

use std::collections::HashMap;
use std::sync::Arc;

use mdb_models::ModelRegistry;
use mdb_storage::{
    Catalog, RollupAcc, RollupDelta, RollupFeed, SegmentPredicate, SegmentRun, SegmentStore,
    SketchFeedFn,
};
use mdb_types::{
    time, BlockSketch, Gid, MdbError, Result, SegmentView, Tid, TimeLevel, Timestamp, ValueInterval,
};

use crate::aggregate::{Accumulator, AggFunc, SegmentCursor};
use crate::cell::{Cell, QueryResult};
use crate::sql::{CmpOp, Predicate, Query, SelectItem, SketchFunc, TimeColumn, View};

/// A hashable group-by key component (group keys are never floats).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyCell {
    Int(i64),
    Str(String),
}

impl KeyCell {
    fn to_cell(&self) -> Cell {
        match self {
            KeyCell::Int(v) => Cell::Int(*v),
            KeyCell::Str(s) => Cell::Str(s.clone()),
        }
    }
}

/// FNV-1a, the hasher behind [`PartialAggregates`]. Group keys are short
/// cell vectors derived from the catalog (tids and dimension members), not
/// from untrusted input, so SipHash's per-hash setup cost buys no HashDoS
/// protection worth having — and it dominates bucketed scans and rollup
/// serving, where a query hashes tens of thousands of per-(tid, bucket)
/// keys.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Builds [`FnvHasher`]s seeded with the FNV offset basis; the hasher
/// state of [`PartialAggregates`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// Worker-local partial aggregation state: group key → one accumulator per
/// aggregate item in the SELECT list.
pub type PartialAggregates = HashMap<Vec<KeyCell>, Vec<Accumulator>, FnvBuildHasher>;

/// The shape of one query's parallel scan, derived from the pruned
/// (surviving) segment count and the worker parallelism — see
/// [`scan_shape`]. Benchmarks record it so a run's parallel structure is
/// visible next to its timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanShape {
    /// Segments per fold group (see [`fold_group_size`]).
    pub fold_size: usize,
    /// Pruned-segment count from which an attached pool engages (see
    /// [`pool_bypass_threshold`]).
    pub bypass_threshold: usize,
}

/// Derives the scan shape a query with `survivors` pruned segments and
/// `workers` pool workers will use.
pub fn scan_shape(survivors: usize, value_filtered: bool, workers: usize) -> ScanShape {
    ScanShape {
        fold_size: fold_group_size(survivors, value_filtered),
        bypass_threshold: pool_bypass_threshold(workers),
    }
}

/// Segments per *fold group*: consecutive segments (by global scan index)
/// accumulate into one partial map, and the master folds the group partials
/// in index order. The size scales with the surviving-segment count —
/// roughly one group per 256 survivors, clamped to `[16, 256]` — so broad
/// scans amortize per-group overhead while narrow ones still split into
/// enough groups to parallelize. Group boundaries depend only on the scan
/// order and the survivor count — never on the worker count or block
/// shapes — which is what makes results bit-identical at every parallelism
/// setting. With `per_segment` every segment folds alone: under a `Value`
/// filter the per-point filter makes a segment's contribution depend on
/// reconstructed values, and for time-bucketed aggregates the per-key left
/// fold must visit segments strictly in scan order so it reproduces exactly
/// the float association the incremental rollup cells were built with.
pub fn fold_group_size(survivors: usize, per_segment: bool) -> usize {
    if per_segment {
        return 1;
    }
    (survivors / 256).clamp(16, 256)
}

/// Pruned-segment count below which an attached [`ScanPool`] is bypassed:
/// when the zone map has already cut a query down this far, evaluating
/// inline is faster than a channel round-trip per chunk. More workers lower
/// the bar (each chunk costs the same hop but buys more parallel work);
/// the floor keeps tiny scans inline regardless. Narrow time-ranged
/// queries win through pruning; the pool earns its keep on broad scans.
pub fn pool_bypass_threshold(workers: usize) -> usize {
    (4096 / workers.max(1)).max(256)
}

/// The query engine for one node's store.
pub struct QueryEngine<'a> {
    catalog: &'a Catalog,
    registry: &'a ModelRegistry,
    store: &'a dyn SegmentStore,
    /// Worker threads for the scoped (per-query) parallel scan; 1 or 0 =
    /// sequential unless a [`ScanPool`] is attached.
    parallelism: usize,
    /// A persistent scan pool; preferred over scoped threads when attached.
    pool: Option<&'a ScanPool>,
    /// Pruned-segment count from which an attached pool engages; `None`
    /// derives it from the pool's worker count ([`pool_bypass_threshold`]).
    pool_threshold: Option<usize>,
    /// When set, only these groups are visible to the engine (see
    /// [`QueryEngine::with_gid_scope`]).
    gid_scope: Option<&'a [Gid]>,
    /// The time levels the store's continuous aggregates materialize (empty
    /// = rollups off). Non-empty switches eligible plain aggregates to the
    /// bucketed scan so serve and scan share one float association.
    rollup_levels: &'a [TimeLevel],
    /// Whether whole-bucket aggregates may be answered from rollup cells.
    /// Scanning with `rollup_levels` still set keeps the bucketed
    /// association, which is what makes the two paths bit-identical.
    rollup_serve: bool,
}

/// The catalog- and registry-dependent half of segment evaluation, split
/// from [`QueryEngine`] so persistent [`ScanPool`] workers (which have no
/// store reference) run exactly the same code as the sequential path.
#[derive(Clone, Copy)]
struct SegmentEvaluator<'a> {
    catalog: &'a Catalog,
    registry: &'a ModelRegistry,
}

/// The collected scan: the surviving [`SegmentRun`]s plus a prefix-sum
/// index, so fold groups address segments by **global scan index** — a
/// block-backed run keeps its cached block alive and its segments are read
/// as borrowed views, so collecting N surviving segments costs one `Arc`
/// clone per block, not one record clone per segment.
struct RunSet {
    runs: Vec<SegmentRun>,
    /// `starts[i]` = global index of `runs[i]`'s first segment, with one
    /// trailing entry holding the total segment count.
    starts: Vec<usize>,
}

impl RunSet {
    /// Collects every run matching `predicate`, in the store's
    /// deterministic scan order.
    fn collect(store: &dyn SegmentStore, predicate: &SegmentPredicate) -> Result<RunSet> {
        let mut runs = Vec::new();
        let mut starts = vec![0usize];
        store.scan_runs(predicate, &mut |run| {
            if run.is_empty() {
                return;
            }
            starts.push(starts.last().unwrap() + run.len());
            runs.push(run);
        })?;
        Ok(RunSet { runs, starts })
    }

    /// Total segments across all runs.
    fn len(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Calls `f` for every segment with global index in `lo..hi`, in scan
    /// order, as borrowed views.
    fn for_each_in(
        &self,
        lo: usize,
        hi: usize,
        f: &mut dyn FnMut(SegmentView<'_>) -> Result<()>,
    ) -> Result<()> {
        if lo >= hi {
            return Ok(());
        }
        // The run containing global index `lo` (starts is strictly
        // increasing because empty runs are never collected).
        let mut run_idx = match self.starts.binary_search(&lo) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut next = lo;
        while next < hi && run_idx < self.runs.len() {
            let run = &self.runs[run_idx];
            let base = self.starts[run_idx];
            let end = self.starts[run_idx + 1].min(hi);
            for i in next..end {
                f(run.segment(i - base))?;
            }
            next = end;
            run_idx += 1;
        }
        Ok(())
    }
}

/// One query's owned scan state, shipped to [`ScanPool`] workers: the
/// parsed query, the rewritten predicates, and the pruned runs.
struct ScanContext {
    query: Query,
    rw: Rewritten,
    aggs: Vec<(AggFunc, Option<TimeLevel>)>,
    cube: Option<TimeLevel>,
    runs: RunSet,
    /// Segments per fold group ([`fold_group_size`]).
    fold_size: usize,
    /// Segments per pool job, scaled to the scan so each worker sees only a
    /// few messages per query.
    chunk_size: usize,
}

/// A job for one chunk of a [`ScanContext`]'s segments.
struct PoolJob {
    context: Arc<ScanContext>,
    chunk: usize,
    results: crossbeam_channel::Sender<(usize, Result<Vec<PartialAggregates>>)>,
}

/// A persistent pool of scan workers for the partial-aggregation phase.
///
/// Created once (per embedded engine or per cluster worker) over the same
/// catalog and registry queries will use; each query ships its pruned
/// segment list to the workers in fixed-size jobs over crossbeam
/// channels, so the query path pays a channel hop instead of thread
/// start-up. Dropping the pool closes the job channel and joins the
/// workers.
pub struct ScanPool {
    jobs: Option<crossbeam_channel::Sender<PoolJob>>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Evaluates one job's chunk of fold groups and sends the result back.
fn run_pool_job(evaluator: &SegmentEvaluator<'_>, job: &PoolJob) {
    let context = &*job.context;
    let lo = job.chunk * context.chunk_size;
    let hi = (lo + context.chunk_size).min(context.runs.len());
    // chunk_size is a multiple of fold_size, so the fold groups line up
    // across transport chunks.
    let partials = (lo..hi)
        .step_by(context.fold_size)
        .map(|group_lo| {
            let group_hi = (group_lo + context.fold_size).min(hi);
            evaluator.group_partial(
                &context.query,
                &context.rw,
                &context.aggs,
                context.cube,
                &context.runs,
                group_lo,
                group_hi,
            )
        })
        .collect();
    let _ = job.results.send((job.chunk, partials));
}

impl ScanPool {
    /// Starts `workers` scan threads (`0` = the machine's available
    /// parallelism) sharing `catalog` and `registry` — they must be the
    /// same ones the querying engine is built over.
    pub fn new(catalog: Arc<Catalog>, registry: Arc<ModelRegistry>, workers: usize) -> Self {
        let workers = match workers {
            0 => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            n => n,
        };
        let (jobs, job_rx) = crossbeam_channel::unbounded::<PoolJob>();
        let handles = (0..workers)
            .map(|_| {
                let job_rx = job_rx.clone();
                let catalog = Arc::clone(&catalog);
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let evaluator = SegmentEvaluator {
                        catalog: &catalog,
                        registry: &registry,
                    };
                    while let Ok(job) = job_rx.recv() {
                        run_pool_job(&evaluator, &job);
                    }
                })
            })
            .collect();
        Self {
            jobs: Some(jobs),
            workers,
            handles,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one query's scan on the pool, returning per-segment partials in
    /// input order (chunks are reassembled by index, so the later fold is
    /// bit-identical to a sequential scan).
    fn execute(&self, mut context: ScanContext) -> Result<Vec<PartialAggregates>> {
        let n_segments = context.runs.len();
        // A few chunks per runner: enough slack to balance uneven segments,
        // few enough that channel hops stay negligible. Rounded to a
        // multiple of the fold-group size so groups align across chunks.
        let target = n_segments.div_ceil(self.workers * 4);
        context.chunk_size = context.fold_size * target.div_ceil(context.fold_size).max(1);
        let n_chunks = n_segments.div_ceil(context.chunk_size);
        let context = Arc::new(context);
        let (results, result_rx) = crossbeam_channel::unbounded();
        let jobs = self.jobs.as_ref().expect("pool alive while borrowed");
        for chunk in 0..n_chunks {
            jobs.send(PoolJob {
                context: Arc::clone(&context),
                chunk,
                results: results.clone(),
            })
            .map_err(|_| MdbError::Query("scan pool shut down".into()))?;
        }
        drop(results);
        let mut by_chunk: Vec<Option<Result<Vec<PartialAggregates>>>> =
            (0..n_chunks).map(|_| None).collect();
        for _ in 0..n_chunks {
            let (chunk, partials) = result_rx
                .recv()
                .map_err(|_| MdbError::Query("scan worker died without a result".into()))?;
            by_chunk[chunk] = Some(partials);
        }
        let mut out = Vec::with_capacity(n_segments);
        for partials in by_chunk {
            out.extend(partials.expect("every chunk was received")?);
        }
        Ok(out)
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        self.jobs = None; // closes the channel; idle workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolved WHERE clause: per-row filters plus the predicate pushed to the
/// segment store (Section 6.2's rewriting).
#[derive(Clone)]
struct Rewritten {
    /// `None` = no Tid restriction.
    tids: Option<Vec<Tid>>,
    /// Member predicates resolved to `(dim, level, member_id)`.
    members: Vec<(usize, usize, mdb_types::MemberId)>,
    /// Time bounds on data points (from TS comparisons).
    ts_from: Timestamp,
    ts_to: Timestamp,
    /// Raw segment-column comparisons (StartTime / EndTime).
    segment_time: Vec<(TimeColumn, CmpOp, Timestamp)>,
    /// Exact per-point comparisons on the raw value (from Value predicates).
    value_cmps: Vec<(CmpOp, f64)>,
    /// The push-down predicate for the store.
    pushdown: SegmentPredicate,
    /// True when the rewrite proved the result empty (e.g. unknown member).
    empty: bool,
}

impl<'a> QueryEngine<'a> {
    /// An engine over `catalog`, `registry`, and `store` (sequential scans;
    /// see [`QueryEngine::with_scan_pool`] and
    /// [`QueryEngine::with_parallelism`]).
    pub fn new(
        catalog: &'a Catalog,
        registry: &'a ModelRegistry,
        store: &'a dyn SegmentStore,
    ) -> Self {
        Self {
            catalog,
            registry,
            store,
            parallelism: 1,
            pool: None,
            pool_threshold: None,
            gid_scope: None,
            rollup_levels: &[],
            rollup_serve: false,
        }
    }

    /// Declares the continuous-aggregate configuration: `levels` must match
    /// the store's rollup feed (empty disables rollups entirely), and
    /// `serve` controls whether whole-bucket aggregates are answered from
    /// the materialized cells. `serve = false` with non-empty levels keeps
    /// the bucketed scan association, so toggling `serve` never changes a
    /// single output bit — only how many segment bodies are read.
    pub fn with_rollups(mut self, levels: &'a [TimeLevel], serve: bool) -> Self {
        self.rollup_levels = levels;
        self.rollup_serve = serve;
        self
    }

    /// Restricts the engine to the given groups: segments of any other gid
    /// are invisible to every query, as if the store did not contain them.
    /// The cluster runtime uses this to serve queries from a worker's
    /// *primary* groups only, so replicated groups are never double-counted
    /// and a store that retains exported groups after a handoff never
    /// resurrects them. An empty scope matches nothing (but listings still
    /// report their column shape).
    pub fn with_gid_scope(mut self, scope: &'a [Gid]) -> Self {
        self.gid_scope = Some(scope);
        self
    }

    /// Attaches a persistent [`ScanPool`] (built over the *same* catalog and
    /// registry): the partial-aggregation scan is chunked onto its workers
    /// instead of spawning threads per query. Results are bit-identical to
    /// a sequential scan.
    pub fn with_scan_pool(mut self, pool: &'a ScanPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Overrides the pruned-segment count from which an attached pool
    /// engages (by default derived from the pool's worker count — see
    /// [`pool_bypass_threshold`]; below it, inline evaluation beats a
    /// channel round-trip per chunk). Mainly for tests and benchmarks that
    /// need to force the pool path on small stores.
    pub fn with_pool_threshold(mut self, segments: usize) -> Self {
        self.pool_threshold = Some(segments);
        self
    }

    /// Sets the number of *scoped* (per-query) scan workers used when no
    /// [`ScanPool`] is attached. `0` or `1` scans sequentially; `n ≥ 2`
    /// spawns that many scoped threads — mainly for tests, since per-query
    /// thread start-up is what the pool exists to avoid. Results are
    /// bit-identical at every setting.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    fn evaluator(&self) -> SegmentEvaluator<'a> {
        SegmentEvaluator {
            catalog: self.catalog,
            registry: self.registry,
        }
    }

    /// Parses and executes a SQL string.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        let query = crate::sql::parse(text)?;
        self.execute(&query)
    }

    /// Executes a parsed query.
    pub fn execute(&self, query: &Query) -> Result<QueryResult> {
        if query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Sketch(_)))
        {
            let partial = self.sketch_partial(query)?;
            let mut result = Self::finalize_sketches(query, vec![partial])?;
            Self::apply_order_limit(&mut result, query)?;
            return Ok(result);
        }
        if query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }))
        {
            let partial = self.aggregate_partial(query)?;
            let mut result = Self::finalize_aggregates(query, vec![partial])?;
            Self::apply_order_limit(&mut result, query)?;
            Ok(result)
        } else {
            let mut result = self.listing(query)?;
            Self::apply_order_limit(&mut result, query)?;
            Ok(result)
        }
    }

    // ------------------------------------------------------- rewriting --

    /// The `rewriteQuery` step of Algorithms 5 and 6: Tids and members
    /// become Gids for push-down; per-row filters are kept for the iterate
    /// step because a group may mix series that match and series that don't.
    fn rewrite(&self, query: &Query) -> Result<Rewritten> {
        let mut tids: Option<Vec<Tid>> = None;
        let mut members = Vec::new();
        let mut ts_from = i64::MIN;
        let mut ts_to = i64::MAX;
        let mut segment_time = Vec::new();
        let mut value_cmps: Vec<(CmpOp, f64)> = Vec::new();
        let mut empty = false;
        for predicate in &query.predicates {
            match predicate {
                Predicate::TidIn(list) => {
                    let set: Vec<Tid> = match &tids {
                        None => list.clone(),
                        Some(prev) => prev.iter().copied().filter(|t| list.contains(t)).collect(),
                    };
                    empty |= set.is_empty();
                    tids = Some(set);
                }
                Predicate::MemberEq { column, value } => {
                    let Some((dim, level)) = self.catalog.dimensions.resolve_level(column) else {
                        return Err(MdbError::Query(format!("unknown column {column}")));
                    };
                    match self.catalog.dimensions.member_id(value) {
                        Some(m) => {
                            members.push((dim, level, m));
                            // Narrow the tid set through the inverted index.
                            let with: Vec<Tid> = self
                                .catalog
                                .dimensions
                                .tids_with_member(dim, level, m)
                                .to_vec();
                            let set: Vec<Tid> = match &tids {
                                None => with,
                                Some(prev) => {
                                    prev.iter().copied().filter(|t| with.contains(t)).collect()
                                }
                            };
                            empty |= set.is_empty();
                            tids = Some(set);
                        }
                        None => empty = true,
                    }
                }
                Predicate::Time { column, op, value } => match column {
                    TimeColumn::Ts => match op {
                        CmpOp::Eq => {
                            ts_from = ts_from.max(*value);
                            ts_to = ts_to.min(*value);
                        }
                        CmpOp::Ge => ts_from = ts_from.max(*value),
                        CmpOp::Gt => ts_from = ts_from.max(value + 1),
                        CmpOp::Le => ts_to = ts_to.min(*value),
                        CmpOp::Lt => ts_to = ts_to.min(value - 1),
                    },
                    _ => segment_time.push((*column, *op, *value)),
                },
                Predicate::Value { op, value } => value_cmps.push((*op, *value)),
            }
        }
        empty |= ts_from > ts_to;

        // Fold the value comparisons into one raw-domain interval. Strict
        // comparisons are widened to closed bounds — pruning needs only an
        // over-approximation; the exact ops re-run per data point.
        let mut value_range = ValueInterval::ALL;
        for (op, v) in &value_cmps {
            let bound = match op {
                CmpOp::Eq => ValueInterval::point(*v),
                CmpOp::Lt | CmpOp::Le => ValueInterval::new(f64::NEG_INFINITY, *v),
                CmpOp::Gt | CmpOp::Ge => ValueInterval::new(*v, f64::INFINITY),
            };
            value_range = value_range.intersection(&bound);
        }
        empty |= value_range.is_empty();

        let mut gids = tids.as_ref().map(|list| self.catalog.gids_for_tids(list));
        // An engine scoped to a gid subset intersects the scope into the
        // push-down, so out-of-scope segments are pruned like any other
        // non-match (a `Some(vec![])` push-down matches nothing).
        if let Some(scope) = self.gid_scope {
            gids = Some(match gids {
                Some(list) => list.into_iter().filter(|g| scope.contains(g)).collect(),
                None => scope.to_vec(),
            });
        }
        let mut pushdown = SegmentPredicate {
            gids,
            ..SegmentPredicate::default()
        };
        if ts_from != i64::MIN {
            pushdown.from = Some(ts_from);
        }
        if ts_to != i64::MAX {
            pushdown.to = Some(ts_to);
        }
        // Map the raw-value interval into the *stored* (scaled) domain for
        // the zone-map push-down: a segment run can only match if its stored
        // range intersects the union of the candidate series' scaled images.
        // The union is widened by a couple of ulps because this mapping
        // multiplies by the scaling constant while the exact per-point
        // filter divides by it — the two roundings may disagree at the
        // boundary, and pruning must never exclude a point the filter would
        // accept.
        if !value_cmps.is_empty() && !empty && value_range != ValueInterval::ALL {
            let mut stored = ValueInterval::EMPTY;
            match &tids {
                Some(list) => {
                    for tid in list {
                        stored = stored.union(&value_range.scaled(self.catalog.scaling_of(*tid)));
                    }
                }
                None => {
                    for meta in &self.catalog.series {
                        stored = stored.union(&value_range.scaled(meta.scaling));
                    }
                }
            }
            pushdown.values = Some(stored.widened());
        }
        // Sound push-down from segment-time comparisons.
        for (column, op, value) in &segment_time {
            match (column, op) {
                (TimeColumn::EndTime, CmpOp::Ge) | (TimeColumn::EndTime, CmpOp::Gt) => {
                    pushdown.from = Some(pushdown.from.map_or(*value, |f| f.max(*value)));
                }
                (TimeColumn::StartTime, CmpOp::Le) | (TimeColumn::StartTime, CmpOp::Lt) => {
                    pushdown.to = Some(pushdown.to.map_or(*value, |t| t.min(*value)));
                }
                _ => {}
            }
        }
        Ok(Rewritten {
            tids,
            members,
            ts_from,
            ts_to,
            segment_time,
            value_cmps,
            pushdown,
            empty,
        })
    }

    // ------------------------------------------------ aggregate (Alg 5) --

    /// The worker half of Algorithms 5 and 6: initialize + iterate over the
    /// local store, producing partial accumulators per group key.
    pub fn aggregate_partial(&self, query: &Query) -> Result<PartialAggregates> {
        let aggs: Vec<(AggFunc, Option<TimeLevel>)> = query
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Agg { func, cube } => Some((*func, *cube)),
                _ => None,
            })
            .collect();
        let cube_levels: Vec<TimeLevel> = {
            let mut ls: Vec<TimeLevel> = aggs.iter().filter_map(|(_, c)| *c).collect();
            ls.dedup();
            ls
        };
        if cube_levels.len() > 1 {
            return Err(MdbError::Query(
                "only one CUBE time level per query is supported".into(),
            ));
        }
        let cube = cube_levels.first().copied();
        if cube.is_some() && aggs.iter().any(|(_, c)| c.is_none()) {
            return Err(MdbError::Query(
                "cannot mix CUBE_* and plain aggregates".into(),
            ));
        }
        // Validate plain columns appear in GROUP BY.
        for item in &query.items {
            if let SelectItem::Column(c) = item {
                if !query.group_by.iter().any(|g| g.eq_ignore_ascii_case(c)) {
                    return Err(MdbError::Query(format!(
                        "column {c} must appear in GROUP BY when aggregating"
                    )));
                }
            }
        }

        let rw = self.rewrite(query)?;
        if rw.empty {
            return Ok(PartialAggregates::default());
        }

        // The time level this query buckets at: an explicit CUBE level, or
        // the finest configured rollup level for an eligible plain
        // aggregate. Bucketing fixes the float association to a per-(tid,
        // bucket) left fold in scan order — the association the incremental
        // rollup cells are maintained with — so the materialized and
        // scanned paths are bit-identical and toggling serving never
        // changes an output.
        let bucket = cube.or_else(|| self.plain_bucket_level(query, &rw));
        if let Some(level) = bucket {
            if self.rollup_serve
                && query.view == View::Segment
                && rw.value_cmps.is_empty()
                && rw.segment_time.is_empty()
                && self.rollup_levels.contains(&level)
            {
                if let Some(partial) = self.serve_from_rollups(query, &rw, &aggs, level)? {
                    return Ok(partial);
                }
            }
        }

        // Collect the surviving runs once — the store's zone map (and, for
        // the out-of-core store, its per-block statistics) has already
        // skipped runs or whole on-disk blocks outside the time range or
        // value predicate — then evaluate fold groups (possibly in
        // parallel) and fold the group partials back in scan order. A
        // block-backed run shares its cached block, so the collect costs
        // one `Arc` clone per surviving block and segments are evaluated
        // as borrowed views — no per-segment allocation anywhere on this
        // path. Group boundaries and the fold order depend only on the
        // scan order and survivor count, so every parallelism setting
        // performs the same float operations in the same order.
        let runs = RunSet::collect(self.store, &rw.pushdown)?;
        let per_group = self.group_partials(query, &rw, &aggs, bucket, runs)?;
        let mut partial = PartialAggregates::default();
        for group_partial in per_group {
            merge_partials(&mut partial, group_partial);
        }
        Ok(partial)
    }

    /// The bucketing level for a plain (non-CUBE) aggregate, or `None` to
    /// scan unbucketed. Only whole-store-association-free queries are
    /// eligible: Segment View (model-based aggregation, the association the
    /// rollup feed uses), no per-point `Value` filter, and no raw
    /// segment-time comparisons (a `StartTime`/`EndTime` predicate keeps or
    /// drops *whole segments*, which cells cannot express). `TS` range
    /// bounds stay eligible — partial edge buckets are scanned.
    fn plain_bucket_level(&self, query: &Query, rw: &Rewritten) -> Option<TimeLevel> {
        if query.view != View::Segment || !rw.value_cmps.is_empty() || !rw.segment_time.is_empty() {
            return None;
        }
        mdb_storage::rollup::finest_level(self.rollup_levels)
    }

    /// Whether the bucket starting at `b` lies entirely inside the query's
    /// `TS` range, so its materialized cell covers exactly what a scan
    /// would visit. A saturated `next_boundary` (bucket runs past
    /// `i64::MAX`) still compares correctly: the bucket is only covered by
    /// an unbounded upper range.
    fn bucket_covered(level: TimeLevel, b: Timestamp, from: Timestamp, to: Timestamp) -> bool {
        (from == i64::MIN || b >= from)
            && (to == i64::MAX || time::next_boundary(level, b).saturating_sub(1) <= to)
    }

    /// Answers a bucketed aggregate from the store's materialized rollup
    /// cells: covered buckets become per-(tid, bucket) partials straight
    /// from the cells (no segment bodies are read), and the at-most-two
    /// partial buckets at the range edges are scanned through the ordinary
    /// bucketed path with the `TS` bounds narrowed to the partial windows.
    /// Returns `Ok(None)` when the store cannot serve (no rollup feed, a
    /// poisoned cell set, or the level is not materialized) — the caller
    /// falls back to the full bucketed scan, which produces bit-identical
    /// partials.
    fn serve_from_rollups(
        &self,
        query: &Query,
        rw: &Rewritten,
        aggs: &[(AggFunc, Option<TimeLevel>)],
        level: TimeLevel,
    ) -> Result<Option<PartialAggregates>> {
        let evaluator = self.evaluator();
        let mut partial = PartialAggregates::default();
        let mut cell_error: Option<MdbError> = None;
        // Cells arrive grouped by tid, so the group columns (catalog
        // lookups) are resolved once per tid, not once per cell.
        let mut prefix: Option<(Tid, Vec<KeyCell>)> = None;
        let served = self.store.rollup_cells(
            level,
            rw.pushdown.gids.as_deref(),
            &mut |_gid, tid, bucket, acc| {
                if cell_error.is_some()
                    || !Self::bucket_covered(level, bucket, rw.ts_from, rw.ts_to)
                    || !evaluator.tid_matches(rw, tid)
                {
                    return;
                }
                match &prefix {
                    Some((t, _)) if *t == tid => {}
                    _ => {
                        let mut cells = Vec::with_capacity(query.group_by.len());
                        for column in &query.group_by {
                            match evaluator.key_cell(column, tid) {
                                Ok(cell) => cells.push(cell),
                                Err(e) => {
                                    cell_error = Some(e);
                                    return;
                                }
                            }
                        }
                        prefix = Some((tid, cells));
                    }
                }
                let (_, cells) = prefix.as_ref().expect("the prefix was just filled");
                let mut key: Vec<KeyCell> = Vec::with_capacity(cells.len() + 2);
                key.extend_from_slice(cells);
                key.push(KeyCell::Int(i64::from(tid)));
                key.push(KeyCell::Int(bucket));
                let acc = Accumulator {
                    count: acc.count,
                    sum: acc.sum,
                    min: acc.min,
                    max: acc.max,
                };
                partial.insert(key, vec![acc; aggs.len()]);
            },
        )?;
        if let Some(e) = cell_error {
            return Err(e);
        }
        if !served {
            return Ok(None);
        }
        // Scan the partial buckets at the edges of the TS range (at most a
        // leading and a trailing window; one window when both edges fall in
        // the same bucket). Their keys are disjoint from every served cell,
        // so the merge order cannot affect any accumulator.
        for (lo, hi) in Self::edge_windows(level, rw.ts_from, rw.ts_to) {
            let mut rw_edge = rw.clone();
            rw_edge.ts_from = lo;
            rw_edge.ts_to = hi;
            rw_edge.pushdown.from = Some(lo);
            rw_edge.pushdown.to = Some(hi);
            let runs = RunSet::collect(self.store, &rw_edge.pushdown)?;
            for group_partial in self.group_partials(query, &rw_edge, aggs, Some(level), runs)? {
                merge_partials(&mut partial, group_partial);
            }
        }
        Ok(Some(partial))
    }

    /// The sub-ranges of `[from, to]` that lie in partially-covered
    /// buckets of `level` — empty when both edges are bucket-aligned (or
    /// unbounded).
    fn edge_windows(
        level: TimeLevel,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<(Timestamp, Timestamp)> {
        let lead = (from != i64::MIN && time::truncate(level, from) != from)
            .then(|| time::truncate(level, from));
        let trail = (to != i64::MAX && time::next_boundary(level, to) != to.saturating_add(1))
            .then(|| time::truncate(level, to));
        match (lead, trail) {
            (Some(a), Some(b)) if a == b => vec![(from, to)],
            (lead, trail) => {
                let mut windows = Vec::new();
                if lead.is_some() {
                    windows.push((from, to.min(time::next_boundary(level, from) - 1)));
                }
                if let Some(b) = trail {
                    windows.push((from.max(b), to));
                }
                windows
            }
        }
    }

    /// Evaluates each fold group into its own fresh [`PartialAggregates`],
    /// in input order — on the attached [`ScanPool`] when one is present
    /// and the work warrants it, on scoped threads under an explicit
    /// parallelism setting, sequentially otherwise.
    ///
    /// Fold groups are [`fold_group_size`] segments, except under a `Value`
    /// filter where each segment folds alone: value pruning removes
    /// segments that an unpruned scan would visit (and find contributing
    /// nothing), and per-segment folding makes such no-op segments
    /// irrelevant to the float association — so pruned and unpruned
    /// value-filtered scans stay exactly equal, not just approximately.
    fn group_partials(
        &self,
        query: &Query,
        rw: &Rewritten,
        aggs: &[(AggFunc, Option<TimeLevel>)],
        cube: Option<TimeLevel>,
        runs: RunSet,
    ) -> Result<Vec<PartialAggregates>> {
        let n_segments = runs.len();
        let fold_size = fold_group_size(n_segments, !rw.value_cmps.is_empty() || cube.is_some());
        if let Some(pool) = self.pool {
            let threshold = self
                .pool_threshold
                .unwrap_or_else(|| pool_bypass_threshold(pool.workers()));
            if pool.workers() > 1 && n_segments >= threshold {
                return pool.execute(ScanContext {
                    query: query.clone(),
                    rw: rw.clone(),
                    aggs: aggs.to_vec(),
                    cube,
                    runs,
                    fold_size,
                    chunk_size: fold_size, // recomputed by execute()
                });
            }
        }
        let evaluator = self.evaluator();
        let one =
            |lo: usize, hi: usize| evaluator.group_partial(query, rw, aggs, cube, &runs, lo, hi);
        let n_chunks = n_segments.div_ceil(fold_size);
        // With a pool attached, a scan below its bypass threshold is
        // cheapest inline — never worth per-query scoped thread start-up.
        let workers = match self.parallelism {
            _ if self.pool.is_some() => 1,
            0 | 1 => 1,
            n => n.min(n_chunks),
        };
        if workers <= 1 {
            return (0..n_chunks)
                .map(|chunk| {
                    let lo = chunk * fold_size;
                    one(lo, (lo + fold_size).min(n_segments))
                })
                .collect();
        }

        let (job_tx, job_rx) = crossbeam_channel::unbounded::<usize>();
        for chunk in 0..n_chunks {
            let _ = job_tx.send(chunk);
        }
        drop(job_tx);
        let (result_tx, result_rx) =
            crossbeam_channel::unbounded::<(usize, Result<PartialAggregates>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                let one = &one;
                scope.spawn(move || {
                    while let Ok(chunk) = job_rx.recv() {
                        let lo = chunk * fold_size;
                        let hi = (lo + fold_size).min(n_segments);
                        let partial = one(lo, hi);
                        if result_tx.send((chunk, partial)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(result_tx);
        let mut by_chunk: Vec<Option<Result<PartialAggregates>>> =
            (0..n_chunks).map(|_| None).collect();
        while let Ok((chunk, partial)) = result_rx.recv() {
            by_chunk[chunk] = Some(partial);
        }
        let mut out = Vec::with_capacity(n_chunks);
        for partial in by_chunk {
            let partial = partial
                .ok_or_else(|| MdbError::Query("scan worker died without a result".into()))?;
            out.push(partial?);
        }
        Ok(out)
    }

    // ------------------------------------------------ sketch functions --

    /// Validates a sketch query and returns its functions in SELECT order.
    /// Sketches summarize *everything stored* — they cannot be filtered or
    /// grouped after the fact — so WHERE, GROUP BY, and mixing with other
    /// select items are rejected rather than silently ignored.
    fn sketch_items(query: &Query) -> Result<Vec<SketchFunc>> {
        let mut funcs = Vec::new();
        for item in &query.items {
            match item {
                SelectItem::Sketch(func) => funcs.push(func.clone()),
                other => {
                    return Err(MdbError::Query(format!(
                        "sketch functions cannot be mixed with {other:?}"
                    )))
                }
            }
        }
        if query.view != View::Segment {
            return Err(MdbError::Query(
                "sketch functions require FROM Segment".into(),
            ));
        }
        if !query.predicates.is_empty() {
            return Err(MdbError::Query(
                "sketch functions summarize the whole store; WHERE is not supported".into(),
            ));
        }
        if !query.group_by.is_empty() {
            return Err(MdbError::Query(
                "sketch functions do not support GROUP BY".into(),
            ));
        }
        if funcs.iter().any(|f| matches!(f, SketchFunc::TopK(_))) && funcs.len() > 1 {
            return Err(MdbError::Query(
                "TOP_K_S returns one row per series and must be the only select item".into(),
            ));
        }
        Ok(funcs)
    }

    /// The worker half of a sketch query: merge the store's per-group
    /// sketches (restricted to the engine's gid scope) **without touching
    /// segment bodies**. Erroring instead of falling back to a scan is
    /// deliberate: sketch functions promise metadata-only cost, and a store
    /// that cannot honor that (no feed, or an unsketchable segment) must say
    /// so rather than silently change its complexity class.
    pub fn sketch_partial(&self, query: &Query) -> Result<BlockSketch> {
        Self::sketch_items(query)?;
        self.store.merge_sketches(self.gid_scope)?.ok_or_else(|| {
            MdbError::Query(
                "sketch functions need a sketch-maintaining store \
                 (no sketch feed configured, or a segment could not be sketched)"
                    .into(),
            )
        })
    }

    /// The master half: merge worker sketch partials and evaluate the
    /// functions. Sketch merging is commutative and associative, so any
    /// partial order and nesting yields the same result — the property the
    /// cluster relies on for identical answers at every rf and worker count.
    pub fn finalize_sketches(query: &Query, partials: Vec<BlockSketch>) -> Result<QueryResult> {
        let funcs = Self::sketch_items(query)?;
        let mut merged = BlockSketch::new();
        for partial in &partials {
            merged.merge(partial);
        }
        if let [SketchFunc::TopK(k)] = funcs.as_slice() {
            let name = SketchFunc::TopK(*k).column_name();
            let mut result = QueryResult::new(vec!["Tid".into(), name]);
            for (tid, count) in merged.topk.top_k(*k) {
                result
                    .rows
                    .push(vec![Cell::Int(i64::from(tid)), Cell::Int(count as i64)]);
            }
            return Ok(result);
        }
        let mut result = QueryResult::new(funcs.iter().map(SketchFunc::column_name).collect());
        let row = funcs
            .iter()
            .map(|func| match func {
                SketchFunc::Pctl(q) => match merged.quantiles.quantile(*q) {
                    Some(v) => Cell::Float(v),
                    None => Cell::Null,
                },
                SketchFunc::CountDistinct => Cell::Int(merged.distinct.estimate().round() as i64),
                SketchFunc::TopK(_) => unreachable!("TOP_K_S handled above"),
            })
            .collect();
        result.rows.push(row);
        Ok(result)
    }
}

/// Builds the ingest-time sketch feed for a store (the closure behind
/// [`mdb_storage::SketchFeedFn`]): reconstructs every data point of a
/// segment with exactly the arithmetic the Data Point View uses —
/// `grid[idx × n_present + series_pos] / scaling` — and feeds the values
/// into the quantile sketch, each present Tid into the distinct sketch, and
/// each series' point count into the top-k sketch. Returns `false` (sketches
/// fail open) when the segment references an unknown group or cannot be
/// decoded.
pub fn sketch_feed(catalog: &Arc<Catalog>, registry: &Arc<ModelRegistry>) -> SketchFeedFn {
    let catalog = Arc::clone(catalog);
    let registry = Arc::clone(registry);
    Arc::new(move |segment, sketch| {
        let Some(group) = catalog.group(segment.gid) else {
            return false;
        };
        let group_size = group.size();
        let n_present = segment.gaps.count_present(group_size);
        if n_present == 0 {
            return true;
        }
        let mut cursor = SegmentCursor::new(segment.view(), n_present);
        let Some(grid) = cursor.grid(&registry) else {
            return false;
        };
        let ticks = grid.len() / n_present;
        for (series_pos, member_pos) in segment.gaps.present_positions(group_size).enumerate() {
            let tid = group.tids[member_pos];
            let scaling = catalog.scaling_of(tid);
            sketch.distinct.insert(u64::from(tid));
            sketch.topk.add(tid, ticks as u64);
            for idx in 0..ticks {
                sketch
                    .quantiles
                    .insert(f64::from(grid[idx * n_present + series_pos]) / scaling);
            }
        }
        true
    })
}

/// Builds the ingest-time rollup feed for a store (the closure behind
/// [`mdb_storage::RollupFeedFn`]): for every present series of a finalized
/// segment and every configured time level, the segment's tick range is
/// split at calendar boundaries ([`split_at_boundaries`]) and each
/// sub-range is aggregated with **exactly** the arithmetic the Segment
/// View's bucketed scan uses — a fresh [`Accumulator`] folded with
/// [`Accumulator::add_segment_agg`] over the model's constant-time
/// aggregate — so a cell built incrementally from these deltas is
/// bit-identical to the per-(tid, bucket) partial a scan would produce.
/// Returns `None` (poisoning the cells; queries fall back to scanning)
/// when the segment references an unknown group or cannot be aggregated.
pub fn rollup_feed(
    catalog: &Arc<Catalog>,
    registry: &Arc<ModelRegistry>,
    levels: &[TimeLevel],
) -> RollupFeed {
    let catalog = Arc::clone(catalog);
    let registry = Arc::clone(registry);
    let feed_levels = levels.to_vec();
    RollupFeed {
        levels: levels.to_vec(),
        feed: Arc::new(move |segment: &mdb_types::SegmentRecord| {
            let group = catalog.group(segment.gid)?;
            let group_size = group.size();
            let n_present = segment.gaps.count_present(group_size);
            if n_present == 0 {
                return Some(Vec::new());
            }
            let mut cursor = SegmentCursor::new(segment.view(), n_present);
            let last_tick = cursor.segment.len() - 1;
            let mut deltas = Vec::new();
            for (series_pos, member_pos) in segment.gaps.present_positions(group_size).enumerate() {
                let tid = group.tids[member_pos];
                let scaling = catalog.scaling_of(tid);
                for &level in &feed_levels {
                    for (bucket, sub) in split_at_boundaries(segment.view(), (0, last_tick), level)
                    {
                        let agg = cursor.aggregate_with(&registry, series_pos, sub, true)?;
                        let mut acc = Accumulator::new();
                        acc.add_segment_agg(agg, (sub.1 - sub.0 + 1) as u64, scaling);
                        deltas.push(RollupDelta {
                            tid,
                            level,
                            bucket,
                            acc: RollupAcc {
                                count: acc.count,
                                sum: acc.sum,
                                min: acc.min,
                                max: acc.max,
                            },
                        });
                    }
                }
            }
            Some(deltas)
        }),
    }
}

impl<'a> SegmentEvaluator<'a> {
    /// Evaluates one fold group — global scan indices `lo..hi` of the
    /// collected runs — into a fresh partial-aggregate map, the unit of
    /// work a scan worker (pooled, scoped, or inline) executes. Within the
    /// group, segments accumulate in order into the same map, exactly like
    /// a sequential scan over the group.
    #[allow(clippy::too_many_arguments)]
    fn group_partial(
        &self,
        query: &Query,
        rw: &Rewritten,
        aggs: &[(AggFunc, Option<TimeLevel>)],
        cube: Option<TimeLevel>,
        runs: &RunSet,
        lo: usize,
        hi: usize,
    ) -> Result<PartialAggregates> {
        let mut partial = PartialAggregates::default();
        runs.for_each_in(lo, hi, &mut |segment| {
            self.iterate_segment(query, rw, aggs, cube, segment, &mut partial)
        })?;
        Ok(partial)
    }

    /// Whether the raw value `v` passes every `Value` comparison.
    fn value_matches(rw: &Rewritten, v: f64) -> bool {
        rw.value_cmps.iter().all(|(op, bound)| match op {
            CmpOp::Eq => v == *bound,
            CmpOp::Lt => v < *bound,
            CmpOp::Le => v <= *bound,
            CmpOp::Gt => v > *bound,
            CmpOp::Ge => v >= *bound,
        })
    }

    fn segment_time_matches(rw: &Rewritten, segment: &SegmentView<'_>) -> bool {
        rw.segment_time.iter().all(|(column, op, value)| {
            let field = match column {
                TimeColumn::StartTime => segment.start_time,
                TimeColumn::EndTime => segment.end_time,
                TimeColumn::Ts => unreachable!("TS handled as data point bound"),
            };
            match op {
                CmpOp::Eq => field == *value,
                CmpOp::Lt => field < *value,
                CmpOp::Le => field <= *value,
                CmpOp::Gt => field > *value,
                CmpOp::Ge => field >= *value,
            }
        })
    }

    fn tid_matches(&self, rw: &Rewritten, tid: Tid) -> bool {
        if let Some(tids) = &rw.tids {
            if !tids.contains(&tid) {
                return false;
            }
        }
        rw.members.iter().all(|(dim, level, member)| {
            self.catalog.dimensions.member(tid, *dim, *level) == Some(*member)
        })
    }

    /// Resolves a group-by column for `tid` into a key cell.
    fn key_cell(&self, column: &str, tid: Tid) -> Result<KeyCell> {
        if column.eq_ignore_ascii_case("tid") {
            return Ok(KeyCell::Int(i64::from(tid)));
        }
        let Some((dim, level)) = self.catalog.dimensions.resolve_level(column) else {
            return Err(MdbError::Query(format!("unknown GROUP BY column {column}")));
        };
        match self.catalog.dimensions.member(tid, dim, level) {
            Some(m) => Ok(KeyCell::Str(
                self.catalog.dimensions.member_name(m).to_string(),
            )),
            None => Ok(KeyCell::Str(String::new())),
        }
    }

    /// The `iterate` step over one segment (a borrowed view — block-backed
    /// segments are evaluated straight out of the cached buffer).
    fn iterate_segment(
        &self,
        query: &Query,
        rw: &Rewritten,
        aggs: &[(AggFunc, Option<TimeLevel>)],
        cube: Option<TimeLevel>,
        segment: SegmentView<'_>,
        partial: &mut PartialAggregates,
    ) -> Result<()> {
        if !Self::segment_time_matches(rw, &segment) {
            return Ok(());
        }
        let group = self.catalog.group(segment.gid).ok_or_else(|| {
            MdbError::Corrupt(format!("segment references unknown gid {}", segment.gid))
        })?;
        let group_size = group.size();
        let n_present = segment.gaps.count_present(group_size);
        let mut cursor = SegmentCursor::new(segment, n_present);
        // Tick index range selected by the TS bounds.
        let si = segment.sampling_interval;
        let lo_ts = rw.ts_from.max(segment.start_time);
        let hi_ts = rw.ts_to.min(segment.end_time);
        if lo_ts > hi_ts {
            return Ok(());
        }
        let idx_lo = ((lo_ts - segment.start_time) + si - 1) / si;
        let idx_hi = (hi_ts - segment.start_time) / si;
        if idx_lo > idx_hi {
            return Ok(());
        }
        let range = (idx_lo as usize, idx_hi as usize);

        for (series_pos, member_pos) in segment.gaps.present_positions(group_size).enumerate() {
            let tid = group.tids[member_pos];
            if !self.tid_matches(rw, tid) {
                continue;
            }
            let scaling = self.catalog.scaling_of(tid);
            let mut key: Vec<KeyCell> = Vec::with_capacity(query.group_by.len() + 1);
            for column in &query.group_by {
                key.push(self.key_cell(column, tid)?);
            }
            // Aggregates on the Data Point View run over reconstructed
            // values; only the Segment View may use the models directly.
            // A Value predicate forces per-point evaluation on either view:
            // constant-time model aggregates cannot apply a point filter.
            let use_models = query.view == View::Segment;
            let filtered = !rw.value_cmps.is_empty();
            match cube {
                None if filtered => {
                    let scratch = Self::filtered_accumulator(
                        self.registry,
                        rw,
                        &mut cursor,
                        series_pos,
                        range,
                        scaling,
                    )?;
                    if scratch.count > 0 {
                        let accs = partial
                            .entry(key)
                            .or_insert_with(|| vec![Accumulator::new(); aggs.len()]);
                        for acc in accs.iter_mut() {
                            acc.merge(&scratch);
                        }
                    }
                }
                None => {
                    let agg = cursor
                        .aggregate_with(self.registry, series_pos, range, use_models)
                        .ok_or_else(|| MdbError::Corrupt("undecodable segment".into()))?;
                    let accs = partial
                        .entry(key)
                        .or_insert_with(|| vec![Accumulator::new(); aggs.len()]);
                    let count = (range.1 - range.0 + 1) as u64;
                    for acc in accs.iter_mut() {
                        acc.add_segment_agg(agg, count, scaling);
                    }
                }
                Some(level) => {
                    // Algorithm 6: split the tick range at calendar
                    // boundaries; each sub-interval lands in its own bucket.
                    // Partial keys carry a (tid, bucket-start) suffix — the
                    // same granularity rollup cells are materialized at —
                    // which `finalize_aggregates` folds away in sorted key
                    // order, so the served and scanned paths (and every
                    // cluster layout) combine the exact same accumulators
                    // in the exact same order.
                    for (bucket_start, sub) in split_at_boundaries(segment, range, level) {
                        let mut bucket_key = key.clone();
                        bucket_key.push(KeyCell::Int(i64::from(tid)));
                        bucket_key.push(KeyCell::Int(bucket_start));
                        if filtered {
                            let scratch = Self::filtered_accumulator(
                                self.registry,
                                rw,
                                &mut cursor,
                                series_pos,
                                sub,
                                scaling,
                            )?;
                            if scratch.count > 0 {
                                let accs = partial
                                    .entry(bucket_key)
                                    .or_insert_with(|| vec![Accumulator::new(); aggs.len()]);
                                for acc in accs.iter_mut() {
                                    acc.merge(&scratch);
                                }
                            }
                            continue;
                        }
                        let agg = cursor
                            .aggregate_with(self.registry, series_pos, sub, use_models)
                            .ok_or_else(|| MdbError::Corrupt("undecodable segment".into()))?;
                        let accs = partial
                            .entry(bucket_key)
                            .or_insert_with(|| vec![Accumulator::new(); aggs.len()]);
                        let count = (sub.1 - sub.0 + 1) as u64;
                        for acc in accs.iter_mut() {
                            acc.add_segment_agg(agg, count, scaling);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Accumulates the points of one series over a tick range that pass the
    /// rewrite's `Value` comparisons, reconstructing values from the grid.
    fn filtered_accumulator(
        registry: &ModelRegistry,
        rw: &Rewritten,
        cursor: &mut SegmentCursor<'_>,
        series_pos: usize,
        range: (usize, usize),
        scaling: f64,
    ) -> Result<Accumulator> {
        let stride = cursor.n_series;
        let grid = cursor
            .grid(registry)
            .ok_or_else(|| MdbError::Corrupt("undecodable segment".into()))?;
        let mut acc = Accumulator::new();
        for idx in range.0..=range.1 {
            let stored = grid[idx * stride + series_pos];
            if Self::value_matches(rw, f64::from(stored) / scaling) {
                acc.add_value(stored, scaling);
            }
        }
        Ok(acc)
    }
}

impl<'a> QueryEngine<'a> {
    /// The master half: merge worker partials and finalize (Algorithm 5's
    /// `mergeResults` + `finalize`).
    pub fn finalize_aggregates(
        query: &Query,
        partials: Vec<PartialAggregates>,
    ) -> Result<QueryResult> {
        let aggs: Vec<(AggFunc, Option<TimeLevel>)> = query
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Agg { func, cube } => Some((*func, *cube)),
                _ => None,
            })
            .collect();
        let cube = aggs.iter().find_map(|(_, c)| *c);

        let mut merged = PartialAggregates::default();
        for partial in partials {
            merge_partials(&mut merged, partial);
        }

        // Bucketed partials (CUBE queries and rollup-eligible plain
        // aggregates) carry a (tid, bucket-start) key suffix. Fold it away
        // in ascending (tid, bucket) order: every path that can produce
        // these partials — materialized cells, bucketed scan, any cluster
        // layout — arrives at identical per-(tid, bucket) accumulators, so
        // folding them in one deterministic order makes the final rows
        // bit-identical everywhere. The integer suffix alone determines the
        // whole key (every group column is a function of the tid), so it is
        // a total order over the partials — and far cheaper to sort by than
        // the full heterogeneous keys; with tens of thousands of buckets
        // the sort is on the served path's critical path. For CUBE queries
        // the bucket start becomes the display date-part; for plain
        // aggregates the suffix folds away entirely.
        let suffix_len = query.group_by.len() + 2;
        if merged.keys().next().is_some_and(|k| k.len() == suffix_len) {
            let mut items: Vec<(i64, i64, Vec<KeyCell>, Vec<Accumulator>)> = merged
                .drain()
                .map(|(key, accs)| {
                    let [.., KeyCell::Int(tid), KeyCell::Int(bucket)] = key.as_slice() else {
                        unreachable!("the key suffix is always a pair of Int cells")
                    };
                    (*tid, *bucket, key, accs)
                })
                .collect();
            items.sort_unstable_by_key(|&(tid, bucket, ..)| (tid, bucket));
            let mut folded = PartialAggregates::default();
            let mut scratch: Vec<KeyCell> = Vec::new();
            for (_, bucket, key, accs) in items {
                scratch.clear();
                scratch.extend_from_slice(&key[..query.group_by.len()]);
                if let Some(level) = cube {
                    scratch.push(KeyCell::Int(time::part(level, bucket)));
                }
                match folded.get_mut(scratch.as_slice()) {
                    Some(mine) => {
                        for (mine, theirs) in mine.iter_mut().zip(&accs) {
                            mine.merge(theirs);
                        }
                    }
                    None => {
                        folded.insert(scratch.clone(), accs);
                    }
                }
            }
            merged = folded;
        }

        // Column layout: SELECT order, with the implicit time-part column
        // inserted before the first CUBE aggregate.
        let mut columns = Vec::new();
        for item in &query.items {
            match item {
                SelectItem::Column(c) => columns.push(c.clone()),
                SelectItem::Agg { func, cube } => {
                    if let Some(level) = cube {
                        let level_name = format!("{level:?}");
                        if !columns
                            .iter()
                            .any(|c: &String| c.eq_ignore_ascii_case(&level_name))
                        {
                            columns.push(level_name);
                        }
                        columns.push(format!("CUBE_{:?}_{:?}(*)", func, level).to_uppercase());
                    } else {
                        columns.push(format!("{func:?}_S(*)").to_uppercase());
                    }
                }
                SelectItem::AllColumns => {
                    return Err(MdbError::Query(
                        "SELECT * cannot be combined with aggregates".into(),
                    ));
                }
                SelectItem::Sketch(_) => {
                    return Err(MdbError::Query(
                        "sketch functions cannot be combined with aggregates".into(),
                    ));
                }
            }
        }
        let mut result = QueryResult::new(columns);

        // Deterministic output order: sort keys.
        let mut keys: Vec<Vec<KeyCell>> = merged.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let accs = &merged[&key];
            let mut row = Vec::new();
            let mut agg_idx = 0;
            let mut key_idx = 0;
            for item in &query.items {
                match item {
                    SelectItem::Column(_) => {
                        row.push(key[key_idx].to_cell());
                        key_idx += 1;
                    }
                    SelectItem::Agg { func, .. } => {
                        if cube.is_some() && agg_idx == 0 {
                            // The time-part key is the last key component.
                            row.push(key.last().unwrap().to_cell());
                        }
                        match accs[agg_idx].finalize(*func) {
                            Some(v) if *func == AggFunc::Count => row.push(Cell::Int(v as i64)),
                            Some(v) => row.push(Cell::Float(v)),
                            None => row.push(Cell::Null),
                        }
                        agg_idx += 1;
                    }
                    SelectItem::AllColumns | SelectItem::Sketch(_) => {
                        unreachable!("rejected while laying out columns")
                    }
                }
            }
            result.rows.push(row);
        }
        Ok(result)
    }

    // ------------------------------------------------------- listing --

    /// The non-aggregate path: Segment View listing or Data Point View
    /// reconstruction (the P/R workload).
    pub fn listing(&self, query: &Query) -> Result<QueryResult> {
        let rw = self.rewrite(query)?;
        if query.view == View::Segment && !rw.value_cmps.is_empty() {
            return Err(MdbError::Query(
                "Value predicates require the Data Point View or aggregates".into(),
            ));
        }
        let columns = self.listing_columns(query)?;
        let mut result = QueryResult::new(columns.clone());
        if rw.empty {
            return Ok(result);
        }
        let mut scan_error = None;
        self.store.scan_runs(&rw.pushdown, &mut |run| {
            if scan_error.is_some() {
                return;
            }
            for segment in run.segments() {
                if let Err(e) = self.list_segment(query, &rw, &columns, segment, &mut result) {
                    scan_error = Some(e);
                    break;
                }
            }
        })?;
        if let Some(e) = scan_error {
            return Err(e);
        }
        Ok(result)
    }

    fn listing_columns(&self, query: &Query) -> Result<Vec<String>> {
        let dim_columns: Vec<String> = self
            .catalog
            .dimensions
            .schemas()
            .iter()
            .flat_map(|s| {
                (1..=s.height())
                    .map(|l| s.level_name(l).unwrap().to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        let base: Vec<String> = match query.view {
            View::Segment => ["Tid", "StartTime", "EndTime", "SI", "Mid", "Gaps"]
                .iter()
                .map(|s| s.to_string())
                .chain(dim_columns.clone())
                .collect(),
            View::DataPoint => ["Tid", "TS", "Value"]
                .iter()
                .map(|s| s.to_string())
                .chain(dim_columns.clone())
                .collect(),
        };
        let mut out = Vec::new();
        for item in &query.items {
            match item {
                SelectItem::AllColumns => out.extend(base.iter().cloned()),
                SelectItem::Column(c) => {
                    let canonical = base
                        .iter()
                        .find(|b| b.eq_ignore_ascii_case(c))
                        .ok_or_else(|| MdbError::Query(format!("unknown column {c}")))?;
                    out.push(canonical.clone());
                }
                SelectItem::Agg { .. } | SelectItem::Sketch(_) => {
                    unreachable!("listing path has no aggregates or sketches")
                }
            }
        }
        Ok(out)
    }

    fn list_segment(
        &self,
        query: &Query,
        rw: &Rewritten,
        columns: &[String],
        segment: SegmentView<'_>,
        result: &mut QueryResult,
    ) -> Result<()> {
        if !SegmentEvaluator::segment_time_matches(rw, &segment) {
            return Ok(());
        }
        let group = self.catalog.group(segment.gid).ok_or_else(|| {
            MdbError::Corrupt(format!("segment references unknown gid {}", segment.gid))
        })?;
        let group_size = group.size();
        let n_present = segment.gaps.count_present(group_size);
        let mut cursor = SegmentCursor::new(segment, n_present);
        for (series_pos, member_pos) in segment.gaps.present_positions(group_size).enumerate() {
            let tid = group.tids[member_pos];
            if !self.evaluator().tid_matches(rw, tid) {
                continue;
            }
            let scaling = self.catalog.scaling_of(tid);
            match query.view {
                View::Segment => {
                    let row = columns
                        .iter()
                        .map(|c| self.segment_cell(c, tid, &segment))
                        .collect::<Result<Vec<Cell>>>()?;
                    result.rows.push(row);
                }
                View::DataPoint => {
                    let si = segment.sampling_interval;
                    let lo_ts = rw.ts_from.max(segment.start_time);
                    let hi_ts = rw.ts_to.min(segment.end_time);
                    if lo_ts > hi_ts {
                        continue;
                    }
                    let idx_lo = (((lo_ts - segment.start_time) + si - 1) / si) as usize;
                    let idx_hi = ((hi_ts - segment.start_time) / si) as usize;
                    if idx_lo > idx_hi {
                        continue;
                    }
                    let grid = cursor
                        .grid(self.registry)
                        .ok_or_else(|| MdbError::Corrupt("undecodable segment".into()))?
                        .to_vec();
                    for idx in idx_lo..=idx_hi {
                        let ts = segment.start_time + idx as i64 * si;
                        let value = f64::from(grid[idx * n_present + series_pos]) / scaling;
                        if !SegmentEvaluator::value_matches(rw, value) {
                            continue;
                        }
                        let row = columns
                            .iter()
                            .map(|c| self.data_point_cell(c, tid, ts, value))
                            .collect::<Result<Vec<Cell>>>()?;
                        result.rows.push(row);
                    }
                }
            }
        }
        Ok(())
    }

    fn dimension_cell(&self, column: &str, tid: Tid) -> Option<Result<Cell>> {
        let (dim, level) = self.catalog.dimensions.resolve_level(column)?;
        Some(Ok(match self.catalog.dimensions.member(tid, dim, level) {
            Some(m) => Cell::Str(self.catalog.dimensions.member_name(m).to_string()),
            None => Cell::Null,
        }))
    }

    fn segment_cell(&self, column: &str, tid: Tid, segment: &SegmentView<'_>) -> Result<Cell> {
        match column.to_ascii_uppercase().as_str() {
            "TID" => Ok(Cell::Int(i64::from(tid))),
            "STARTTIME" => Ok(Cell::Timestamp(segment.start_time)),
            "ENDTIME" => Ok(Cell::Timestamp(segment.end_time)),
            "SI" => Ok(Cell::Int(segment.sampling_interval)),
            "MID" => Ok(Cell::Int(i64::from(segment.mid))),
            "GAPS" => Ok(Cell::Int(segment.gaps.count_missing() as i64)),
            _ => self
                .dimension_cell(column, tid)
                .unwrap_or_else(|| Err(MdbError::Query(format!("unknown column {column}")))),
        }
    }

    fn data_point_cell(&self, column: &str, tid: Tid, ts: Timestamp, value: f64) -> Result<Cell> {
        match column.to_ascii_uppercase().as_str() {
            "TID" => Ok(Cell::Int(i64::from(tid))),
            "TS" => Ok(Cell::Timestamp(ts)),
            "VALUE" => Ok(Cell::Float(value)),
            _ => self
                .dimension_cell(column, tid)
                .unwrap_or_else(|| Err(MdbError::Query(format!("unknown column {column}")))),
        }
    }

    /// Applies ORDER BY and LIMIT to a finished result (also used by the
    /// cluster master after merging worker rows).
    pub fn apply_order_limit(result: &mut QueryResult, query: &Query) -> Result<()> {
        if let Some((column, desc)) = &query.order_by {
            let idx = result
                .column_index(column)
                .ok_or_else(|| MdbError::Query(format!("unknown ORDER BY column {column}")))?;
            result.rows.sort_by(|a, b| {
                let ord = compare_cells(&a[idx], &b[idx]);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        if let Some(limit) = query.limit {
            result.rows.truncate(limit);
        }
        Ok(())
    }
}

/// Merges one partial-aggregate map into another: Algorithm 5's
/// `mergeResults`, shared by the master's worker merge and the engine's
/// in-order fold of per-segment partials.
pub fn merge_partials(into: &mut PartialAggregates, from: PartialAggregates) {
    use std::collections::hash_map::Entry;
    for (key, accs) in from {
        match into.entry(key) {
            Entry::Occupied(mut entry) => {
                for (mine, theirs) in entry.get_mut().iter_mut().zip(&accs) {
                    mine.merge(theirs);
                }
            }
            Entry::Vacant(entry) => {
                entry.insert(accs);
            }
        }
    }
}

fn compare_cells(a: &Cell, b: &Cell) -> std::cmp::Ordering {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.to_string().cmp(&b.to_string()),
    }
}

/// Algorithm 6's interval walk: splits the tick-index `range` of `segment`
/// at calendar boundaries of `level`, yielding `(bucket start, sub-range)`
/// pairs — the bucket start is the absolute timestamp of the containing
/// bucket (the key rollup cells are materialized under); the display
/// date-part is derived from it at finalize. The final sub-interval ends at
/// the segment's inclusive end time, matching Figure 12 ("the last value is
/// computed with an inclusive end time as ModelarDB does not store
/// connected segments").
pub fn split_at_boundaries(
    segment: SegmentView<'_>,
    range: (usize, usize),
    level: TimeLevel,
) -> Vec<(Timestamp, (usize, usize))> {
    let si = segment.sampling_interval;
    let start_ts = segment.start_time + range.0 as i64 * si;
    let end_ts = segment.start_time + range.1 as i64 * si;
    let mut out = Vec::new();
    let mut current = start_ts;
    while current <= end_ts {
        let boundary = time::next_boundary(level, current);
        let capped = end_ts.min(boundary - 1);
        // Last tick at or before `capped`.
        let sub_end = current + (capped - current) / si * si;
        let idx_a = ((current - segment.start_time) / si) as usize;
        let idx_b = ((sub_end - segment.start_time) / si) as usize;
        out.push((time::truncate(level, current), (idx_a, idx_b)));
        current = sub_end + si;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_compression::{CompressionConfig, GroupIngestor};
    use mdb_models::ModelRegistry;
    use mdb_storage::{MemoryStore, SegmentStore};
    use mdb_types::{DimensionSchema, ErrorBound, GroupMeta, SegmentRecord, TimeSeriesMeta, Value};
    use std::sync::Arc;

    /// Builds a populated store: two groups — (1,2) correlated turbines in
    /// Aalborg, (3) in Farsø — with 1 hour of data at SI = 1 minute starting
    /// at 2021-06-01 00:13:00, values 10.0 + small offsets, tid 3 scaled.
    struct Fixture {
        catalog: Catalog,
        registry: ModelRegistry,
        store: MemoryStore,
    }

    fn fixture() -> Fixture {
        let mut catalog = Catalog::new();
        let loc = catalog
            .dimensions
            .add_dimension(
                DimensionSchema::new("Location", vec!["Park".into(), "Entity".into()]).unwrap(),
            )
            .unwrap();
        catalog
            .dimensions
            .set_members(1, loc, &["Aalborg", "9632"])
            .unwrap();
        catalog
            .dimensions
            .set_members(2, loc, &["Aalborg", "9634"])
            .unwrap();
        catalog
            .dimensions
            .set_members(3, loc, &["Farsø", "9572"])
            .unwrap();
        let si = 60_000i64;
        catalog.series = vec![
            TimeSeriesMeta {
                tid: 1,
                sampling_interval: si,
                scaling: 1.0,
                gid: 1,
            },
            TimeSeriesMeta {
                tid: 2,
                sampling_interval: si,
                scaling: 1.0,
                gid: 1,
            },
            TimeSeriesMeta {
                tid: 3,
                sampling_interval: si,
                scaling: 2.0,
                gid: 2,
            },
        ];
        catalog.groups = vec![
            GroupMeta {
                gid: 1,
                tids: vec![1, 2],
                sampling_interval: si,
            },
            GroupMeta {
                gid: 2,
                tids: vec![3],
                sampling_interval: si,
            },
        ];
        let registry = ModelRegistry::standard();
        catalog.model_names = registry.names().iter().map(|s| s.to_string()).collect();

        let mut store = MemoryStore::new();
        let config = CompressionConfig {
            error_bound: ErrorBound::Lossless,
            ..Default::default()
        };
        // 2021-06-01 00:13:00 UTC.
        let t0 = mdb_types::time::compose(mdb_types::time::Civil {
            year: 2021,
            month: 6,
            day: 1,
            hour: 0,
            minute: 13,
            second: 0,
            millisecond: 0,
        });
        let mut g1 = GroupIngestor::new(
            catalog.groups[0].clone(),
            vec![1.0, 1.0],
            Arc::new(registry.clone()),
            config.clone(),
        )
        .unwrap();
        let mut g2 = GroupIngestor::new(
            catalog.groups[1].clone(),
            vec![2.0],
            Arc::new(registry.clone()),
            config,
        )
        .unwrap();
        for i in 0..60i64 {
            let ts = t0 + i * si;
            // Group 1: both series constant 10 (PMC-friendly).
            for s in g1.push_row(ts, &[Some(10.0), Some(10.0)]).unwrap() {
                store.insert(s).unwrap();
            }
            // Group 2: raw value 1 + i (linear); scaling 2 stores 2 + 2i.
            for s in g2.push_row(ts, &[Some((1 + i) as Value)]).unwrap() {
                store.insert(s).unwrap();
            }
        }
        for s in g1.flush().unwrap() {
            store.insert(s).unwrap();
        }
        for s in g2.flush().unwrap() {
            store.insert(s).unwrap();
        }
        Fixture {
            catalog,
            registry,
            store,
        }
    }

    fn run(f: &Fixture, sql: &str) -> QueryResult {
        QueryEngine::new(&f.catalog, &f.registry, &f.store)
            .sql(sql)
            .unwrap()
    }

    #[test]
    fn sum_per_tid_matches_ground_truth() {
        let f = fixture();
        let r = run(
            &f,
            "SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid ORDER BY Tid",
        );
        assert_eq!(r.columns, vec!["Tid", "SUM_S(*)"]);
        assert_eq!(r.rows.len(), 3);
        // Tids 1,2: 60 × 10 = 600. Tid 3: (1 + … + 60) = 1830 (scaling
        // divided back out).
        assert_eq!(r.rows[0][0], Cell::Int(1));
        assert!((r.rows[0][1].as_f64().unwrap() - 600.0).abs() < 1e-3);
        assert!((r.rows[1][1].as_f64().unwrap() - 600.0).abs() < 1e-3);
        assert!(
            (r.rows[2][1].as_f64().unwrap() - 1830.0).abs() < 1e-2,
            "{:?}",
            r.rows[2]
        );
    }

    #[test]
    fn all_aggregate_functions() {
        let f = fixture();
        let r = run(
            &f,
            "SELECT COUNT_S(*), MIN_S(*), MAX_S(*), AVG_S(*) FROM Segment WHERE Tid = 3",
        );
        let row = &r.rows[0];
        assert_eq!(row[0], Cell::Int(60));
        assert!((row[1].as_f64().unwrap() - 1.0).abs() < 1e-3);
        assert!((row[2].as_f64().unwrap() - 60.0).abs() < 1e-3);
        assert!((row[3].as_f64().unwrap() - 30.5).abs() < 1e-3);
    }

    #[test]
    fn segment_and_datapoint_views_agree() {
        let f = fixture();
        let s = run(&f, "SELECT SUM_S(*) FROM Segment WHERE Tid = 3");
        let d = run(&f, "SELECT SUM(Value) FROM DataPoint WHERE Tid = 3");
        let sv = s.rows[0][0].as_f64().unwrap();
        let dv = d.rows[0][0].as_f64().unwrap();
        assert!((sv - dv).abs() <= 1e-3 * dv.abs().max(1.0), "{sv} vs {dv}");
    }

    #[test]
    fn group_by_dimension_column() {
        let f = fixture();
        let r = run(
            &f,
            "SELECT Park, SUM_S(*) FROM Segment GROUP BY Park ORDER BY Park",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Cell::Str("Aalborg".into()));
        assert!((r.rows[0][1].as_f64().unwrap() - 1200.0).abs() < 1e-2);
        assert_eq!(r.rows[1][0], Cell::Str("Farsø".into()));
        assert!((r.rows[1][1].as_f64().unwrap() - 1830.0).abs() < 1e-2);
    }

    #[test]
    fn member_predicate_filters_individual_series() {
        let f = fixture();
        let r = run(&f, "SELECT COUNT_S(*) FROM Segment WHERE Entity = '9632'");
        assert_eq!(r.rows[0][0], Cell::Int(60));
        // Unknown member → empty result, not an error (rewriting proves it).
        let r = run(&f, "SELECT COUNT_S(*) FROM Segment WHERE Park = 'Atlantis'");
        assert!(r.rows.is_empty());
        // Unknown column → error.
        let e = QueryEngine::new(&f.catalog, &f.registry, &f.store)
            .sql("SELECT COUNT_S(*) FROM Segment WHERE Altitude = 'High'");
        assert!(e.is_err());
    }

    #[test]
    fn cube_hour_splits_at_calendar_boundaries() {
        // Data runs 00:13–01:12, so hours 0 (47 ticks) and 1 (13 ticks).
        let f = fixture();
        let r = run(
            &f,
            "SELECT Tid, CUBE_COUNT_HOUR(*) FROM Segment WHERE Tid = 1 GROUP BY Tid ORDER BY Hour",
        );
        assert_eq!(r.columns, vec!["Tid", "Hour", "CUBE_COUNT_HOUR(*)"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Cell::Int(0));
        assert_eq!(r.rows[0][2], Cell::Int(47));
        assert_eq!(r.rows[1][1], Cell::Int(1));
        assert_eq!(r.rows[1][2], Cell::Int(13));
    }

    #[test]
    fn cube_sum_equals_plain_sum() {
        let f = fixture();
        let cube = run(
            &f,
            "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid = 3 GROUP BY Tid",
        );
        let total: f64 = cube.rows.iter().map(|r| r[2].as_f64().unwrap()).sum();
        assert!((total - 1830.0).abs() < 1e-2, "{total}");
    }

    #[test]
    fn ts_range_restricts_aggregates() {
        let f = fixture();
        let t0 = mdb_types::time::compose(mdb_types::time::Civil {
            year: 2021,
            month: 6,
            day: 1,
            hour: 0,
            minute: 13,
            second: 0,
            millisecond: 0,
        });
        // First 10 ticks only.
        let hi = t0 + 9 * 60_000;
        let r = run(
            &f,
            &format!("SELECT COUNT_S(*) FROM Segment WHERE Tid = 1 AND TS <= {hi}"),
        );
        assert_eq!(r.rows[0][0], Cell::Int(10));
        let r = run(
            &f,
            &format!("SELECT SUM_S(*) FROM Segment WHERE Tid = 3 AND TS <= {hi}"),
        );
        assert!((r.rows[0][0].as_f64().unwrap() - 55.0).abs() < 1e-2);
    }

    #[test]
    fn point_and_range_queries_on_data_point_view() {
        let f = fixture();
        let t0 = mdb_types::time::compose(mdb_types::time::Civil {
            year: 2021,
            month: 6,
            day: 1,
            hour: 0,
            minute: 13,
            second: 0,
            millisecond: 0,
        });
        let point = t0 + 5 * 60_000;
        let r = run(
            &f,
            &format!("SELECT * FROM DataPoint WHERE Tid = 3 AND TS = {point}"),
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], Cell::Timestamp(point));
        assert!((r.rows[0][2].as_f64().unwrap() - 6.0).abs() < 1e-3);
        // Dimension columns are joined on.
        assert_eq!(r.rows[0][3], Cell::Str("Farsø".into()));
        let r = run(
            &f,
            &format!(
                "SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS BETWEEN {t0} AND {}",
                t0 + 4 * 60_000
            ),
        );
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn segment_view_listing() {
        let f = fixture();
        let r = run(
            &f,
            "SELECT Tid, StartTime, EndTime, Mid FROM Segment WHERE Tid = 1",
        );
        assert!(!r.rows.is_empty());
        // Segments of group 1 also produce rows for tid 2 — but the WHERE
        // filters them out.
        assert!(r.rows.iter().all(|row| row[0] == Cell::Int(1)));
        let r_all = run(&f, "SELECT * FROM Segment");
        assert_eq!(
            r_all.columns[..6],
            ["Tid", "StartTime", "EndTime", "SI", "Mid", "Gaps"]
        );
        assert!(r_all.columns.contains(&"Park".to_string()));
    }

    #[test]
    fn order_by_and_limit() {
        let f = fixture();
        let r = run(
            &f,
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid DESC LIMIT 2",
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Cell::Int(3));
        assert_eq!(r.rows[1][0], Cell::Int(2));
    }

    #[test]
    fn validation_errors() {
        let f = fixture();
        let engine = QueryEngine::new(&f.catalog, &f.registry, &f.store);
        // Column not in GROUP BY.
        assert!(engine.sql("SELECT Tid, SUM_S(*) FROM Segment").is_err());
        // Mixed cube and plain aggregates.
        assert!(engine
            .sql("SELECT CUBE_SUM_HOUR(*), COUNT_S(*) FROM Segment")
            .is_err());
        // Two different cube levels.
        assert!(engine
            .sql("SELECT CUBE_SUM_HOUR(*), CUBE_SUM_DAY(*) FROM Segment")
            .is_err());
        // * with aggregates.
        assert!(engine.sql("SELECT *, COUNT_S(*) FROM Segment").is_err());
        // Unknown ORDER BY column.
        assert!(engine
            .sql("SELECT Tid FROM Segment ORDER BY Altitude")
            .is_err());
    }

    #[test]
    fn empty_tid_set_yields_empty_result() {
        let f = fixture();
        let r = run(&f, "SELECT COUNT_S(*) FROM Segment WHERE Tid = 99");
        assert!(r.rows.is_empty());
    }

    #[test]
    fn value_predicates_filter_points_and_aggregates() {
        let f = fixture();
        // Tid 3's raw values are 1..=60.
        let r = run(
            &f,
            "SELECT COUNT_S(*) FROM Segment WHERE Tid = 3 AND Value >= 31",
        );
        assert_eq!(r.rows[0][0], Cell::Int(30));
        let r = run(
            &f,
            "SELECT SUM(Value) FROM DataPoint WHERE Tid = 3 AND Value <= 10.5",
        );
        assert!(
            (r.rows[0][0].as_f64().unwrap() - 55.0).abs() < 1e-2,
            "{:?}",
            r.rows
        );
        let r = run(
            &f,
            "SELECT TS, Value FROM DataPoint WHERE Tid = 3 AND Value > 58",
        );
        assert_eq!(r.rows.len(), 2);
        // An unsatisfiable value range is proven empty by the rewrite.
        let r = run(
            &f,
            "SELECT COUNT_S(*) FROM Segment WHERE Value > 10 AND Value < 5",
        );
        assert!(r.rows.is_empty());
        // Cube aggregates filter per point too: tids 1/2 are constant 10.
        let r = run(
            &f,
            "SELECT CUBE_COUNT_HOUR(*) FROM Segment WHERE Tid = 1 AND Value > 10.5",
        );
        assert!(r.rows.is_empty());
        // Segment listings have no Value column to filter on.
        let e = QueryEngine::new(&f.catalog, &f.registry, &f.store)
            .sql("SELECT Tid FROM Segment WHERE Value > 1");
        assert!(e.is_err());
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_sequential() {
        let f = fixture();
        let queries = [
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
            "SELECT Park, AVG_S(*) FROM Segment GROUP BY Park ORDER BY Park",
            "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid IN (1, 3) GROUP BY Tid",
            "SELECT COUNT_S(*), MIN_S(*), MAX_S(*) FROM Segment WHERE Value >= 3.5",
        ];
        for q in queries {
            let sequential = QueryEngine::new(&f.catalog, &f.registry, &f.store)
                .sql(q)
                .unwrap();
            for threads in [2, 4, 0] {
                let parallel = QueryEngine::new(&f.catalog, &f.registry, &f.store)
                    .with_parallelism(threads)
                    .sql(q)
                    .unwrap();
                assert_eq!(sequential.rows, parallel.rows, "{q} with {threads} workers");
            }
        }
    }

    #[test]
    fn scan_pool_path_is_bit_identical_to_sequential() {
        // Force the persistent pool path (threshold 1) so ScanPool::execute
        // — chunk rounding, by-chunk reassembly, fold alignment — is the
        // code under test, not the inline bypass.
        let f = fixture();
        let catalog = Arc::new(f.catalog.clone());
        let registry = Arc::new(f.registry.clone());
        let pool = ScanPool::new(Arc::clone(&catalog), Arc::clone(&registry), 3);
        assert_eq!(pool.workers(), 3);
        let queries = [
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
            "SELECT Park, AVG_S(*) FROM Segment GROUP BY Park ORDER BY Park",
            "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid IN (1, 3) GROUP BY Tid",
            "SELECT COUNT_S(*), MIN_S(*), MAX_S(*) FROM Segment WHERE Value >= 3.5",
        ];
        for q in queries {
            let sequential = QueryEngine::new(&f.catalog, &f.registry, &f.store)
                .sql(q)
                .unwrap();
            let pooled = QueryEngine::new(&f.catalog, &f.registry, &f.store)
                .with_scan_pool(&pool)
                .with_pool_threshold(1)
                .sql(q)
                .unwrap();
            assert_eq!(sequential.rows, pooled.rows, "{q}");
        }
    }

    #[test]
    fn value_pushdown_prunes_bounded_runs() {
        use mdb_storage::scan_to_vec;
        // Rebuild the fixture's segments in a store that records value
        // bounds, then check the rewritten push-down skips them wholesale.
        let f = fixture();
        let registry = f.registry.clone();
        let group_sizes: std::collections::HashMap<_, _> =
            f.catalog.groups.iter().map(|g| (g.gid, g.size())).collect();
        let reg = Arc::new(registry.clone());
        let mut store = MemoryStore::with_value_bounds(Arc::new(move |s: &SegmentRecord| {
            mdb_models::segment_value_range(&reg, s, *group_sizes.get(&s.gid)?)
        }));
        for segment in scan_to_vec(&f.store, &mdb_storage::SegmentPredicate::all()).unwrap() {
            store.insert(segment).unwrap();
        }
        // Stored values are ≤ 120 (tid 3 scaled: 2..=120); a predicate far
        // above prunes every run, far below the group survives.
        let far = mdb_storage::SegmentPredicate::all()
            .with_values(mdb_types::ValueInterval::new(500.0, 600.0));
        assert!(scan_to_vec(&store, &far).unwrap().is_empty());
        let near = mdb_storage::SegmentPredicate::all()
            .with_values(mdb_types::ValueInterval::new(0.0, 10.0));
        assert!(!scan_to_vec(&store, &near).unwrap().is_empty());
        // And through SQL: raw Value > 300 cannot match any stored run.
        let engine = QueryEngine::new(&f.catalog, &f.registry, &store);
        let r = engine
            .sql("SELECT COUNT_S(*) FROM Segment WHERE Value > 300")
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn split_at_boundaries_covers_range_exactly() {
        use bytes::Bytes;
        let t0 = mdb_types::time::compose(mdb_types::time::Civil {
            year: 2021,
            month: 6,
            day: 1,
            hour: 0,
            minute: 13,
            second: 0,
            millisecond: 0,
        });
        let seg = SegmentRecord {
            gid: 1,
            start_time: t0,
            end_time: t0 + 155 * 60_000, // 00:13 → 02:48, the Figure 12 span
            sampling_interval: 60_000,
            mid: 0,
            params: Bytes::new(),
            gaps: Default::default(),
        };
        let parts = split_at_boundaries(seg.view(), (0, 155), TimeLevel::Hour);
        assert_eq!(parts.len(), 3);
        // Buckets are keyed by absolute start timestamp (midnight-anchored
        // hours here), not by display date-part.
        let hour0 = mdb_types::time::truncate(TimeLevel::Hour, t0);
        assert_eq!(parts[0].0, hour0);
        assert_eq!(parts[1].0, hour0 + 3_600_000);
        assert_eq!(parts[2].0, hour0 + 7_200_000);
        // [00:13, 01:00) = 47 ticks, [01:00, 02:00) = 60, [02:00, 02:48] = 49.
        assert_eq!(parts[0].1, (0, 46));
        assert_eq!(parts[1].1, (47, 106));
        assert_eq!(parts[2].1, (107, 155));
        // Contiguous cover.
        for w in parts.windows(2) {
            assert_eq!(w[1].1 .0, w[0].1 .1 + 1);
        }
    }
}

//! The aggregate framework of Algorithm 5: `initialize`, `iterate`,
//! `finalize` for distributive (COUNT, MIN, MAX, SUM) and algebraic (AVG)
//! functions, evaluated on *models* when the model type supports constant-
//! time aggregation and on reconstructed values otherwise.

use mdb_models::{ModelRegistry, SegmentAgg};
use mdb_types::{SegmentView, Value};

/// A simple aggregate function (suffixed `_S` on the Segment View).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Min,
    Max,
    Sum,
    Avg,
}

impl AggFunc {
    /// Parses `COUNT`/`MIN`/`MAX`/`SUM`/`AVG` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

/// The intermediate state of all aggregate functions (one accumulator serves
/// every function; `finalize` extracts the requested one). Distributive and
/// algebraic functions both merge by component-wise combination, which is
/// what lets workers compute partials that the master merges (Algorithm 5's
/// `mergeResults`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accumulator {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accumulator {
    /// `initialize` of Algorithm 5.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a per-range model aggregate in, un-scaling the values with the
    /// series' scaling constant ("all aggregate functions divide the result
    /// by the scaling constant of each time series as part of the iterate
    /// step", Section 6.1).
    pub fn add_segment_agg(&mut self, agg: SegmentAgg, count: u64, scaling: f64) {
        self.count += count;
        self.sum += agg.sum / scaling;
        let (mut lo, mut hi) = (f64::from(agg.min) / scaling, f64::from(agg.max) / scaling);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi); // negative scaling flips extremes
        }
        self.min = self.min.min(lo);
        self.max = self.max.max(hi);
    }

    /// Folds one reconstructed value in.
    pub fn add_value(&mut self, value: Value, scaling: f64) {
        let v = f64::from(value) / scaling;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator (worker partials → master).
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `finalize` of Algorithm 5.
    pub fn finalize(&self, func: AggFunc) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(match func {
            AggFunc::Count => self.count as f64,
            AggFunc::Sum => self.sum,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => self.sum / self.count as f64,
        })
    }
}

/// Lazily reconstructs a segment's values at most once per query, shared by
/// every (tid, interval) evaluation that needs the fallback path. Holds a
/// borrowed [`SegmentView`] by value, so segments read straight out of a
/// cached block buffer are evaluated without ever materializing an owned
/// record.
pub struct SegmentCursor<'a> {
    pub segment: SegmentView<'a>,
    pub n_series: usize,
    grid: Option<Vec<Value>>,
}

impl<'a> SegmentCursor<'a> {
    /// A cursor over `segment`, which represents `n_series` series.
    pub fn new(segment: SegmentView<'a>, n_series: usize) -> Self {
        Self {
            segment,
            n_series,
            grid: None,
        }
    }

    /// The reconstructed values (timestamp-major), decoded on first use.
    pub fn grid(&mut self, registry: &ModelRegistry) -> Option<&[Value]> {
        if self.grid.is_none() {
            let model = registry.get(self.segment.mid)?;
            self.grid = model.grid(self.segment.params, self.n_series, self.segment.len());
        }
        self.grid.as_deref()
    }

    /// Aggregates the series at position-in-segment `series` over the tick
    /// index range `range` (inclusive), preferring the model's constant-time
    /// path and falling back to the reconstructed grid.
    pub fn aggregate(
        &mut self,
        registry: &ModelRegistry,
        series: usize,
        range: (usize, usize),
    ) -> Option<SegmentAgg> {
        self.aggregate_with(registry, series, range, true)
    }

    /// Like [`SegmentCursor::aggregate`], but `use_models = false` skips the
    /// constant-time model path and always reconstructs — the semantics of
    /// aggregates on the Data Point View, which the evaluation compares
    /// against the Segment View (Figures 19–20).
    pub fn aggregate_with(
        &mut self,
        registry: &ModelRegistry,
        series: usize,
        range: (usize, usize),
        use_models: bool,
    ) -> Option<SegmentAgg> {
        let count = self.segment.len();
        if range.0 > range.1 || range.1 >= count {
            return None;
        }
        if use_models {
            if let Some(model) = registry.get(self.segment.mid) {
                if let Some(agg) =
                    model.agg(self.segment.params, self.n_series, count, range, series)
                {
                    return Some(agg);
                }
            }
        }
        let n = self.n_series;
        let grid = self.grid(registry)?;
        let mut sum = 0.0f64;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for t in range.0..=range.1 {
            let v = grid[t * n + series];
            sum += f64::from(v);
            min = min.min(v);
            max = max.max(v);
        }
        Some(SegmentAgg { sum, min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mdb_types::{GapsMask, SegmentRecord};

    #[test]
    fn accumulator_finalizes_every_function() {
        let mut acc = Accumulator::new();
        for v in [1.0f32, 2.0, 3.0, 4.0] {
            acc.add_value(v, 1.0);
        }
        assert_eq!(acc.finalize(AggFunc::Count), Some(4.0));
        assert_eq!(acc.finalize(AggFunc::Sum), Some(10.0));
        assert_eq!(acc.finalize(AggFunc::Min), Some(1.0));
        assert_eq!(acc.finalize(AggFunc::Max), Some(4.0));
        assert_eq!(acc.finalize(AggFunc::Avg), Some(2.5));
    }

    #[test]
    fn empty_accumulator_finalizes_to_none() {
        let acc = Accumulator::new();
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            assert_eq!(acc.finalize(f), None);
        }
    }

    #[test]
    fn merge_is_distributive() {
        // Splitting the values across two accumulators and merging gives the
        // same result — the property that makes worker partials correct.
        let values = [5.0f32, -2.0, 7.5, 0.0, 3.25, 9.0];
        let mut whole = Accumulator::new();
        for &v in &values {
            whole.add_value(v, 1.0);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &v in &values[..3] {
            left.add_value(v, 1.0);
        }
        for &v in &values[3..] {
            right.add_value(v, 1.0);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn scaling_is_divided_out_in_iterate() {
        // Stored value 9.5 with scaling 4.75 is raw value 2.0 (Figure 6's
        // Scaling column).
        let mut acc = Accumulator::new();
        acc.add_value(9.5, 4.75);
        assert_eq!(acc.finalize(AggFunc::Sum), Some(2.0));
        let mut acc = Accumulator::new();
        acc.add_segment_agg(
            SegmentAgg {
                sum: 19.0,
                min: 9.5,
                max: 9.5,
            },
            2,
            4.75,
        );
        assert_eq!(acc.finalize(AggFunc::Avg), Some(2.0));
        assert_eq!(acc.finalize(AggFunc::Min), Some(2.0));
    }

    #[test]
    fn negative_scaling_flips_extremes() {
        let mut acc = Accumulator::new();
        acc.add_segment_agg(
            SegmentAgg {
                sum: 10.0,
                min: 1.0,
                max: 5.0,
            },
            2,
            -1.0,
        );
        assert_eq!(acc.finalize(AggFunc::Min), Some(-5.0));
        assert_eq!(acc.finalize(AggFunc::Max), Some(-1.0));
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }

    fn pmc_segment(value: f32, len: usize) -> SegmentRecord {
        SegmentRecord {
            gid: 1,
            start_time: 0,
            end_time: (len as i64 - 1) * 100,
            sampling_interval: 100,
            mid: mdb_models::MID_PMC_MEAN,
            params: Bytes::from(value.to_le_bytes().to_vec()),
            gaps: GapsMask::EMPTY,
        }
    }

    #[test]
    fn cursor_uses_model_agg_for_pmc() {
        let registry = ModelRegistry::standard();
        let seg = pmc_segment(2.5, 10);
        let mut cursor = SegmentCursor::new(seg.view(), 3);
        let agg = cursor.aggregate(&registry, 1, (0, 9)).unwrap();
        assert_eq!(agg.sum, 25.0);
        // The constant-time path never materialized the grid.
        assert!(cursor.grid.is_none());
        // Sub-range.
        let agg = cursor.aggregate(&registry, 0, (2, 4)).unwrap();
        assert_eq!(agg.sum, 7.5);
        // Out-of-range is rejected.
        assert!(cursor.aggregate(&registry, 0, (5, 20)).is_none());
    }

    #[test]
    fn cursor_falls_back_to_grid_for_gorilla() {
        let registry = ModelRegistry::standard();
        let values = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let params = mdb_encoding_encode(&values);
        let seg = SegmentRecord {
            gid: 1,
            start_time: 0,
            end_time: 200,
            sampling_interval: 100,
            mid: mdb_models::MID_GORILLA,
            params: Bytes::from(params),
            gaps: GapsMask::EMPTY,
        };
        let mut cursor = SegmentCursor::new(seg.view(), 2);
        // Series 0 values: 1, 3, 5. Series 1 values: 2, 4, 6.
        let agg = cursor.aggregate(&registry, 0, (0, 2)).unwrap();
        assert_eq!(agg.sum, 9.0);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 5.0);
        let agg = cursor.aggregate(&registry, 1, (1, 2)).unwrap();
        assert_eq!(agg.sum, 10.0);
        assert!(cursor.grid.is_some(), "gorilla needs the grid");
    }

    /// Minimal stand-in for the encoding dependency in tests: fits the same
    /// XOR stream Gorilla uses (via the model's own fitter).
    fn mdb_encoding_encode(values: &[f32]) -> Vec<u8> {
        use mdb_models::ModelType;
        let g = mdb_models::gorilla::Gorilla;
        let mut f = g.fitter(mdb_types::ErrorBound::Lossless, 2, 100);
        for (t, pair) in values.chunks(2).enumerate() {
            assert!(f.append(t as i64 * 100, pair));
        }
        f.params()
    }
}

//! Query processing directly on models (Section 6).
//!
//! ModelarDB+ exposes two SQL views:
//!
//! * the **Segment View** `(Tid, StartTime, EndTime, SI, Mid, Parameters,
//!   Gaps, <dimension columns…>)` on which aggregates execute directly on
//!   models — `SUM_S` over a linear model is constant time (Figure 11);
//! * the **Data Point View** `(Tid, TS, Value, <dimension columns…>)` on
//!   which queries run over reconstructed data points.
//!
//! Aggregate queries follow Algorithm 5 (rewrite → initialize → iterate →
//! finalize); aggregation in the time dimension follows Algorithm 6, which
//! splits each segment at calendar boundaries without joining a separate
//! time dimension table. The WHERE clause is rewritten from Tids and
//! dimension members to Gids so the store indexes only one id per segment
//! (Section 6.2).

pub mod aggregate;
pub mod cell;
pub mod datastore;
pub mod engine;
pub mod options;
pub mod sql;

pub use aggregate::{Accumulator, AggFunc};
pub use cell::{Cell, QueryResult};
pub use datastore::{Datastore, DatastoreHealth};
pub use engine::{
    fold_group_size, merge_partials, pool_bypass_threshold, rollup_feed, scan_shape, sketch_feed,
    PartialAggregates, QueryEngine, ScanPool, ScanShape,
};
pub use options::{CommonOptions, CommonOptionsBuilder};
pub use sql::{parse, Predicate, Query, SelectItem, SketchFunc, View};

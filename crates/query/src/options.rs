//! The deployment knobs shared by every way of running ModelarDB+.
//!
//! The embedded engine's `Config` and the cluster runtime's `ClusterConfig`
//! historically each carried their own copy of the same tuning knobs
//! (compression settings, bulk write size, block-cache budget, prefetch
//! depth, scan parallelism, storage location, queue depths), and the two
//! drifted. [`CommonOptions`] is the single source of truth both configs
//! now embed; they `Deref` to it, so the old field paths
//! (`config.compression`, `config.prefetch_depth`, …) keep working
//! unchanged for one release.

use std::path::PathBuf;

use mdb_compression::CompressionConfig;
use mdb_types::TimeLevel;

/// Tuning knobs common to the embedded engine, the cluster runtime, and the
/// network server. Defaults mirror Table 1 of the paper where the paper
/// specifies a value.
#[derive(Debug, Clone)]
pub struct CommonOptions {
    /// Compression settings (error bound, model length limit 50, dynamic
    /// split fraction 10, …).
    pub compression: CompressionConfig,
    /// Segments buffered before a bulk write (Table 1: 50,000). Ignored by
    /// purely in-memory deployments.
    pub bulk_write_size: usize,
    /// Byte budget for the disk store's block cache — the bound on segment
    /// bodies kept resident. `None` (the default) keeps every fetched block
    /// in memory; `Some(0)` caches nothing and re-reads blocks on demand.
    /// A cluster splits the budget evenly over its workers. Ignored by
    /// in-memory deployments, which are resident by definition.
    pub memory_budget_bytes: Option<u64>,
    /// How many zone-map-surviving blocks the disk store's prefetcher reads
    /// ahead of the scan (`0` disables prefetching). Ignored by in-memory
    /// deployments.
    pub prefetch_depth: usize,
    /// Scan workers for the partial-aggregation phase: `0` (auto) uses the
    /// machine's available parallelism; `1` scans sequentially. A cluster
    /// applies this *per worker* (its default stays 1 because the workers
    /// already scan concurrently). Results are bit-identical at every
    /// setting.
    pub query_parallelism: usize,
    /// Where segments are persisted: `None` keeps them in memory, `Some`
    /// persists under this directory (the engine's block log + catalog, or
    /// one `worker-<i>` subdirectory per cluster worker plus the
    /// `cluster.meta` manifest).
    pub storage_dir: Option<PathBuf>,
    /// Maximum batches buffered per bounded ingest queue (a cluster
    /// worker's command channel, or a server session's request queue).
    /// Senders block once a consumer falls this far behind — real
    /// backpressure instead of an unbounded queue.
    pub ingest_queue_depth: usize,
    /// Time levels at which continuous aggregates (rollup cells) are
    /// incrementally materialized as segments finalize. Empty disables
    /// rollups; the order is part of the configuration identity (a store
    /// sidecar is only adopted when its levels match exactly).
    pub rollup_levels: Vec<TimeLevel>,
    /// Whether whole-bucket time-hierarchy aggregates are answered from
    /// the materialized cells (`true`, the default) or always scanned.
    /// Either setting produces bit-identical results — the knob only
    /// changes how many segment bodies are read.
    pub rollup_serve: bool,
}

impl Default for CommonOptions {
    fn default() -> Self {
        Self {
            compression: CompressionConfig::default(),
            bulk_write_size: 50_000,
            memory_budget_bytes: None,
            prefetch_depth: 2,
            query_parallelism: 0,
            storage_dir: None,
            ingest_queue_depth: 8,
            rollup_levels: vec![TimeLevel::Hour, TimeLevel::Day, TimeLevel::Month],
            rollup_serve: true,
        }
    }
}

impl CommonOptions {
    /// Starts a builder from the defaults.
    pub fn builder() -> CommonOptionsBuilder {
        CommonOptionsBuilder {
            options: Self::default(),
        }
    }
}

/// Builder for [`CommonOptions`]; every setter has the field's name.
///
/// ```
/// use mdb_query::CommonOptions;
///
/// let options = CommonOptions::builder()
///     .bulk_write_size(1_000)
///     .memory_budget_bytes(Some(8 << 20))
///     .prefetch_depth(4)
///     .build();
/// assert_eq!(options.bulk_write_size, 1_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommonOptionsBuilder {
    options: CommonOptions,
}

impl CommonOptionsBuilder {
    /// Replaces the compression settings wholesale.
    pub fn compression(mut self, compression: CompressionConfig) -> Self {
        self.options.compression = compression;
        self
    }

    /// Segments buffered before a bulk write.
    pub fn bulk_write_size(mut self, size: usize) -> Self {
        self.options.bulk_write_size = size;
        self
    }

    /// Block-cache byte budget (`None` = unbounded).
    pub fn memory_budget_bytes(mut self, budget: Option<u64>) -> Self {
        self.options.memory_budget_bytes = budget;
        self
    }

    /// Blocks read ahead of a scan (`0` = off).
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.options.prefetch_depth = depth;
        self
    }

    /// Scan workers for partial aggregation (`0` = auto).
    pub fn query_parallelism(mut self, workers: usize) -> Self {
        self.options.query_parallelism = workers;
        self
    }

    /// Persistence root (`None` = in-memory).
    pub fn storage_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.options.storage_dir = dir;
        self
    }

    /// Bound on batches buffered per ingest queue.
    pub fn ingest_queue_depth(mut self, depth: usize) -> Self {
        self.options.ingest_queue_depth = depth;
        self
    }

    /// Time levels to materialize continuous aggregates at (empty = off).
    pub fn rollup_levels(mut self, levels: Vec<TimeLevel>) -> Self {
        self.options.rollup_levels = levels;
        self
    }

    /// Whether whole-bucket aggregates are served from rollup cells.
    pub fn rollup_serve(mut self, serve: bool) -> Self {
        self.options.rollup_serve = serve;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CommonOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_table1() {
        let o = CommonOptions::default();
        assert_eq!(o.bulk_write_size, 50_000);
        assert_eq!(o.compression.length_limit, 50);
        assert_eq!(o.memory_budget_bytes, None);
        assert_eq!(o.prefetch_depth, 2);
        assert_eq!(o.query_parallelism, 0);
        assert!(o.storage_dir.is_none());
        assert_eq!(o.ingest_queue_depth, 8);
        assert_eq!(
            o.rollup_levels,
            vec![TimeLevel::Hour, TimeLevel::Day, TimeLevel::Month]
        );
        assert!(o.rollup_serve);
    }

    #[test]
    fn builder_sets_every_knob() {
        let o = CommonOptions::builder()
            .compression(CompressionConfig::default())
            .bulk_write_size(7)
            .memory_budget_bytes(Some(1))
            .prefetch_depth(9)
            .query_parallelism(3)
            .storage_dir(Some(PathBuf::from("/tmp/x")))
            .ingest_queue_depth(2)
            .rollup_levels(vec![TimeLevel::Day])
            .rollup_serve(false)
            .build();
        assert_eq!(o.bulk_write_size, 7);
        assert_eq!(o.memory_budget_bytes, Some(1));
        assert_eq!(o.prefetch_depth, 9);
        assert_eq!(o.query_parallelism, 3);
        assert_eq!(
            o.storage_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(o.ingest_queue_depth, 2);
        assert_eq!(o.rollup_levels, vec![TimeLevel::Day]);
        assert!(!o.rollup_serve);
    }
}

//! A SQL subset for the Segment View and Data Point View (Section 6.1).
//!
//! The grammar covers the query classes of the paper's evaluation
//! (S-AGG, L-AGG, M-AGG, P/R):
//!
//! ```text
//! SELECT item (, item)*
//! FROM (Segment | DataPoint)
//! [WHERE predicate (AND predicate)*]
//! [GROUP BY column (, column)*]
//! [ORDER BY column [ASC | DESC]]
//! [LIMIT n]
//!
//! item      := * | column | FUNC(*) | FUNC(Value)
//!            | P50_S(*) | P99_S(*) | PCTL_S(q)  (Segment View, sketches)
//!            | COUNT_DISTINCT(Tid) | TOP_K_S(k)
//! FUNC      := COUNT|MIN|MAX|SUM|AVG            (Data Point View)
//!            | COUNT_S|MIN_S|MAX_S|SUM_S|AVG_S  (Segment View, on models)
//!            | CUBE_<FUNC>_<LEVEL>              (roll-up in time, Alg. 6)
//! predicate := Tid = n | Tid IN (n, …)
//!            | TS|StartTime|EndTime <op> ts | TS BETWEEN ts AND ts
//!            | Value <op> number
//!            | <dimension level column> = 'member'
//! ts        := integer ms | 'YYYY-MM-DD[ HH:MM[:SS]]'
//! ```
//!
//! `Value` predicates filter reconstructed data points (Data Point View
//! listings and aggregates on either view); their rewritten form also feeds
//! the zone-map push-down so segment runs that cannot contain a matching
//! value are pruned before any model is decoded.

use mdb_types::{MdbError, Result, Tid, TimeLevel, Timestamp};

use crate::aggregate::AggFunc;

/// The two views of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    Segment,
    DataPoint,
}

/// A SELECT list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    AllColumns,
    /// A plain column (Tid, TS, Value, StartTime, EndTime, or a dimension
    /// level name).
    Column(String),
    /// An aggregate; `cube` carries the time level of `CUBE_*_<LEVEL>`.
    Agg {
        func: AggFunc,
        cube: Option<TimeLevel>,
    },
    /// A sketch-answered function, resolved from block metadata alone
    /// (never fetching segment bodies); see `mdb_sketch` for the error
    /// bounds.
    Sketch(SketchFunc),
}

/// The sketch-answered functions (Segment View only; approximate, with the
/// error bounds exported by `mdb_sketch`).
#[derive(Debug, Clone, PartialEq)]
pub enum SketchFunc {
    /// `PCTL_S(q)` — the approximate nearest-rank `q`-percentile of every
    /// reconstructed value, `0 ≤ q ≤ 100`; `P50_S(*)` and `P99_S(*)` are
    /// sugar for `PCTL_S(50)` and `PCTL_S(99)`.
    Pctl(f64),
    /// `COUNT_DISTINCT(Tid)` — approximate number of distinct time series
    /// with at least one stored data point.
    CountDistinct,
    /// `TOP_K_S(k)` — the `k` time series with the most stored data
    /// points, heaviest first.
    TopK(usize),
}

impl SketchFunc {
    /// The canonical result column name (`P50_S(*)` parses as sugar, so it
    /// renders back as `PCTL_S(50)`).
    pub fn column_name(&self) -> String {
        match self {
            SketchFunc::Pctl(q) => format!("PCTL_S({q})"),
            SketchFunc::CountDistinct => "COUNT_DISTINCT(Tid)".into(),
            SketchFunc::TopK(k) => format!("TOP_K_S({k})"),
        }
    }
}

/// Comparison operators on time columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Time columns usable in WHERE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeColumn {
    /// Data Point View timestamp.
    Ts,
    StartTime,
    EndTime,
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `Tid = n` or `Tid IN (…)`.
    TidIn(Vec<Tid>),
    /// A comparison on a time column.
    Time {
        column: TimeColumn,
        op: CmpOp,
        value: Timestamp,
    },
    /// A comparison on the (raw, unscaled) data point value,
    /// e.g. `Value >= 2.5`.
    Value { op: CmpOp, value: f64 },
    /// Equality on a dimension level column, e.g. `Park = 'Aalborg'`.
    MemberEq { column: String, value: String },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub items: Vec<SelectItem>,
    pub view: View,
    pub predicates: Vec<Predicate>,
    pub group_by: Vec<String>,
    pub order_by: Option<(String, bool)>,
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Star,
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(MdbError::Query("unterminated string literal".into()));
                }
                tokens.push(Token::Str(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A fractional part makes it a float literal (Value
                // comparisons); otherwise it stays an exact integer.
                let fractional = bytes.get(i) == Some(&'.')
                    && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit());
                if fractional {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if fractional {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| MdbError::Query(format!("invalid number {text:?}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| MdbError::Query(format!("invalid number {text:?}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(MdbError::Query(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(MdbError::Query(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn take_keyword(&mut self, kw: &str) -> bool {
        if self.keyword_is(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(MdbError::Query(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.next() {
            Some(Token::Int(v)) => Ok(v),
            other => Err(MdbError::Query(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }
}

/// Parses one query.
pub fn parse(input: &str) -> Result<Query> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    let mut items = Vec::new();
    loop {
        items.push(parse_item(&mut p)?);
        if !matches!(p.peek(), Some(Token::Comma)) {
            break;
        }
        p.next();
    }
    p.expect_keyword("FROM")?;
    let view_name = p.ident()?;
    let view = match view_name.to_ascii_uppercase().as_str() {
        "SEGMENT" => View::Segment,
        "DATAPOINT" | "DATA_POINT" => View::DataPoint,
        other => return Err(MdbError::Query(format!("unknown view {other}"))),
    };
    let mut predicates = Vec::new();
    if p.take_keyword("WHERE") {
        loop {
            predicates.push(parse_predicate(&mut p)?);
            if !p.take_keyword("AND") {
                break;
            }
        }
    }
    let mut group_by = Vec::new();
    if p.take_keyword("GROUP") {
        p.expect_keyword("BY")?;
        loop {
            group_by.push(p.ident()?);
            if !matches!(p.peek(), Some(Token::Comma)) {
                break;
            }
            p.next();
        }
    }
    let mut order_by = None;
    if p.take_keyword("ORDER") {
        p.expect_keyword("BY")?;
        let col = p.ident()?;
        let desc = if p.take_keyword("DESC") {
            true
        } else {
            p.take_keyword("ASC");
            false
        };
        order_by = Some((col, desc));
    }
    let mut limit = None;
    if p.take_keyword("LIMIT") {
        let n = p.int()?;
        if n < 0 {
            return Err(MdbError::Query("negative LIMIT".into()));
        }
        limit = Some(n as usize);
    }
    if let Some(t) = p.peek() {
        return Err(MdbError::Query(format!("trailing input at {t:?}")));
    }
    Ok(Query {
        items,
        view,
        predicates,
        group_by,
        order_by,
        limit,
    })
}

fn parse_item(p: &mut Parser) -> Result<SelectItem> {
    if matches!(p.peek(), Some(Token::Star)) {
        p.next();
        return Ok(SelectItem::AllColumns);
    }
    let name = p.ident()?;
    if matches!(p.peek(), Some(Token::LParen)) {
        p.next();
        let upper = name.to_ascii_uppercase();
        // Sketch functions with a numeric argument parse first; everything
        // else takes * or a column name.
        match upper.as_str() {
            "PCTL_S" => {
                let q = match p.next() {
                    Some(Token::Int(v)) => v as f64,
                    Some(Token::Float(v)) => v,
                    other => {
                        return Err(MdbError::Query(format!(
                            "PCTL_S needs a percentile 0..=100, found {other:?}"
                        )))
                    }
                };
                if !(0.0..=100.0).contains(&q) {
                    return Err(MdbError::Query(format!(
                        "PCTL_S percentile {q} out of range 0..=100"
                    )));
                }
                expect_rparen(p)?;
                return Ok(SelectItem::Sketch(SketchFunc::Pctl(q)));
            }
            "TOP_K_S" => {
                let k = match p.next() {
                    Some(Token::Int(v)) if v >= 1 => v as usize,
                    other => {
                        return Err(MdbError::Query(format!(
                            "TOP_K_S needs an integer k >= 1, found {other:?}"
                        )))
                    }
                };
                expect_rparen(p)?;
                return Ok(SelectItem::Sketch(SketchFunc::TopK(k)));
            }
            _ => {}
        }
        // Argument: * or a column name (ignored by aggregates, which run on
        // Value; COUNT_DISTINCT insists on Tid — its argument is meaningful).
        let arg = match p.next() {
            Some(Token::Star) => None,
            Some(Token::Ident(arg)) => Some(arg),
            other => return Err(MdbError::Query(format!("bad aggregate argument {other:?}"))),
        };
        expect_rparen(p)?;
        return match upper.as_str() {
            "P50_S" => Ok(SelectItem::Sketch(SketchFunc::Pctl(50.0))),
            "P99_S" => Ok(SelectItem::Sketch(SketchFunc::Pctl(99.0))),
            "COUNT_DISTINCT" => match arg {
                Some(arg) if !arg.eq_ignore_ascii_case("Tid") => Err(MdbError::Query(format!(
                    "COUNT_DISTINCT counts distinct Tid, not {arg}"
                ))),
                _ => Ok(SelectItem::Sketch(SketchFunc::CountDistinct)),
            },
            _ => parse_agg_name(&name),
        };
    }
    Ok(SelectItem::Column(name))
}

fn expect_rparen(p: &mut Parser) -> Result<()> {
    match p.next() {
        Some(Token::RParen) => Ok(()),
        other => Err(MdbError::Query(format!("expected ), found {other:?}"))),
    }
}

/// Resolves `SUM`, `SUM_S`, and `CUBE_SUM_HOUR` style names.
fn parse_agg_name(name: &str) -> Result<SelectItem> {
    let upper = name.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("CUBE_") {
        let mut parts = rest.splitn(2, '_');
        let func = parts
            .next()
            .and_then(AggFunc::parse)
            .ok_or_else(|| MdbError::Query(format!("unknown aggregate {name}")))?;
        let level = parts
            .next()
            .and_then(TimeLevel::parse)
            .ok_or_else(|| MdbError::Query(format!("unknown time level in {name}")))?;
        return Ok(SelectItem::Agg {
            func,
            cube: Some(level),
        });
    }
    let base = upper.strip_suffix("_S").unwrap_or(&upper);
    let func =
        AggFunc::parse(base).ok_or_else(|| MdbError::Query(format!("unknown function {name}")))?;
    Ok(SelectItem::Agg { func, cube: None })
}

fn parse_predicate(p: &mut Parser) -> Result<Predicate> {
    let column = p.ident()?;
    let upper = column.to_ascii_uppercase();
    match upper.as_str() {
        "TID" => match p.next() {
            Some(Token::Eq) => Ok(Predicate::TidIn(vec![p.int()? as Tid])),
            Some(Token::Ident(kw)) if kw.eq_ignore_ascii_case("IN") => {
                match p.next() {
                    Some(Token::LParen) => {}
                    other => return Err(MdbError::Query(format!("expected (, found {other:?}"))),
                }
                let mut tids = Vec::new();
                loop {
                    tids.push(p.int()? as Tid);
                    match p.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        other => {
                            return Err(MdbError::Query(format!(
                                "expected , or ), found {other:?}"
                            )))
                        }
                    }
                }
                Ok(Predicate::TidIn(tids))
            }
            other => Err(MdbError::Query(format!(
                "expected = or IN after Tid, found {other:?}"
            ))),
        },
        "TS" | "STARTTIME" | "ENDTIME" => {
            let time_col = match upper.as_str() {
                "TS" => TimeColumn::Ts,
                "STARTTIME" => TimeColumn::StartTime,
                _ => TimeColumn::EndTime,
            };
            if p.take_keyword("BETWEEN") {
                let lo = parse_timestamp(p)?;
                p.expect_keyword("AND")?;
                let hi = parse_timestamp(p)?;
                // BETWEEN desugars into two conjuncts; fold into one
                // predicate pair by returning the first and pushing back the
                // second is awkward, so BETWEEN is encoded as Ge + a
                // synthetic And handled here:
                return Ok(Predicate::Time {
                    column: time_col,
                    op: CmpOp::Ge,
                    value: lo,
                })
                .inspect(|_ge| {
                    // Stash the second half for the caller by splicing it
                    // into the token stream as `AND <col> <= hi`.
                    p.tokens.insert(p.pos, Token::Ident("AND".into()));
                    p.tokens.insert(p.pos + 1, Token::Ident(column.clone()));
                    p.tokens.insert(p.pos + 2, Token::Le);
                    p.tokens.insert(p.pos + 3, Token::Int(hi));
                });
            }
            let op = parse_cmp_op(p)?;
            let value = parse_timestamp(p)?;
            Ok(Predicate::Time {
                column: time_col,
                op,
                value,
            })
        }
        "VALUE" => {
            let op = parse_cmp_op(p)?;
            let value = match p.next() {
                Some(Token::Int(v)) => v as f64,
                Some(Token::Float(v)) => v,
                other => return Err(MdbError::Query(format!("expected number, found {other:?}"))),
            };
            Ok(Predicate::Value { op, value })
        }
        _ => {
            // Dimension member equality.
            match p.next() {
                Some(Token::Eq) => {}
                other => {
                    return Err(MdbError::Query(format!(
                        "expected = after {column}, found {other:?}"
                    )))
                }
            }
            match p.next() {
                Some(Token::Str(value)) => Ok(Predicate::MemberEq { column, value }),
                Some(Token::Ident(value)) => Ok(Predicate::MemberEq { column, value }),
                other => Err(MdbError::Query(format!(
                    "expected member literal, found {other:?}"
                ))),
            }
        }
    }
}

/// Parses one comparison operator token.
fn parse_cmp_op(p: &mut Parser) -> Result<CmpOp> {
    match p.next() {
        Some(Token::Eq) => Ok(CmpOp::Eq),
        Some(Token::Lt) => Ok(CmpOp::Lt),
        Some(Token::Le) => Ok(CmpOp::Le),
        Some(Token::Gt) => Ok(CmpOp::Gt),
        Some(Token::Ge) => Ok(CmpOp::Ge),
        other => Err(MdbError::Query(format!(
            "expected comparison, found {other:?}"
        ))),
    }
}

fn parse_timestamp(p: &mut Parser) -> Result<Timestamp> {
    match p.next() {
        Some(Token::Int(v)) => Ok(v),
        Some(Token::Str(s)) => parse_timestamp_literal(&s),
        other => Err(MdbError::Query(format!(
            "expected timestamp, found {other:?}"
        ))),
    }
}

/// Parses `YYYY-MM-DD`, `YYYY-MM-DD HH:MM`, or `YYYY-MM-DD HH:MM:SS`.
pub fn parse_timestamp_literal(s: &str) -> Result<Timestamp> {
    let bad = || MdbError::Query(format!("invalid timestamp literal {s:?}"));
    let (date, time) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dp = date.split('-');
    let year: i64 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let month: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let day: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if dp.next().is_some()
        || !(1..=12).contains(&month)
        || day < 1
        || day > mdb_types::time::days_in_month(year, month)
    {
        return Err(bad());
    }
    let (mut hour, mut minute, mut second) = (0u32, 0u32, 0u32);
    if let Some(t) = time {
        let mut tp = t.split(':');
        hour = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        minute = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if let Some(sec) = tp.next() {
            second = sec.parse().map_err(|_| bad())?;
        }
        if tp.next().is_some() || hour > 23 || minute > 59 || second > 59 {
            return Err(bad());
        }
    }
    Ok(mdb_types::time::compose(mdb_types::time::Civil {
        year,
        month,
        day,
        hour,
        minute,
        second,
        millisecond: 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_query_parses() {
        let q =
            parse("SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid").unwrap();
        assert_eq!(q.view, View::Segment);
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.items[0], SelectItem::Column("Tid".into()));
        assert_eq!(
            q.items[1],
            SelectItem::Agg {
                func: AggFunc::Sum,
                cube: None
            }
        );
        assert_eq!(q.predicates, vec![Predicate::TidIn(vec![1, 2, 3])]);
        assert_eq!(q.group_by, vec!["Tid".to_string()]);
    }

    #[test]
    fn figure12_cube_query_parses() {
        let q =
            parse("SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid IN (1,2,3) GROUP BY Tid")
                .unwrap();
        assert_eq!(
            q.items[1],
            SelectItem::Agg {
                func: AggFunc::Sum,
                cube: Some(TimeLevel::Hour)
            }
        );
    }

    #[test]
    fn data_point_view_aggregates() {
        let q = parse("SELECT AVG(Value) FROM DataPoint WHERE Tid = 7").unwrap();
        assert_eq!(q.view, View::DataPoint);
        assert_eq!(
            q.items[0],
            SelectItem::Agg {
                func: AggFunc::Avg,
                cube: None
            }
        );
        assert_eq!(q.predicates, vec![Predicate::TidIn(vec![7])]);
    }

    #[test]
    fn point_range_queries() {
        let q =
            parse("SELECT * FROM DataPoint WHERE Tid = 1 AND TS >= 1000 AND TS <= 2000").unwrap();
        assert_eq!(q.items, vec![SelectItem::AllColumns]);
        assert_eq!(q.predicates.len(), 3);
        let q = parse("SELECT * FROM DataPoint WHERE TS BETWEEN 1000 AND 2000").unwrap();
        assert_eq!(
            q.predicates,
            vec![
                Predicate::Time {
                    column: TimeColumn::Ts,
                    op: CmpOp::Ge,
                    value: 1000
                },
                Predicate::Time {
                    column: TimeColumn::Ts,
                    op: CmpOp::Le,
                    value: 2000
                },
            ]
        );
    }

    #[test]
    fn between_composes_with_more_conjuncts() {
        let q = parse("SELECT * FROM DataPoint WHERE TS BETWEEN 10 AND 20 AND Tid = 3").unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[2], Predicate::TidIn(vec![3]));
    }

    #[test]
    fn member_predicates_and_grouping() {
        let q = parse(
            "SELECT Category, SUM_S(*) FROM Segment WHERE Category = 'ProductionMWh' GROUP BY Category",
        )
        .unwrap();
        assert_eq!(
            q.predicates,
            vec![Predicate::MemberEq {
                column: "Category".into(),
                value: "ProductionMWh".into()
            }]
        );
        assert_eq!(q.group_by, vec!["Category".to_string()]);
    }

    #[test]
    fn timestamp_literals() {
        assert_eq!(parse_timestamp_literal("1970-01-01").unwrap(), 0);
        assert_eq!(parse_timestamp_literal("1970-01-02").unwrap(), 86_400_000);
        assert_eq!(
            parse_timestamp_literal("1970-01-01 01:02:03").unwrap(),
            3_723_000
        );
        assert_eq!(
            parse_timestamp_literal("1970-01-01 01:02").unwrap(),
            3_720_000
        );
        assert!(parse_timestamp_literal("1970-13-01").is_err());
        assert!(parse_timestamp_literal("1970-02-30").is_err());
        assert!(parse_timestamp_literal("junk").is_err());
        let q = parse("SELECT * FROM DataPoint WHERE TS >= '1970-01-02'").unwrap();
        assert_eq!(
            q.predicates,
            vec![Predicate::Time {
                column: TimeColumn::Ts,
                op: CmpOp::Ge,
                value: 86_400_000
            }]
        );
    }

    #[test]
    fn value_predicates() {
        let q = parse("SELECT * FROM DataPoint WHERE Value >= 2.5 AND Value < 10").unwrap();
        assert_eq!(
            q.predicates,
            vec![
                Predicate::Value {
                    op: CmpOp::Ge,
                    value: 2.5
                },
                Predicate::Value {
                    op: CmpOp::Lt,
                    value: 10.0
                },
            ]
        );
        let q = parse("SELECT SUM_S(*) FROM Segment WHERE Value = -3.25").unwrap();
        assert_eq!(
            q.predicates,
            vec![Predicate::Value {
                op: CmpOp::Eq,
                value: -3.25
            }]
        );
        assert!(parse("SELECT * FROM DataPoint WHERE Value LIKE 3").is_err());
        assert!(parse("SELECT * FROM DataPoint WHERE Value > 'high'").is_err());
    }

    #[test]
    fn order_and_limit() {
        let q = parse("SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid DESC LIMIT 5")
            .unwrap();
        assert_eq!(q.order_by, Some(("Tid".into(), true)));
        assert_eq!(q.limit, Some(5));
        let q = parse("SELECT Tid FROM Segment ORDER BY Tid ASC").unwrap();
        assert_eq!(q.order_by, Some(("Tid".into(), false)));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("").is_err());
        assert!(parse("SELECT FROM Segment").is_err());
        assert!(parse("SELECT * FROM Unknown").is_err());
        assert!(parse("SELECT * FROM Segment WHERE Tid LIKE 3").is_err());
        assert!(parse("SELECT MEDIAN(*) FROM Segment").is_err());
        assert!(parse("SELECT CUBE_SUM_FORTNIGHT(*) FROM Segment").is_err());
        assert!(parse("SELECT * FROM Segment LIMIT -1").is_err());
        assert!(parse("SELECT * FROM Segment trailing garbage '").is_err());
        assert!(parse("SELECT * FROM DataPoint WHERE TS >= 'not a date'").is_err());
    }

    #[test]
    fn sketch_function_forms() {
        for (sql, func) in [
            ("P50_S(*)", SketchFunc::Pctl(50.0)),
            ("P99_S(*)", SketchFunc::Pctl(99.0)),
            ("p50_s(Value)", SketchFunc::Pctl(50.0)),
            ("PCTL_S(50)", SketchFunc::Pctl(50.0)),
            ("PCTL_S(99.9)", SketchFunc::Pctl(99.9)),
            ("PCTL_S(0)", SketchFunc::Pctl(0.0)),
            ("COUNT_DISTINCT(Tid)", SketchFunc::CountDistinct),
            ("count_distinct(*)", SketchFunc::CountDistinct),
            ("TOP_K_S(3)", SketchFunc::TopK(3)),
            ("top_k_s(1)", SketchFunc::TopK(1)),
        ] {
            let q = parse(&format!("SELECT {sql} FROM Segment")).unwrap();
            assert_eq!(q.items[0], SelectItem::Sketch(func), "{sql}");
        }
        assert_eq!(SketchFunc::Pctl(50.0).column_name(), "PCTL_S(50)");
        assert_eq!(SketchFunc::Pctl(99.9).column_name(), "PCTL_S(99.9)");
        assert_eq!(
            SketchFunc::CountDistinct.column_name(),
            "COUNT_DISTINCT(Tid)"
        );
        assert_eq!(SketchFunc::TopK(7).column_name(), "TOP_K_S(7)");
    }

    #[test]
    fn rejects_malformed_sketch_functions() {
        assert!(parse("SELECT PCTL_S(*) FROM Segment").is_err());
        assert!(parse("SELECT PCTL_S(101) FROM Segment").is_err());
        assert!(parse("SELECT PCTL_S(-1) FROM Segment").is_err());
        assert!(parse("SELECT PCTL_S(50 FROM Segment").is_err());
        assert!(parse("SELECT TOP_K_S(0) FROM Segment").is_err());
        assert!(parse("SELECT TOP_K_S(*) FROM Segment").is_err());
        assert!(parse("SELECT TOP_K_S(2.5) FROM Segment").is_err());
        assert!(parse("SELECT COUNT_DISTINCT(Value) FROM Segment").is_err());
    }

    #[test]
    fn all_agg_suffix_forms() {
        for (name, func) in [
            ("COUNT_S", AggFunc::Count),
            ("MIN_S", AggFunc::Min),
            ("MAX_S", AggFunc::Max),
            ("SUM_S", AggFunc::Sum),
            ("AVG_S", AggFunc::Avg),
        ] {
            let q = parse(&format!("SELECT {name}(*) FROM Segment")).unwrap();
            assert_eq!(q.items[0], SelectItem::Agg { func, cube: None });
        }
        for level in ["YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND"] {
            let q = parse(&format!("SELECT CUBE_AVG_{level}(*) FROM Segment")).unwrap();
            assert!(matches!(
                q.items[0],
                SelectItem::Agg {
                    func: AggFunc::Avg,
                    cube: Some(_)
                }
            ));
        }
    }
}

//! The segment generator: the four-step ingestion method of Section 3.2.
//!
//! One generator compresses one *static* set of series (a whole group, or the
//! active subset of a group between gap events / dynamic splits). Per tick it
//! receives one value per series; models are fitted in registry order:
//!
//! 1. the tick is appended to the buffer,
//! 2. the current model tries to extend itself with the new values,
//! 3. on failure the next model replays the buffer from the start; when the
//!    *last* model can fit no more, the model with the best compression ratio
//!    is flushed as a segment,
//! 4. the data points represented by the flushed model leave the buffer and
//!    the process restarts from the first model on the remainder.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use mdb_models::{compression_ratio, Fitter, ModelRegistry, SEGMENT_HEADER_BYTES};
use mdb_types::{ErrorBound, GapsMask, Gid, MdbError, Result, SegmentRecord, Timestamp, Value};

use crate::CompressionConfig;

/// One buffered tick: the group's values at one timestamp (one value per
/// series handled by this generator, in member-position order).
#[derive(Debug, Clone)]
pub struct Tick {
    pub timestamp: Timestamp,
    pub values: Vec<Value>,
}

/// A candidate model recorded when its fitter stopped accepting ticks.
struct Candidate {
    mid: u8,
    len: usize,
    params: Vec<u8>,
}

impl Candidate {
    fn ratio(&self, n_series: usize) -> f64 {
        compression_ratio(self.len, n_series, SEGMENT_HEADER_BYTES + self.params.len())
    }
}

/// Compresses a fixed set of series of one group into segments.
pub struct SegmentGenerator {
    gid: Gid,
    sampling_interval: i64,
    /// Positions of the handled series within the *original* group; their
    /// complement becomes the segment's gaps mask.
    positions: Vec<usize>,
    group_size: usize,
    bound: ErrorBound,
    registry: Arc<ModelRegistry>,
    config: CompressionConfig,
    buffer: VecDeque<Tick>,
    /// Value vectors recycled from ticks that left the buffer, so steady-state
    /// ingestion pushes ticks without heap allocation.
    spare: Vec<Vec<Value>>,
    /// Index of the model currently fitting (into the registry order).
    model_idx: usize,
    fitter: Box<dyn Fitter>,
    /// How many buffer ticks the current fitter has consumed (== its len).
    fitted: usize,
    candidates: Vec<Candidate>,
    /// Segments emitted by this generator since it was created (drives the
    /// join-candidacy bookkeeping of Section 4.2).
    pub(crate) segments_emitted: u64,
    /// Join threshold state (Section 4.2): how many more segments must be
    /// emitted before the next join attempt.
    pub(crate) join_threshold: u64,
}

impl SegmentGenerator {
    /// A generator for the series at `positions` (within a group of
    /// `group_size`) of group `gid`.
    pub fn new(
        gid: Gid,
        sampling_interval: i64,
        positions: Vec<usize>,
        group_size: usize,
        registry: Arc<ModelRegistry>,
        config: CompressionConfig,
    ) -> Result<Self> {
        if registry.is_empty() {
            return Err(MdbError::Config("model registry is empty".into()));
        }
        if positions.is_empty() {
            return Err(MdbError::Config(
                "segment generator needs at least one series".into(),
            ));
        }
        let bound = config.error_bound;
        let fitter = registry
            .get(0)
            .unwrap()
            .fitter(bound, positions.len(), config.length_limit);
        Ok(Self {
            gid,
            sampling_interval,
            positions,
            group_size,
            bound,
            registry,
            config,
            buffer: VecDeque::new(),
            spare: Vec::new(),
            model_idx: 0,
            fitter,
            fitted: 0,
            candidates: Vec::new(),
            segments_emitted: 0,
            join_threshold: 1,
        })
    }

    /// The member positions handled by this generator.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The number of series handled.
    pub fn n_series(&self) -> usize {
        self.positions.len()
    }

    /// The buffered, not-yet-emitted ticks (Algorithms 3 and 4 read these).
    pub fn buffer(&self) -> &VecDeque<Tick> {
        &self.buffer
    }

    /// The gaps mask of segments this generator emits: every position of the
    /// original group that this generator does *not* represent.
    fn gaps_mask(&self) -> GapsMask {
        let mut mask = GapsMask::EMPTY;
        for p in 0..self.group_size {
            if !self.positions.contains(&p) {
                mask.set(p);
            }
        }
        mask
    }

    /// Ingests the values for one tick (`values[i]` belongs to the series at
    /// `positions[i]`) and returns any segments that became final. The values
    /// are copied into a recycled buffer slot, so in steady state (no segment
    /// emission) a push performs no heap allocation.
    pub fn push(&mut self, timestamp: Timestamp, values: &[Value]) -> Result<Vec<SegmentRecord>> {
        debug_assert_eq!(values.len(), self.positions.len());
        let mut slot = self.spare.pop().unwrap_or_default();
        slot.clear();
        slot.extend_from_slice(values);
        self.buffer.push_back(Tick {
            timestamp,
            values: slot,
        });
        self.advance()
    }

    /// Step ii/iii of Section 3.2: feed unconsumed ticks to the current
    /// model, cascade through the model sequence on failure, and emit when
    /// the last model fails.
    fn advance(&mut self) -> Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        while self.fitted < self.buffer.len() {
            let tick = &self.buffer[self.fitted];
            if self.fitter.append(tick.timestamp, &tick.values) {
                self.fitted += 1;
                continue;
            }
            self.record_candidate();
            if !self.next_model() {
                out.push(self.select_and_emit()?);
                self.reset_round();
            }
        }
        Ok(out)
    }

    /// Forces everything buffered out as segments (used at gap boundaries,
    /// splits, joins, and shutdown).
    pub fn flush(&mut self) -> Result<Vec<SegmentRecord>> {
        let mut out = Vec::new();
        while !self.buffer.is_empty() {
            // Let the current model consume what it can, then give every
            // untried model a chance before selecting (so a flush picks the
            // same winner a natural emission would).
            loop {
                while self.fitted < self.buffer.len() {
                    let tick = &self.buffer[self.fitted];
                    if self.fitter.append(tick.timestamp, &tick.values) {
                        self.fitted += 1;
                    } else {
                        break;
                    }
                }
                self.record_candidate();
                if !self.next_model() {
                    break;
                }
            }
            out.push(self.select_and_emit()?);
            self.reset_round();
        }
        Ok(out)
    }

    fn record_candidate(&mut self) {
        if !self.fitter.is_empty() {
            self.candidates.push(Candidate {
                mid: self.model_idx as u8,
                len: self.fitter.len(),
                params: self.fitter.params(),
            });
        }
    }

    /// Moves to the next model in the sequence, replaying from the buffer
    /// start. Returns false when the sequence is exhausted.
    fn next_model(&mut self) -> bool {
        if self.model_idx + 1 >= self.registry.len() {
            return false;
        }
        self.model_idx += 1;
        self.fitter = self.registry.get(self.model_idx as u8).unwrap().fitter(
            self.bound,
            self.positions.len(),
            self.config.length_limit,
        );
        self.fitted = 0;
        true
    }

    fn reset_round(&mut self) {
        self.model_idx = 0;
        self.fitter = self.registry.get(0).unwrap().fitter(
            self.bound,
            self.positions.len(),
            self.config.length_limit,
        );
        self.fitted = 0;
        self.candidates.clear();
    }

    /// Step iii of Section 3.2: pick the candidate with the best compression
    /// ratio, emit it as a segment, and drop the represented ticks.
    fn select_and_emit(&mut self) -> Result<SegmentRecord> {
        let n = self.positions.len();
        let best = self
            .candidates
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.ratio(n)
                    .partial_cmp(&b.ratio(n))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Ties prefer the earlier (cheaper to query) model.
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i);
        let best = match best {
            Some(i) => self.candidates.swap_remove(i),
            None => {
                return Err(MdbError::Ingestion(format!(
                    "gid {}: no model could represent the buffered values (registry has no lossless fallback?)",
                    self.gid
                )));
            }
        };
        let segment = self.build_segment(best)?;
        for _ in 0..segment.len() {
            if let Some(tick) = self.buffer.pop_front() {
                self.spare.push(tick.values);
            }
        }
        self.segments_emitted += 1;
        Ok(segment)
    }

    fn build_segment(&self, candidate: Candidate) -> Result<SegmentRecord> {
        let len = candidate.len;
        debug_assert!(len >= 1 && len <= self.buffer.len());
        let start_time = self.buffer[0].timestamp;
        let end_time = self.buffer[len - 1].timestamp;
        let mut mid = candidate.mid;
        let mut params = candidate.params;

        if self.config.verify_on_emit && !self.verify(mid, &params, len) {
            // Quantization pushed a lossy model out of bound: fall back to a
            // lossless encoding of the same ticks.
            let (fallback_mid, fallback_params) = self.lossless_fallback(len)?;
            mid = fallback_mid;
            params = fallback_params;
        }

        Ok(SegmentRecord {
            gid: self.gid,
            start_time,
            end_time,
            sampling_interval: self.sampling_interval,
            mid,
            params: Bytes::from(params),
            gaps: self.gaps_mask(),
        })
    }

    /// Reconstructs the candidate and checks every value against the bound.
    fn verify(&self, mid: u8, params: &[u8], len: usize) -> bool {
        let model = match self.registry.get(mid) {
            Some(m) => m,
            None => return false,
        };
        let n = self.positions.len();
        let grid = match model.grid(params, n, len) {
            Some(g) => g,
            None => return false,
        };
        for (t, tick) in self.buffer.iter().take(len).enumerate() {
            for (s, &orig) in tick.values.iter().enumerate() {
                if !self.bound.within(grid[t * n + s], orig) {
                    return false;
                }
            }
        }
        true
    }

    fn lossless_fallback(&self, len: usize) -> Result<(u8, Vec<u8>)> {
        // Find a model that accepts everything under a lossless bound: fit
        // the exact ticks and demand full acceptance.
        for (mid, model) in self.registry.iter() {
            let mut fitter = model.fitter(ErrorBound::Lossless, self.positions.len(), len.max(1));
            let mut ok = true;
            for tick in self.buffer.iter().take(len) {
                if !fitter.append(tick.timestamp, &tick.values) {
                    ok = false;
                    break;
                }
            }
            if ok && fitter.len() == len && self.verify(mid, &fitter.params(), len) {
                return Ok((mid, fitter.params()));
            }
        }
        Err(MdbError::Ingestion(format!(
            "gid {}: verification failed and no lossless fallback model exists",
            self.gid
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_models::{MID_GORILLA, MID_PMC_MEAN, MID_SWING};

    fn generator(n: usize, bound: ErrorBound) -> SegmentGenerator {
        let config = CompressionConfig {
            error_bound: bound,
            ..CompressionConfig::default()
        };
        SegmentGenerator::new(
            1,
            100,
            (0..n).collect(),
            n,
            Arc::new(ModelRegistry::standard()),
            config,
        )
        .unwrap()
    }

    fn within(
        bound: &ErrorBound,
        reg: &ModelRegistry,
        seg: &SegmentRecord,
        n: usize,
        rows: &[Vec<Value>],
        first_row: usize,
    ) {
        let model = reg.get(seg.mid).unwrap();
        let grid = model.grid(&seg.params, n, seg.len()).unwrap();
        for t in 0..seg.len() {
            for s in 0..n {
                let orig = rows[first_row + t][s];
                assert!(
                    bound.within(grid[t * n + s], orig),
                    "t={t} s={s}: {} vs {orig}",
                    grid[t * n + s]
                );
            }
        }
    }

    #[test]
    fn constant_signal_selects_pmc() {
        let mut g = generator(3, ErrorBound::absolute(0.5));
        let mut segments = Vec::new();
        for t in 0..120i64 {
            segments.extend(g.push(t * 100, &[10.0, 10.1, 9.9]).unwrap());
        }
        segments.extend(g.flush().unwrap());
        assert!(!segments.is_empty());
        assert!(
            segments.iter().all(|s| s.mid == MID_PMC_MEAN),
            "mids: {:?}",
            segments.iter().map(|s| s.mid).collect::<Vec<_>>()
        );
        // Segments partition the ticks: 120 ticks total.
        let total: usize = segments.iter().map(|s| s.len()).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn linear_signal_selects_swing() {
        let mut g = generator(2, ErrorBound::absolute(0.5));
        let mut segments = Vec::new();
        for t in 0..100i64 {
            let v = t as f32 * 2.0;
            segments.extend(g.push(t * 100, &[v, v + 0.2]).unwrap());
        }
        segments.extend(g.flush().unwrap());
        assert!(
            segments.iter().any(|s| s.mid == MID_SWING),
            "mids: {:?}",
            segments.iter().map(|s| s.mid).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_signal_falls_back_to_gorilla() {
        let mut g = generator(1, ErrorBound::absolute(0.0001));
        let mut segments = Vec::new();
        let mut x = 1234567u32;
        for t in 0..100i64 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let v = (x as f32 / u32::MAX as f32) * 1000.0;
            segments.extend(g.push(t * 100, &[v]).unwrap());
        }
        segments.extend(g.flush().unwrap());
        assert!(segments.iter().any(|s| s.mid == MID_GORILLA));
    }

    #[test]
    fn segments_are_disconnected_and_cover_all_ticks() {
        let mut g = generator(1, ErrorBound::absolute(1.0));
        let mut segments = Vec::new();
        let rows: Vec<Vec<Value>> = (0..300i64)
            .map(|t| {
                vec![if t % 60 < 30 {
                    10.0
                } else {
                    50.0 + t as f32 * 0.3
                }]
            })
            .collect();
        for (t, row) in rows.iter().enumerate() {
            segments.extend(g.push(t as i64 * 100, row).unwrap());
        }
        segments.extend(g.flush().unwrap());
        // Coverage: every tick appears in exactly one segment.
        let mut expected_start = 0i64;
        for s in &segments {
            assert_eq!(
                s.start_time, expected_start,
                "segments must not overlap or leave holes"
            );
            expected_start = s.end_time + 100;
        }
        assert_eq!(expected_start, 300 * 100);
        // And reconstruction respects the bound.
        let reg = ModelRegistry::standard();
        let bound = ErrorBound::absolute(1.0);
        let mut row_idx = 0;
        for s in &segments {
            within(&bound, &reg, s, 1, &rows, row_idx);
            row_idx += s.len();
        }
    }

    #[test]
    fn length_limit_bounds_segment_size() {
        let mut g = generator(1, ErrorBound::absolute(10.0));
        let mut segments = Vec::new();
        for t in 0..500i64 {
            segments.extend(g.push(t * 100, &[1.0]).unwrap());
        }
        segments.extend(g.flush().unwrap());
        assert!(segments.iter().all(|s| s.len() <= 50));
        assert_eq!(segments.iter().map(|s| s.len()).sum::<usize>(), 500);
    }

    #[test]
    fn flush_on_empty_buffer_is_a_noop() {
        let mut g = generator(1, ErrorBound::Lossless);
        assert!(g.flush().unwrap().is_empty());
        g.push(0, &[1.0]).unwrap();
        let s = g.flush().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 1);
        assert!(g.flush().unwrap().is_empty());
    }

    #[test]
    fn gaps_mask_marks_absent_positions() {
        let config = CompressionConfig::default();
        let mut g = SegmentGenerator::new(
            7,
            100,
            vec![0, 2],
            3,
            Arc::new(ModelRegistry::standard()),
            config,
        )
        .unwrap();
        g.push(0, &[1.0, 1.0]).unwrap();
        let segs = g.flush().unwrap();
        assert_eq!(segs[0].gaps, GapsMask::from_positions(&[1]));
        assert_eq!(segs[0].gid, 7);
    }

    #[test]
    fn nan_values_are_representable_via_gorilla() {
        let mut g = generator(1, ErrorBound::relative(5.0));
        g.push(0, &[f32::NAN]).unwrap();
        g.push(100, &[1.0]).unwrap();
        let segs = g.flush().unwrap();
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 2);
        assert!(segs.iter().all(|s| s.mid == MID_GORILLA));
    }

    #[test]
    fn empty_registry_and_positions_rejected() {
        let reg = Arc::new(ModelRegistry::empty());
        assert!(
            SegmentGenerator::new(1, 100, vec![0], 1, reg, CompressionConfig::default()).is_err()
        );
        let reg = Arc::new(ModelRegistry::standard());
        assert!(
            SegmentGenerator::new(1, 100, vec![], 1, reg, CompressionConfig::default()).is_err()
        );
    }

    #[test]
    fn higher_error_bounds_use_fewer_bytes() {
        let signal: Vec<Vec<Value>> = (0..2000i64)
            .map(|t| vec![(t as f32 * 0.01).sin() * 100.0 + 500.0])
            .collect();
        let mut sizes = Vec::new();
        for pct in [0.0, 1.0, 5.0, 10.0] {
            let bound = if pct == 0.0 {
                ErrorBound::Lossless
            } else {
                ErrorBound::relative(pct)
            };
            let mut g = generator(1, bound);
            let mut bytes = 0usize;
            for (t, row) in signal.iter().enumerate() {
                for s in g.push(t as i64 * 100, row).unwrap() {
                    bytes += s.storage_bytes();
                }
            }
            for s in g.flush().unwrap() {
                bytes += s.storage_bytes();
            }
            sizes.push(bytes);
        }
        assert!(
            sizes[0] > sizes[1] && sizes[1] >= sizes[2] && sizes[2] >= sizes[3],
            "{sizes:?}"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn all_emitted_segments_respect_the_bound(
            seed_values in proptest::collection::vec(proptest::collection::vec(-100.0f32..100.0, 2), 1..120),
            pct in 1.0f64..15.0,
        ) {
            let bound = ErrorBound::relative(pct);
            let reg = ModelRegistry::standard();
            let mut g = generator(2, bound);
            let mut segments = Vec::new();
            for (t, row) in seed_values.iter().enumerate() {
                segments.extend(g.push(t as i64 * 100, row).unwrap());
            }
            segments.extend(g.flush().unwrap());
            proptest::prop_assert_eq!(segments.iter().map(|s| s.len()).sum::<usize>(), seed_values.len());
            let mut row_idx = 0;
            for s in &segments {
                let model = reg.get(s.mid).unwrap();
                let grid = model.grid(&s.params, 2, s.len()).unwrap();
                for t in 0..s.len() {
                    for col in 0..2 {
                        let orig = seed_values[row_idx + t][col];
                        proptest::prop_assert!(
                            bound.within(grid[t * 2 + col], orig),
                            "t={} col={}: {} vs {}", t, col, grid[t * 2 + col], orig
                        );
                    }
                }
                row_idx += s.len();
            }
        }
    }
}

//! Multi-Model Group Compression during ingestion (Sections 3.2 and 4.2).
//!
//! * [`generator::SegmentGenerator`] implements the four-step ingestion loop
//!   of Section 3.2: buffer a data point from each series of a group, try to
//!   extend the current model, fall through the model sequence on failure,
//!   and flush the model with the best compression ratio as a segment.
//! * [`group::GroupIngestor`] coordinates one time series group end-to-end:
//!   it applies scaling constants, detects gaps and emits the
//!   segment-per-active-subset representation of Figure 5, and drives the
//!   dynamic split/join machinery.
//! * [`split`] implements Algorithm 3 (splitting a group whose series became
//!   temporarily uncorrelated) and Algorithm 4 (joining split groups back).

pub mod generator;
pub mod group;
pub mod split;

use mdb_types::ErrorBound;

pub use generator::SegmentGenerator;
pub use group::{CompressionStats, GroupIngestor};

/// Configuration of the compression pipeline; defaults follow Table 1 of the
/// paper's evaluation.
#[derive(Debug, Clone)]
pub struct CompressionConfig {
    /// The user-defined error bound (possibly zero / lossless).
    pub error_bound: ErrorBound,
    /// Model Length Limit: the maximum number of timestamps one model may
    /// represent (Table 1: 50).
    pub length_limit: usize,
    /// Verify every emitted segment by reconstructing it and checking the
    /// error bound, falling back to the lossless model if the check fails
    /// (guards the rare f32-quantization edge cases of lossy models).
    pub verify_on_emit: bool,
    /// Enable dynamic splitting of groups whose series become temporarily
    /// uncorrelated (Section 4.2).
    pub dynamic_split: bool,
    /// Dynamic Split Fraction (Table 1: 10): a segment triggers a split when
    /// its compression ratio is below `average / split_fraction`.
    pub split_fraction: f64,
    /// How many segments a split group must emit before its first join
    /// attempt; doubled after every failed attempt (Section 4.2).
    pub join_initial_threshold: u64,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self {
            error_bound: ErrorBound::Lossless,
            length_limit: 50,
            verify_on_emit: true,
            dynamic_split: true,
            split_fraction: 10.0,
            join_initial_threshold: 1,
        }
    }
}

impl CompressionConfig {
    /// A config with the given relative error bound in percent (the knob the
    /// paper's evaluation turns: 0 %, 1 %, 5 %, 10 %).
    pub fn with_relative_bound(percent: f64) -> Self {
        Self {
            error_bound: ErrorBound::relative(percent),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = CompressionConfig::default();
        assert_eq!(c.length_limit, 50);
        assert_eq!(c.split_fraction, 10.0);
        assert!(c.error_bound.is_lossless());
        assert!(c.dynamic_split);
    }

    #[test]
    fn relative_bound_constructor() {
        let c = CompressionConfig::with_relative_bound(5.0);
        assert_eq!(c.error_bound, ErrorBound::Relative(5.0));
        let c = CompressionConfig::with_relative_bound(0.0);
        assert!(c.error_bound.is_lossless());
    }
}

//! Dynamic splitting and joining of groups (Section 4.2, Algorithms 3–4).
//!
//! External events (a turbine turned off or damaged) can temporarily
//! decorrelate the series of a group. After a segment with a poor compression
//! ratio, Algorithm 3 re-partitions the group's series by whether their
//! *buffered* (not yet emitted) data points lie within **twice** the error
//! bound of each other — two points outside the double bound can never be
//! approximated by one value. Algorithm 4 reverses the process: it compares
//! the most recent buffered points of two split groups (one series from each
//! suffices, since each group is internally correlated) and joins them when
//! every comparable point matches.

use std::collections::VecDeque;

use mdb_types::ErrorBound;

use crate::generator::Tick;

/// Algorithm 3: partitions the local series indexes `0..n_series` of a
/// generator into sub-groups whose buffered values are mutually within the
/// double error bound. The first series of the remainder seeds each group
/// (`TS1` in the paper) and every other series joins if *all* its buffered
/// points are within `2ε` of `TS1`'s.
pub fn split_into_correlated(
    buffer: &VecDeque<Tick>,
    n_series: usize,
    bound: &ErrorBound,
) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..n_series).collect();
    let mut splits = Vec::new();
    while !remaining.is_empty() {
        let first = remaining.remove(0);
        let mut group = vec![first];
        remaining.retain(|&s| {
            let compatible = buffer
                .iter()
                .all(|tick| bound.within_double(tick.values[first], tick.values[s]));
            if compatible {
                group.push(s);
                false
            } else {
                true
            }
        });
        splits.push(group);
    }
    splits
}

/// Algorithm 4's inner comparison: whether two split groups should be
/// re-joined, judged by one representative series from each. The buffers are
/// compared in reverse (most recent first); the groups are joinable when the
/// overlap is non-empty and *every* comparable pair is within the double
/// bound (`shortest > 0 and shortest = length` in the paper).
pub fn joinable(
    buffer_a: &VecDeque<Tick>,
    series_a: usize,
    buffer_b: &VecDeque<Tick>,
    series_b: usize,
    bound: &ErrorBound,
) -> bool {
    let shortest = buffer_a.len().min(buffer_b.len());
    if shortest == 0 {
        return false;
    }
    for i in 0..shortest {
        let ta = &buffer_a[buffer_a.len() - 1 - i];
        let tb = &buffer_b[buffer_b.len() - 1 - i];
        if ta.timestamp != tb.timestamp {
            return false;
        }
        if !bound.within_double(ta.values[series_a], tb.values[series_b]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(rows: &[&[f32]]) -> VecDeque<Tick> {
        rows.iter()
            .enumerate()
            .map(|(t, values)| Tick {
                timestamp: t as i64 * 100,
                values: values.to_vec(),
            })
            .collect()
    }

    #[test]
    fn correlated_series_stay_together() {
        let b = buffer(&[&[10.0, 10.1, 9.9], &[11.0, 11.2, 10.9]]);
        let splits = split_into_correlated(&b, 3, &ErrorBound::absolute(1.0));
        assert_eq!(splits, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn outlier_series_is_split_off() {
        // Series 2 diverged (turbine stopped): its values sit far from the
        // others.
        let b = buffer(&[&[10.0, 10.1, 0.0], &[11.0, 11.2, 0.0]]);
        let splits = split_into_correlated(&b, 3, &ErrorBound::absolute(1.0));
        assert_eq!(splits, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn each_series_alone_when_all_diverge() {
        let b = buffer(&[&[0.0, 100.0, 200.0]]);
        let splits = split_into_correlated(&b, 3, &ErrorBound::absolute(1.0));
        assert_eq!(splits, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn double_bound_is_the_criterion() {
        // 2ε = 2.0: values 10 and 12 are joinable, 10 and 12.5 are not.
        let bound = ErrorBound::absolute(1.0);
        let b = buffer(&[&[10.0, 12.0]]);
        assert_eq!(split_into_correlated(&b, 2, &bound).len(), 1);
        let b = buffer(&[&[10.0, 12.5]]);
        assert_eq!(split_into_correlated(&b, 2, &bound).len(), 2);
    }

    #[test]
    fn empty_buffer_groups_everything_together() {
        // With no evidence of divergence all series stay in one group.
        let b: VecDeque<Tick> = VecDeque::new();
        let splits = split_into_correlated(&b, 3, &ErrorBound::absolute(1.0));
        assert_eq!(splits, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn joinable_requires_full_overlap_match() {
        let bound = ErrorBound::absolute(1.0);
        let a = buffer(&[&[10.0], &[10.5], &[11.0]]);
        let b = buffer(&[&[10.2], &[10.6], &[11.1]]);
        assert!(joinable(&a, 0, &b, 0, &bound));
        // One divergent recent value blocks the join.
        let c = buffer(&[&[10.2], &[10.6], &[50.0]]);
        assert!(!joinable(&a, 0, &c, 0, &bound));
    }

    #[test]
    fn joinable_compares_most_recent_suffix() {
        let bound = ErrorBound::absolute(1.0);
        // The longer buffer's *older* points diverge, but the overlap with
        // the shorter buffer (its full length, from the end) matches.
        let long = buffer(&[&[99.0], &[10.5], &[11.0]]);
        let short: VecDeque<Tick> = vec![
            Tick {
                timestamp: 100,
                values: vec![10.4],
            },
            Tick {
                timestamp: 200,
                values: vec![11.2],
            },
        ]
        .into();
        assert!(joinable(&long, 0, &short, 0, &bound));
    }

    #[test]
    fn joinable_rejects_empty_and_misaligned_buffers() {
        let bound = ErrorBound::absolute(1.0);
        let empty: VecDeque<Tick> = VecDeque::new();
        let a = buffer(&[&[10.0]]);
        assert!(!joinable(&a, 0, &empty, 0, &bound));
        assert!(!joinable(&empty, 0, &empty, 0, &bound));
        // Same lengths but different timestamps (groups out of sync).
        let b: VecDeque<Tick> = vec![Tick {
            timestamp: 999,
            values: vec![10.0],
        }]
        .into();
        assert!(!joinable(&a, 0, &b, 0, &bound));
    }

    proptest::proptest! {
        #[test]
        fn split_produces_a_partition(
            rows in proptest::collection::vec(proptest::collection::vec(-50.0f32..50.0, 5), 1..20),
        ) {
            let b: VecDeque<Tick> = rows
                .iter()
                .enumerate()
                .map(|(t, values)| Tick { timestamp: t as i64, values: values.clone() })
                .collect();
            let splits = split_into_correlated(&b, 5, &ErrorBound::absolute(1.0));
            let mut seen: Vec<usize> = splits.iter().flatten().copied().collect();
            seen.sort();
            proptest::prop_assert_eq!(seen, (0..5).collect::<Vec<_>>());
            // Every member of a group is within the double bound of the
            // group's first member on every buffered tick.
            for group in &splits {
                let first = group[0];
                for &s in &group[1..] {
                    for tick in &b {
                        proptest::prop_assert!(
                            ErrorBound::absolute(1.0).within_double(tick.values[first], tick.values[s])
                        );
                    }
                }
            }
        }
    }
}

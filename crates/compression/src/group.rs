//! End-to-end ingestion for one time series group: scaling, gap handling
//! (Figure 5), and the dynamic split/join lifecycle of Figure 8.
//!
//! The coordinator maintains a *partition* of the group's member positions.
//! Initially the partition is one part containing every member (the `SG0`
//! state of Figure 8); Algorithm 3 refines it when series decorrelate and
//! Algorithm 4 coarsens it again. Each part with at least one non-gapped
//! member owns a [`SegmentGenerator`]; gap starts/ends flush and recreate the
//! affected generator so every segment represents a static set of series,
//! with absent members recorded in the segment's gaps mask (Section 3.2's
//! second gap-storage method, the one ModelarDB+ uses).

use std::sync::Arc;

use mdb_models::{compression_ratio, ModelRegistry};
use mdb_types::{
    BatchView, GroupMeta, MdbError, Result, RowBatch, SegmentRecord, Timestamp, Value,
};

use crate::generator::SegmentGenerator;
use crate::split::{joinable, split_into_correlated};
use crate::CompressionConfig;

/// Ingestion statistics, the raw material for Figures 16–17 (model usage)
/// and the compression experiments.
#[derive(Debug, Clone, Default)]
pub struct CompressionStats {
    /// Per-Mid usage, indexed by Mid.
    pub per_model: Vec<ModelUse>,
    /// Rows (ticks) ingested.
    pub rows: u64,
    /// Data points ingested (rows × present series).
    pub data_points: u64,
    /// Segments emitted.
    pub segments: u64,
    /// Total segment bytes (header + parameters).
    pub bytes: u64,
    /// Dynamic splits performed.
    pub splits: u64,
    /// Dynamic joins performed.
    pub joins: u64,
}

/// Usage counters for one model type.
#[derive(Debug, Clone, Default)]
pub struct ModelUse {
    /// Model name (from the registry).
    pub name: String,
    /// Segments stored with this model.
    pub segments: u64,
    /// Data points represented by this model.
    pub data_points: u64,
    /// Bytes stored (header + parameters).
    pub bytes: u64,
}

impl CompressionStats {
    fn record(&mut self, registry: &ModelRegistry, segment: &SegmentRecord, group_size: usize) {
        if self.per_model.len() < registry.len() {
            self.per_model = registry
                .names()
                .into_iter()
                .map(|n| ModelUse {
                    name: n.to_string(),
                    ..ModelUse::default()
                })
                .collect();
        }
        let points = segment.data_points(group_size) as u64;
        let bytes = segment.storage_bytes() as u64;
        self.segments += 1;
        self.bytes += bytes;
        if let Some(m) = self.per_model.get_mut(segment.mid as usize) {
            m.segments += 1;
            m.data_points += points;
            m.bytes += bytes;
        }
    }

    /// The share of data points represented by each model, in percent —
    /// the quantity plotted in Figures 16 and 17.
    pub fn model_shares(&self) -> Vec<(String, f64)> {
        let total: u64 = self.per_model.iter().map(|m| m.data_points).sum();
        self.per_model
            .iter()
            .map(|m| {
                let pct = if total == 0 {
                    0.0
                } else {
                    m.data_points as f64 / total as f64 * 100.0
                };
                (m.name.clone(), pct)
            })
            .collect()
    }

    /// Merges another group's statistics into this one (used by the engine to
    /// aggregate across groups and by the cluster to aggregate across nodes).
    pub fn merge(&mut self, other: &CompressionStats) {
        if self.per_model.len() < other.per_model.len() {
            self.per_model
                .resize(other.per_model.len(), ModelUse::default());
        }
        for (mine, theirs) in self.per_model.iter_mut().zip(&other.per_model) {
            if mine.name.is_empty() {
                mine.name = theirs.name.clone();
            }
            mine.segments += theirs.segments;
            mine.data_points += theirs.data_points;
            mine.bytes += theirs.bytes;
        }
        self.rows += other.rows;
        self.data_points += other.data_points;
        self.segments += other.segments;
        self.bytes += other.bytes;
        self.splits += other.splits;
        self.joins += other.joins;
    }
}

/// One part of the group partition: the member positions it owns and, when
/// any of them are currently receiving data, the generator compressing them.
struct Part {
    positions: Vec<usize>,
    generator: Option<SegmentGenerator>,
}

/// Ingests one time series group, producing segments.
pub struct GroupIngestor {
    group: GroupMeta,
    scaling: Vec<f64>,
    registry: Arc<ModelRegistry>,
    config: CompressionConfig,
    parts: Vec<Part>,
    last_timestamp: Option<Timestamp>,
    ratio_sum: f64,
    ratio_count: u64,
    stats: CompressionStats,
    /// Scratch buffers reused across ticks so steady-state ingestion performs
    /// no per-tick heap allocation.
    scratch_scaled: Vec<Option<Value>>,
    scratch_active: Vec<usize>,
    scratch_values: Vec<Value>,
    /// A single-row batch backing [`GroupIngestor::push_row`], which is a
    /// batch of one on the [`GroupIngestor::push_batch`] path.
    scratch_row: RowBatch,
}

impl GroupIngestor {
    /// An ingestor for `group`; `scaling[i]` is applied to the values of the
    /// series at member position `i` (Section 3.3), defaulting to 1.0.
    pub fn new(
        group: GroupMeta,
        scaling: Vec<f64>,
        registry: Arc<ModelRegistry>,
        config: CompressionConfig,
    ) -> Result<Self> {
        let size = group.size();
        if size > mdb_types::MAX_GROUP_SIZE {
            return Err(MdbError::Config(format!(
                "group {} has {size} members, max is {}",
                group.gid,
                mdb_types::MAX_GROUP_SIZE
            )));
        }
        let scaling = if scaling.is_empty() {
            vec![1.0; size]
        } else {
            scaling
        };
        if scaling.len() != size {
            return Err(MdbError::Config(format!(
                "group {} has {size} members but {} scaling constants",
                group.gid,
                scaling.len()
            )));
        }
        Ok(Self {
            group,
            scaling,
            registry,
            config,
            parts: Vec::new(),
            last_timestamp: None,
            ratio_sum: 0.0,
            ratio_count: 0,
            stats: CompressionStats::default(),
            scratch_scaled: Vec::with_capacity(size),
            scratch_active: Vec::with_capacity(size),
            scratch_values: Vec::with_capacity(size),
            scratch_row: RowBatch::with_capacity(size, 1),
        })
    }

    /// Group metadata.
    pub fn group(&self) -> &GroupMeta {
        &self.group
    }

    /// Running statistics.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// The current partition of member positions (for tests and the split
    /// ablation bench): one entry per part, each sorted ascending.
    pub fn partition(&self) -> Vec<Vec<usize>> {
        self.parts.iter().map(|p| p.positions.clone()).collect()
    }

    /// Ingests one tick: `row[i]` is the value of the series at member
    /// position `i`, or `None` while that series is in a gap (Definition 6).
    ///
    /// This is a batch of one on the [`GroupIngestor::push_batch`] path; like
    /// that path, a row with every member in a gap is skipped (a tick the
    /// whole group missed is a gap, not data).
    pub fn push_row(
        &mut self,
        timestamp: Timestamp,
        row: &[Option<Value>],
    ) -> Result<Vec<SegmentRecord>> {
        let size = self.group.size();
        if row.len() != size {
            return Err(MdbError::Ingestion(format!(
                "group {}: row has {} entries for {size} members",
                self.group.gid,
                row.len()
            )));
        }
        let mut batch = std::mem::take(&mut self.scratch_row);
        batch.clear();
        batch.push_row(timestamp, row);
        let result = self.push_batch(batch.view());
        self.scratch_row = batch;
        result
    }

    /// Ingests a batch of ticks: column `i` of `batch` belongs to the series
    /// at member position `i`. Rows where every member is in a gap are
    /// skipped — the following timestamp jump is then handled as a gap for
    /// the whole group, exactly as if the row had never been delivered.
    ///
    /// Timestamps are validated across the whole batch *before* any state
    /// changes, so a rejected batch ingests nothing — segments emitted by
    /// earlier rows cannot be lost to an error on a later row.
    ///
    /// In steady state (ticks that extend the current models without emitting
    /// segments) this path performs no per-tick heap allocation: scaling,
    /// active-member reconciliation, and the generators' tick buffers all
    /// reuse scratch storage.
    pub fn push_batch(&mut self, batch: BatchView<'_>) -> Result<Vec<SegmentRecord>> {
        let size = self.group.size();
        if batch.n_series() != size {
            return Err(MdbError::Ingestion(format!(
                "group {}: batch has {} columns for {size} members",
                self.group.gid,
                batch.n_series()
            )));
        }
        self.validate_timestamps(batch)?;
        let mut out = Vec::new();
        for row in 0..batch.len() {
            if batch.row_all_gaps(row) {
                continue;
            }
            self.push_tick(batch, row, &mut out)?;
        }
        Ok(out)
    }

    /// Checks that the batch's non-skipped rows continue the group's tick
    /// grid (strictly increasing, SI-aligned) without touching any state.
    fn validate_timestamps(&self, batch: BatchView<'_>) -> Result<()> {
        let si = self.group.sampling_interval;
        let mut last = self.last_timestamp;
        for row in 0..batch.len() {
            if batch.row_all_gaps(row) {
                continue;
            }
            let timestamp = batch.timestamp(row);
            if let Some(last) = last {
                if timestamp <= last {
                    return Err(MdbError::Ingestion(format!(
                        "group {}: timestamp {timestamp} is not after {last}",
                        self.group.gid
                    )));
                }
                if (timestamp - last) % si != 0 {
                    return Err(MdbError::Ingestion(format!(
                        "group {}: timestamp {timestamp} is not aligned to SI {si}",
                        self.group.gid
                    )));
                }
            }
            last = Some(timestamp);
        }
        Ok(())
    }

    /// Ingests one non-empty tick of `batch` into the partition, appending
    /// emitted segments to `out`.
    fn push_tick(
        &mut self,
        batch: BatchView<'_>,
        row: usize,
        out: &mut Vec<SegmentRecord>,
    ) -> Result<()> {
        let size = self.group.size();
        let si = self.group.sampling_interval;
        let timestamp = batch.timestamp(row);
        if let Some(last) = self.last_timestamp {
            // Monotonicity and SI alignment were established for the whole
            // batch by `validate_timestamps` before any row was ingested.
            debug_assert!(
                timestamp > last && (timestamp - last) % si == 0,
                "push_batch must validate timestamps up front"
            );
            if timestamp != last + si {
                // Whole ticks are missing: a gap for every series. Segments
                // must not span it (their length is derived from end − start).
                for part in &mut self.parts {
                    if let Some(generator) = &mut part.generator {
                        out.extend(Self::record_all(
                            &mut self.stats,
                            &mut self.ratio_sum,
                            &mut self.ratio_count,
                            &self.registry,
                            size,
                            generator.flush()?,
                        ));
                        part.generator = None;
                    }
                }
            }
        }
        self.last_timestamp = Some(timestamp);
        self.stats.rows += 1;

        // Scale the values once, up front, into the reused scratch column.
        self.scratch_scaled.clear();
        for s in 0..size {
            let scaled = batch
                .get(row, s)
                .map(|v| (f64::from(v) * self.scaling[s]) as Value);
            if scaled.is_some() {
                self.stats.data_points += 1;
            }
            self.scratch_scaled.push(scaled);
        }

        if self.parts.is_empty() {
            self.parts.push(Part {
                positions: (0..size).collect(),
                generator: None,
            });
        }

        // Reconcile each part's generator with its currently active members.
        for k in 0..self.parts.len() {
            self.scratch_active.clear();
            for &p in &self.parts[k].positions {
                if self.scratch_scaled[p].is_some() {
                    self.scratch_active.push(p);
                }
            }
            let matches = self.parts[k]
                .generator
                .as_ref()
                .is_some_and(|g| g.positions() == self.scratch_active.as_slice());
            if !matches {
                if let Some(mut generator) = self.parts[k].generator.take() {
                    out.extend(Self::record_all(
                        &mut self.stats,
                        &mut self.ratio_sum,
                        &mut self.ratio_count,
                        &self.registry,
                        size,
                        generator.flush()?,
                    ));
                }
                if !self.scratch_active.is_empty() {
                    self.parts[k].generator = Some(SegmentGenerator::new(
                        self.group.gid,
                        si,
                        self.scratch_active.clone(),
                        size,
                        Arc::clone(&self.registry),
                        self.config.clone(),
                    )?);
                }
            }
        }

        // Feed the tick and collect parts whose freshly emitted segments
        // compressed poorly (split triggers, Section 4.2).
        let mut split_candidates = Vec::new();
        for k in 0..self.parts.len() {
            let Some(generator) = self.parts[k].generator.as_mut() else {
                continue;
            };
            self.scratch_values.clear();
            for &p in generator.positions() {
                self.scratch_values
                    .push(self.scratch_scaled[p].expect("active position"));
            }
            let emitted = generator.push(timestamp, &self.scratch_values)?;
            if emitted.is_empty() {
                continue;
            }
            let n_series = generator.n_series();
            let mut poor = false;
            for segment in emitted {
                let ratio = compression_ratio(segment.len(), n_series, segment.storage_bytes());
                let average = if self.ratio_count == 0 {
                    ratio
                } else {
                    self.ratio_sum / self.ratio_count as f64
                };
                if ratio < average / self.config.split_fraction {
                    poor = true;
                }
                self.ratio_sum += ratio;
                self.ratio_count += 1;
                self.stats.record(&self.registry, &segment, size);
                out.push(segment);
            }
            let buffered = self.parts[k]
                .generator
                .as_ref()
                .is_some_and(|g| !g.buffer().is_empty());
            if poor && self.config.dynamic_split && n_series > 1 && buffered {
                split_candidates.push(k);
            }
        }

        for k in split_candidates {
            out.extend(self.split_part(k)?);
        }

        if self.config.dynamic_split && self.parts.len() > 1 {
            out.extend(self.try_joins()?);
        }

        Ok(())
    }

    /// Algorithm 3 applied to part `k`: re-partition its members by buffered
    /// correlation; gapped members are grouped together.
    fn split_part(&mut self, k: usize) -> Result<Vec<SegmentRecord>> {
        let size = self.group.size();
        let mut out = Vec::new();
        let part = &mut self.parts[k];
        let Some(generator) = part.generator.take() else {
            return Ok(out);
        };
        let buffer = generator.buffer().clone();
        let local_positions = generator.positions().to_vec();
        let subsets =
            split_into_correlated(&buffer, local_positions.len(), &self.config.error_bound);
        let gapped: Vec<usize> = part
            .positions
            .iter()
            .copied()
            .filter(|p| !local_positions.contains(p))
            .collect();
        if subsets.len() <= 1 && gapped.is_empty() {
            // Nothing to split after all; restore the generator.
            self.parts[k].generator = Some(generator);
            return Ok(out);
        }
        self.stats.splits += 1;
        // Build the new parts: one per correlated subset plus one for the
        // gapped members ("time series currently in a gap are grouped
        // together").
        let mut new_parts = Vec::new();
        for subset in &subsets {
            let positions: Vec<usize> =
                subset.iter().map(|&local| local_positions[local]).collect();
            let mut generator_new = SegmentGenerator::new(
                self.group.gid,
                self.group.sampling_interval,
                positions.clone(),
                size,
                Arc::clone(&self.registry),
                self.config.clone(),
            )?;
            generator_new.join_threshold = self.config.join_initial_threshold;
            // Replay the buffered ticks for this subset.
            let mut values = Vec::with_capacity(subset.len());
            for tick in &buffer {
                values.clear();
                values.extend(subset.iter().map(|&local| tick.values[local]));
                for segment in generator_new.push(tick.timestamp, &values)? {
                    self.stats.record(&self.registry, &segment, size);
                    out.push(segment);
                }
            }
            let mut positions_sorted = positions;
            positions_sorted.sort_unstable();
            new_parts.push(Part {
                positions: positions_sorted,
                generator: Some(generator_new),
            });
        }
        if !gapped.is_empty() {
            new_parts.push(Part {
                positions: gapped,
                generator: None,
            });
        }
        // Replace part k with the first new part, append the rest.
        self.parts.splice(k..=k, new_parts);
        Ok(out)
    }

    /// Algorithm 4: try to join split groups whose recent buffered values
    /// re-correlated. Runs to a fixpoint each tick it is invoked.
    fn try_joins(&mut self) -> Result<Vec<SegmentRecord>> {
        let size = self.group.size();
        let mut out = Vec::new();
        loop {
            let mut merged = None;
            'outer: for a in 0..self.parts.len() {
                let Some(ga) = &self.parts[a].generator else {
                    continue;
                };
                if ga.segments_emitted < ga.join_threshold {
                    continue;
                }
                for b in 0..self.parts.len() {
                    if a == b {
                        continue;
                    }
                    let Some(gb) = &self.parts[b].generator else {
                        continue;
                    };
                    if joinable(ga.buffer(), 0, gb.buffer(), 0, &self.config.error_bound) {
                        merged = Some((a, b));
                        break 'outer;
                    }
                }
                // A candidate that found no partner: double its threshold
                // ("each failed attempt further indicates the current splits
                // are preferable").
                let ga = self.parts[a].generator.as_mut().unwrap();
                ga.join_threshold = ga.join_threshold.saturating_mul(2);
                ga.segments_emitted = 0;
            }
            let Some((a, b)) = merged else { break };
            // Flush both sides and create a combined generator.
            for idx in [a, b] {
                if let Some(mut g) = self.parts[idx].generator.take() {
                    out.extend(Self::record_all(
                        &mut self.stats,
                        &mut self.ratio_sum,
                        &mut self.ratio_count,
                        &self.registry,
                        size,
                        g.flush()?,
                    ));
                }
            }
            let mut positions = self.parts[a].positions.clone();
            positions.extend(self.parts[b].positions.iter().copied());
            positions.sort_unstable();
            let (keep, remove) = if a < b { (a, b) } else { (b, a) };
            self.parts.remove(remove);
            self.parts[keep].positions = positions.clone();
            self.parts[keep].generator = Some(SegmentGenerator::new(
                self.group.gid,
                self.group.sampling_interval,
                positions,
                size,
                Arc::clone(&self.registry),
                self.config.clone(),
            )?);
            self.stats.joins += 1;
        }
        Ok(out)
    }

    /// Flushes every buffered tick as segments (shutdown / gap for all).
    pub fn flush(&mut self) -> Result<Vec<SegmentRecord>> {
        let size = self.group.size();
        let mut out = Vec::new();
        for part in &mut self.parts {
            if let Some(generator) = &mut part.generator {
                out.extend(Self::record_all(
                    &mut self.stats,
                    &mut self.ratio_sum,
                    &mut self.ratio_count,
                    &self.registry,
                    size,
                    generator.flush()?,
                ));
            }
        }
        Ok(out)
    }

    fn record_all(
        stats: &mut CompressionStats,
        ratio_sum: &mut f64,
        ratio_count: &mut u64,
        registry: &ModelRegistry,
        group_size: usize,
        segments: Vec<SegmentRecord>,
    ) -> Vec<SegmentRecord> {
        for segment in &segments {
            let n_present = segment.gaps.count_present(group_size);
            let ratio = compression_ratio(segment.len(), n_present, segment.storage_bytes());
            *ratio_sum += ratio;
            *ratio_count += 1;
            stats.record(registry, segment, group_size);
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_types::{ErrorBound, GapsMask, TimeSeriesMeta};

    fn group(n: usize) -> GroupMeta {
        let metas: Vec<TimeSeriesMeta> = (1..=n as u32)
            .map(|t| TimeSeriesMeta::new(t, 100))
            .collect();
        GroupMeta::new(1, (1..=n as u32).collect(), &metas).unwrap()
    }

    fn ingestor(n: usize, bound: ErrorBound) -> GroupIngestor {
        let config = CompressionConfig {
            error_bound: bound,
            ..CompressionConfig::default()
        };
        GroupIngestor::new(
            group(n),
            vec![],
            Arc::new(ModelRegistry::standard()),
            config,
        )
        .unwrap()
    }

    #[test]
    fn plain_ingestion_covers_all_ticks() {
        let mut ing = ingestor(3, ErrorBound::absolute(0.5));
        let mut segments = Vec::new();
        for t in 0..200i64 {
            let v = (t as f32 * 0.05).sin() * 10.0;
            segments.extend(
                ing.push_row(t * 100, &[Some(v), Some(v + 0.1), Some(v - 0.1)])
                    .unwrap(),
            );
        }
        segments.extend(ing.flush().unwrap());
        let points: usize = segments.iter().map(|s| s.data_points(3)).sum();
        assert_eq!(points, 600);
        assert_eq!(ing.stats().rows, 200);
        assert_eq!(ing.stats().data_points, 600);
        assert!(ing.stats().segments > 0);
    }

    #[test]
    fn figure5_gap_produces_subset_segments() {
        let mut ing = ingestor(3, ErrorBound::absolute(0.5));
        let mut segments = Vec::new();
        // Phase 1: all three series.
        for t in 0..10i64 {
            segments.extend(
                ing.push_row(t * 100, &[Some(1.0), Some(1.0), Some(1.0)])
                    .unwrap(),
            );
        }
        // Phase 2: series 1 (position 1) in a gap.
        for t in 10..20i64 {
            segments.extend(
                ing.push_row(t * 100, &[Some(1.0), None, Some(1.0)])
                    .unwrap(),
            );
        }
        // Phase 3: everyone back.
        for t in 20..30i64 {
            segments.extend(
                ing.push_row(t * 100, &[Some(1.0), Some(1.0), Some(1.0)])
                    .unwrap(),
            );
        }
        segments.extend(ing.flush().unwrap());
        // S1-like segments: all present; S2-like: position 1 missing.
        let with_gap: Vec<_> = segments.iter().filter(|s| !s.gaps.is_empty()).collect();
        assert!(!with_gap.is_empty());
        assert!(with_gap
            .iter()
            .all(|s| s.gaps == GapsMask::from_positions(&[1])));
        // Phase-2 segments cover exactly ticks 10..20.
        let gap_points: usize = with_gap.iter().map(|s| s.data_points(3)).sum();
        assert_eq!(gap_points, 10 * 2);
        // Total coverage: 10*3 + 10*2 + 10*3.
        let points: usize = segments.iter().map(|s| s.data_points(3)).sum();
        assert_eq!(points, 80);
    }

    #[test]
    fn whole_ticks_missing_split_segments() {
        let mut ing = ingestor(1, ErrorBound::absolute(0.5));
        let mut segments = Vec::new();
        for t in 0..5i64 {
            segments.extend(ing.push_row(t * 100, &[Some(1.0)]).unwrap());
        }
        // Jump over 5 ticks (gap for all series, Definition 5).
        for t in 10..15i64 {
            segments.extend(ing.push_row(t * 100, &[Some(1.0)]).unwrap());
        }
        segments.extend(ing.flush().unwrap());
        // No segment spans the missing interval.
        for s in &segments {
            assert!(
                !(s.start_time < 500 && s.end_time >= 1000),
                "segment spans the gap: {s:?}"
            );
        }
        let points: usize = segments.iter().map(|s| s.data_points(1)).sum();
        assert_eq!(points, 10);
    }

    #[test]
    fn misaligned_and_non_monotonic_timestamps_rejected() {
        let mut ing = ingestor(1, ErrorBound::Lossless);
        ing.push_row(0, &[Some(1.0)]).unwrap();
        assert!(ing.push_row(0, &[Some(1.0)]).is_err());
        assert!(ing.push_row(50, &[Some(1.0)]).is_err());
        assert!(ing.push_row(150, &[Some(1.0)]).is_err());
        assert!(ing.push_row(100, &[Some(1.0)]).is_ok());
        assert!(ing.push_row(200, &[Some(1.0), Some(2.0)]).is_err());
    }

    #[test]
    fn scaling_constants_are_applied() {
        let config = CompressionConfig {
            error_bound: ErrorBound::absolute(0.5),
            ..Default::default()
        };
        let mut ing = GroupIngestor::new(
            group(2),
            vec![1.0, 4.75],
            Arc::new(ModelRegistry::standard()),
            config,
        )
        .unwrap();
        // With scaling, series 1's raw value 2.0 becomes 9.5 ≈ series 0's 9.4.
        let mut segments = Vec::new();
        for t in 0..60i64 {
            segments.extend(ing.push_row(t * 100, &[Some(9.4), Some(2.0)]).unwrap());
        }
        segments.extend(ing.flush().unwrap());
        // Everything fits in single full-group PMC segments: no splits.
        assert_eq!(ing.stats().splits, 0);
        assert!(segments.iter().all(|s| s.gaps.is_empty()));
        let reg = ModelRegistry::standard();
        let model = reg.get(segments[0].mid).unwrap();
        let grid = model
            .grid(&segments[0].params, 2, segments[0].len())
            .unwrap();
        assert!((grid[0] - 9.45).abs() < 0.51);
    }

    #[test]
    fn decorrelation_triggers_split_and_rejoin() {
        let config = CompressionConfig {
            error_bound: ErrorBound::absolute(0.5),
            split_fraction: 2.0,
            ..Default::default()
        };
        let mut ing = GroupIngestor::new(
            group(2),
            vec![],
            Arc::new(ModelRegistry::standard()),
            config,
        )
        .unwrap();
        let mut segments = Vec::new();
        // Phase 1: correlated.
        for t in 0..150i64 {
            segments.extend(ing.push_row(t * 100, &[Some(5.0), Some(5.1)]).unwrap());
        }
        assert_eq!(ing.partition().len(), 1);
        // Phase 2: series 1 turbine turned off — wildly different values
        // with noise so grouped Gorilla segments compress poorly.
        let mut x = 99u32;
        for t in 150..320i64 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let noise = (x >> 16) as f32 / 65536.0;
            segments.extend(
                ing.push_row(
                    t * 100,
                    &[Some(5.0 + noise * 0.2), Some(500.0 + noise * 120.0)],
                )
                .unwrap(),
            );
        }
        assert!(
            ing.stats().splits >= 1,
            "expected a dynamic split, partition: {:?}",
            ing.partition()
        );
        // Phase 3: series 1 comes back; groups should eventually rejoin.
        for t in 320..900i64 {
            segments.extend(ing.push_row(t * 100, &[Some(5.0), Some(5.1)]).unwrap());
        }
        assert!(
            ing.stats().joins >= 1,
            "expected a dynamic join, partition: {:?}",
            ing.partition()
        );
        assert_eq!(ing.partition().len(), 1, "partition should be whole again");
        segments.extend(ing.flush().unwrap());
        // Coverage invariant even across split/join: each tick of each
        // series is represented exactly once.
        let points: usize = segments.iter().map(|s| s.data_points(2)).sum();
        assert_eq!(points, 900 * 2);
    }

    #[test]
    fn oversized_groups_rejected() {
        let n = mdb_types::MAX_GROUP_SIZE + 1;
        let metas: Vec<TimeSeriesMeta> = (1..=n as u32)
            .map(|t| TimeSeriesMeta::new(t, 100))
            .collect();
        let g = GroupMeta::new(1, (1..=n as u32).collect(), &metas).unwrap();
        let r = GroupIngestor::new(
            g,
            vec![],
            Arc::new(ModelRegistry::standard()),
            CompressionConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn wrong_scaling_length_rejected() {
        let r = GroupIngestor::new(
            group(3),
            vec![1.0],
            Arc::new(ModelRegistry::standard()),
            CompressionConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn stats_model_shares_sum_to_100() {
        let mut ing = ingestor(2, ErrorBound::relative(5.0));
        let mut x = 7u32;
        for t in 0..500i64 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let noise = (x >> 16) as f32 / 65536.0;
            let v = if t % 100 < 50 {
                10.0
            } else {
                10.0 + noise * 100.0
            };
            ing.push_row(t * 100, &[Some(v), Some(v * 1.01)]).unwrap();
        }
        ing.flush().unwrap();
        let shares = ing.stats().model_shares();
        let total: f64 = shares.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6, "shares: {shares:?}");
    }

    #[test]
    fn push_batch_matches_row_at_a_time() {
        let mut by_row = ingestor(3, ErrorBound::relative(5.0));
        let mut by_batch = ingestor(3, ErrorBound::relative(5.0));
        let mut batch = RowBatch::with_capacity(3, 400);
        let mut row_segments = Vec::new();
        let mut x = 5u32;
        for t in 0..400i64 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let noise = (x >> 16) as f32 / 65536.0;
            // Mix of steady signal, decorrelation noise, per-series gaps,
            // and whole-group gap ticks.
            let v = if t % 97 < 60 {
                10.0
            } else {
                10.0 + noise * 200.0
            };
            let row = [
                (t % 31 != 0).then_some(v),
                (t % 43 != 0).then_some(v * 1.01),
                (t % 13 != 7).then_some(v + noise),
            ];
            batch.push_row(t * 100, &row);
            row_segments.extend(by_row.push_row(t * 100, &row).unwrap());
        }
        row_segments.extend(by_row.flush().unwrap());
        let mut batch_segments = by_batch.push_batch(batch.view()).unwrap();
        batch_segments.extend(by_batch.flush().unwrap());
        assert_eq!(row_segments, batch_segments);
        assert_eq!(by_row.stats().rows, by_batch.stats().rows);
        assert_eq!(by_row.stats().data_points, by_batch.stats().data_points);
        assert_eq!(by_row.stats().segments, by_batch.stats().segments);
    }

    #[test]
    fn bad_batch_is_rejected_atomically() {
        let mut ing = ingestor(2, ErrorBound::absolute(0.5));
        // Warm up with enough ticks that a mid-batch emission is pending.
        let mut segments = Vec::new();
        for t in 0..75i64 {
            segments.extend(ing.push_row(t * 100, &[Some(1.0), Some(1.0)]).unwrap());
        }
        let rows_before = ing.stats().rows;
        // A batch whose 60th row repeats a timestamp: rejected up front,
        // before any row of the batch is ingested — no segments emitted by
        // earlier rows can be dropped with the error.
        let mut batch = RowBatch::with_capacity(2, 70);
        for t in 75..145i64 {
            let ts = if t == 135 { 134 * 100 } else { t * 100 };
            batch.push_row(ts, &[Some(1.0), Some(1.0)]);
        }
        assert!(ing.push_batch(batch.view()).is_err());
        assert_eq!(
            ing.stats().rows,
            rows_before,
            "rejected batch must ingest nothing"
        );
        // The stream continues cleanly from where it left off.
        segments.extend(ing.push_row(75 * 100, &[Some(1.0), Some(1.0)]).unwrap());
        segments.extend(ing.flush().unwrap());
        let points: usize = segments.iter().map(|s| s.data_points(2)).sum();
        assert_eq!(points, 76 * 2);
    }

    #[test]
    fn all_gap_rows_are_skipped_on_both_paths() {
        let mut ing = ingestor(2, ErrorBound::absolute(0.5));
        ing.push_row(0, &[Some(1.0), Some(1.0)]).unwrap();
        // A row the whole group missed is skipped, not an error and not data.
        ing.push_row(100, &[None, None]).unwrap();
        let segments = [
            ing.push_row(200, &[Some(1.0), Some(1.0)]).unwrap(),
            ing.flush().unwrap(),
        ]
        .concat();
        assert_eq!(ing.stats().rows, 2);
        assert_eq!(ing.stats().data_points, 4);
        // The skipped tick forces a segment boundary: nothing spans it.
        for s in &segments {
            assert!(
                !(s.start_time < 100 && s.end_time >= 100),
                "segment spans the gap: {s:?}"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn coverage_holds_under_random_gaps(
            pattern in proptest::collection::vec((proptest::bool::weighted(0.8), proptest::bool::weighted(0.8), -10.0f32..10.0), 1..150),
        ) {
            let mut ing = ingestor(2, ErrorBound::relative(5.0));
            let mut segments = Vec::new();
            let mut expected = 0usize;
            for (t, (p0, p1, v)) in pattern.iter().enumerate() {
                let row = [p0.then_some(*v), p1.then_some(v * 1.01)];
                expected += row.iter().flatten().count();
                segments.extend(ing.push_row(t as i64 * 100, &row).unwrap());
            }
            segments.extend(ing.flush().unwrap());
            let points: usize = segments.iter().map(|s| s.data_points(2)).sum();
            proptest::prop_assert_eq!(points, expected);
        }
    }
}

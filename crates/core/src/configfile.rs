//! The ModelarDB configuration file (Section 4.1).
//!
//! The paper specifies user hints "in ModelarDB's configuration file as
//! `modelardb.correlation` clauses"; this module parses that file format:
//!
//! ```text
//! # comments and blank lines are ignored
//! modelardb.error_bound          = 5.0          # percent; 0 = lossless
//! modelardb.length_limit         = 50
//! modelardb.dynamic_split        = true
//! modelardb.split_fraction       = 10
//! modelardb.bulk_write_size      = 50000
//! modelardb.storage              = memory       # or a directory path
//! modelardb.memory_budget        = 67108864     # block-cache bytes; or "unbounded"
//! modelardb.prefetch_depth       = 2            # blocks read ahead of a scan; 0 = off
//! modelardb.block_format         = v2           # layout for new blocks: v1 or v2
//! modelardb.query_parallelism    = 0            # scan workers; 0 = auto
//! modelardb.ingest_queue_depth   = 8            # bound on buffered ingest batches
//! modelardb.max_connections      = 256          # concurrent server sessions (serve mode)
//! modelardb.rollup_levels        = hour, day, month  # continuous aggregates; "none" = off
//! modelardb.rollup_serve         = true         # answer whole buckets from rollup cells
//!
//! modelardb.dimension            = Location, Country, Park, Turbine
//! modelardb.dimension            = Measure, Category, Concrete
//!
//! # series: <source>, <sampling interval ms> [, <Dim>=<m1>/<m2>/…]
//! modelardb.source               = t9632.gz, 100, Location=Denmark/Aalborg/9632
//!
//! modelardb.correlation          = Location 2
//! modelardb.correlation          = Measure 1 Temperature; Location 1
//! modelardb.correlation.weight   = Location 2.0
//! modelardb.correlation.scaling  = Measure 1 ProductionMWh 4.75
//! ```
//!
//! Repeated `correlation` lines OR together; primitives inside one line are
//! separated by `;` and AND together — exactly the clause semantics of the
//! paper.

use std::path::PathBuf;

use mdb_partitioner::spec::{parse_scaling, parse_weight};
use mdb_partitioner::CorrelationSpec;
use mdb_query::CommonOptions;
use mdb_types::{BlockFormat, DimensionSchema, ErrorBound, MdbError, Result, TimeLevel};

use crate::builder::{ModelarDbBuilder, SeriesSpec};
use crate::engine::StorageSpec;

/// A parsed configuration file, ready to be turned into a builder.
#[derive(Debug, Clone, Default)]
pub struct ConfigFile {
    pub dimensions: Vec<DimensionSchema>,
    pub series: Vec<SeriesSpec>,
    pub correlation: CorrelationSpec,
    pub error_bound_percent: f64,
    pub length_limit: Option<usize>,
    pub dynamic_split: Option<bool>,
    pub split_fraction: Option<f64>,
    pub bulk_write_size: Option<usize>,
    pub storage: Option<StorageSpec>,
    /// `Some(budget)` when a `memory_budget` line was present: the inner
    /// value is the block-cache byte budget, `None` meaning "unbounded".
    pub memory_budget_bytes: Option<Option<u64>>,
    pub prefetch_depth: Option<usize>,
    pub block_format: Option<BlockFormat>,
    pub query_parallelism: Option<usize>,
    pub ingest_queue_depth: Option<usize>,
    /// Server-only (like [`ServerOptions::max_connections`]): ignored by
    /// the embedded engine and the cluster, applied by `serve` mode.
    ///
    /// [`ServerOptions::max_connections`]: mdb_server::ServerOptions
    pub max_connections: Option<usize>,
    /// `Some(levels)` when a `rollup_levels` line was present; `none`
    /// parses to an empty list (rollups off).
    pub rollup_levels: Option<Vec<TimeLevel>>,
    pub rollup_serve: Option<bool>,
}

impl ConfigFile {
    /// Parses configuration text.
    pub fn parse(text: &str) -> Result<Self> {
        let mut cfg = ConfigFile::default();
        for (number, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                MdbError::Config(format!("line {}: expected key = value", number + 1))
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let ctx = |e: MdbError| MdbError::Config(format!("line {}: {e}", number + 1));
            match key.as_str() {
                "modelardb.error_bound" => {
                    cfg.error_bound_percent = value.parse::<f64>().map_err(|_| {
                        MdbError::Config(format!("line {}: bad error bound {value:?}", number + 1))
                    })?;
                }
                "modelardb.length_limit" => {
                    cfg.length_limit = Some(parse_number(value, number)?);
                }
                "modelardb.dynamic_split" => {
                    cfg.dynamic_split = Some(matches!(
                        value.to_ascii_lowercase().as_str(),
                        "true" | "on" | "1"
                    ));
                }
                "modelardb.split_fraction" => {
                    cfg.split_fraction = Some(value.parse::<f64>().map_err(|_| {
                        MdbError::Config(format!(
                            "line {}: bad split fraction {value:?}",
                            number + 1
                        ))
                    })?);
                }
                "modelardb.bulk_write_size" => {
                    cfg.bulk_write_size = Some(parse_number(value, number)?);
                }
                "modelardb.memory_budget" => {
                    cfg.memory_budget_bytes = Some(if value.eq_ignore_ascii_case("unbounded") {
                        None
                    } else {
                        Some(value.parse::<u64>().map_err(|_| {
                            MdbError::Config(format!(
                                "line {}: bad memory budget {value:?} (bytes or \"unbounded\")",
                                number + 1
                            ))
                        })?)
                    });
                }
                "modelardb.prefetch_depth" => {
                    cfg.prefetch_depth = Some(parse_number(value, number)?);
                }
                "modelardb.query_parallelism" => {
                    cfg.query_parallelism = Some(parse_number(value, number)?);
                }
                "modelardb.ingest_queue_depth" => {
                    cfg.ingest_queue_depth = Some(parse_number(value, number)?);
                }
                "modelardb.max_connections" => {
                    cfg.max_connections = Some(parse_number(value, number)?);
                }
                "modelardb.rollup_levels" => {
                    cfg.rollup_levels = Some(if value.eq_ignore_ascii_case("none") {
                        Vec::new()
                    } else {
                        value
                            .split(',')
                            .map(str::trim)
                            .map(|name| {
                                TimeLevel::parse(name).ok_or_else(|| {
                                    MdbError::Config(format!(
                                        "line {}: bad rollup level {name:?} \
                                         (year/month/day/hour/minute/second, or \"none\")",
                                        number + 1
                                    ))
                                })
                            })
                            .collect::<Result<Vec<TimeLevel>>>()?
                    });
                }
                "modelardb.rollup_serve" => {
                    cfg.rollup_serve = Some(matches!(
                        value.to_ascii_lowercase().as_str(),
                        "true" | "on" | "1"
                    ));
                }
                "modelardb.block_format" => {
                    cfg.block_format = Some(match value.to_ascii_lowercase().as_str() {
                        "v1" | "1" => BlockFormat::V1,
                        "v2" | "2" => BlockFormat::V2,
                        _ => {
                            return Err(MdbError::Config(format!(
                                "line {}: bad block format {value:?} (v1 or v2)",
                                number + 1
                            )))
                        }
                    });
                }
                "modelardb.storage" => {
                    cfg.storage = Some(if value.eq_ignore_ascii_case("memory") {
                        StorageSpec::Memory
                    } else {
                        StorageSpec::Disk(PathBuf::from(value))
                    });
                }
                "modelardb.dimension" => {
                    let mut parts = value.split(',').map(str::trim);
                    let name = parts.next().filter(|s| !s.is_empty()).ok_or_else(|| {
                        MdbError::Config(format!("line {}: dimension needs a name", number + 1))
                    })?;
                    let levels: Vec<String> = parts.map(str::to_string).collect();
                    cfg.dimensions
                        .push(DimensionSchema::new(name, levels).map_err(ctx)?);
                }
                "modelardb.source" => {
                    cfg.series.push(parse_source(value, number)?);
                }
                "modelardb.correlation" => {
                    cfg.correlation.add_clause(value).map_err(ctx)?;
                }
                "modelardb.correlation.weight" => {
                    let (dim, weight) = parse_weight(value).map_err(ctx)?;
                    cfg.correlation.weights.insert(dim, weight);
                }
                "modelardb.correlation.scaling" => {
                    cfg.correlation
                        .scaling
                        .push(parse_scaling(value).map_err(ctx)?);
                }
                other => {
                    return Err(MdbError::Config(format!(
                        "line {}: unknown key {other}",
                        number + 1
                    )));
                }
            }
        }
        Ok(cfg)
    }

    /// Loads and parses a configuration file from disk.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        Self::parse(&std::fs::read_to_string(path)?)
    }

    /// The deployment-shared knobs of the parsed file as one
    /// [`CommonOptions`] value — the single place the file's tuning lines
    /// are interpreted. Both the engine builder ([`ConfigFile::into_builder`])
    /// and a cluster config ([`ClusterConfig::from_common`]) start from it.
    ///
    /// [`ClusterConfig::from_common`]: mdb_cluster::ClusterConfig::from_common
    pub fn common_options(&self) -> CommonOptions {
        let mut options = CommonOptions::default();
        options.compression.error_bound = ErrorBound::relative(self.error_bound_percent);
        if let Some(limit) = self.length_limit {
            options.compression.length_limit = limit;
        }
        if let Some(split) = self.dynamic_split {
            options.compression.dynamic_split = split;
        }
        if let Some(fraction) = self.split_fraction {
            options.compression.split_fraction = fraction;
        }
        if let Some(size) = self.bulk_write_size {
            options.bulk_write_size = size;
        }
        if let Some(StorageSpec::Disk(dir)) = &self.storage {
            options.storage_dir = Some(dir.clone());
        }
        if let Some(budget) = self.memory_budget_bytes {
            options.memory_budget_bytes = budget;
        }
        if let Some(depth) = self.prefetch_depth {
            options.prefetch_depth = depth;
        }
        if let Some(workers) = self.query_parallelism {
            options.query_parallelism = workers;
        }
        if let Some(depth) = self.ingest_queue_depth {
            options.ingest_queue_depth = depth;
        }
        if let Some(levels) = &self.rollup_levels {
            options.rollup_levels = levels.clone();
        }
        if let Some(serve) = self.rollup_serve {
            options.rollup_serve = serve;
        }
        options
    }

    /// Turns the parsed file into a ready-to-build engine builder.
    pub fn into_builder(self) -> Result<ModelarDbBuilder> {
        let mut builder = ModelarDbBuilder::new();
        {
            let config = builder.config_mut();
            config.common = self.common_options();
            if let Some(storage) = self.storage {
                config.storage = storage;
            }
            if let Some(format) = self.block_format {
                config.block_format = format;
            }
        }
        for schema in self.dimensions {
            builder.add_dimension(schema);
        }
        for series in self.series {
            builder.add_series(series);
        }
        builder.with_correlation(self.correlation);
        Ok(builder)
    }
}

fn parse_number(value: &str, line: usize) -> Result<usize> {
    value
        .parse::<usize>()
        .map_err(|_| MdbError::Config(format!("line {}: bad number {value:?}", line + 1)))
}

/// `<source>, <si ms> [, <Dimension>=<member>/<member>/…]…`
fn parse_source(value: &str, line: usize) -> Result<SeriesSpec> {
    let mut parts = value.split(',').map(str::trim);
    let source = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| MdbError::Config(format!("line {}: source needs a name", line + 1)))?;
    let si = parts
        .next()
        .and_then(|s| s.parse::<i64>().ok())
        .ok_or_else(|| {
            MdbError::Config(format!(
                "line {}: source needs a sampling interval",
                line + 1
            ))
        })?;
    let mut spec = SeriesSpec::new(source, si);
    for member_spec in parts {
        let (dim, path) = member_spec.split_once('=').ok_or_else(|| {
            MdbError::Config(format!(
                "line {}: expected Dimension=member/member, got {member_spec:?}",
                line + 1
            ))
        })?;
        let members: Vec<&str> = path.split('/').map(str::trim).collect();
        spec = spec.with_members(dim.trim(), &members);
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# wind farm deployment
modelardb.error_bound   = 5.0
modelardb.length_limit  = 100
modelardb.dynamic_split = true
modelardb.split_fraction = 4
modelardb.bulk_write_size = 1000
modelardb.storage       = memory
modelardb.memory_budget = 8388608
modelardb.prefetch_depth = 4
modelardb.block_format  = v2
modelardb.query_parallelism = 2
modelardb.ingest_queue_depth = 16
modelardb.max_connections = 64

modelardb.dimension     = Location, Country, Park, Turbine
modelardb.dimension     = Measure, Category, Concrete

modelardb.source = t9632.gz, 100, Location=Denmark/Aalborg/9632, Measure=Temp/Nacelle
modelardb.source = t9634.gz, 100, Location=Denmark/Aalborg/9634, Measure=Temp/Nacelle
modelardb.source = t9572.gz, 100, Location=Denmark/Farsø/9572, Measure=Temp/Nacelle

modelardb.correlation   = Location 2
modelardb.correlation.weight  = Location 2.0
modelardb.correlation.scaling = series t9572.gz 4.75
";

    #[test]
    fn sample_file_parses_fully() {
        let cfg = ConfigFile::parse(SAMPLE).unwrap();
        assert_eq!(cfg.error_bound_percent, 5.0);
        assert_eq!(cfg.length_limit, Some(100));
        assert_eq!(cfg.dynamic_split, Some(true));
        assert_eq!(cfg.split_fraction, Some(4.0));
        assert_eq!(cfg.bulk_write_size, Some(1000));
        assert!(matches!(cfg.storage, Some(StorageSpec::Memory)));
        assert_eq!(cfg.memory_budget_bytes, Some(Some(8 << 20)));
        assert_eq!(cfg.prefetch_depth, Some(4));
        assert_eq!(cfg.block_format, Some(BlockFormat::V2));
        assert_eq!(cfg.query_parallelism, Some(2));
        assert_eq!(cfg.ingest_queue_depth, Some(16));
        assert_eq!(cfg.max_connections, Some(64));
        assert_eq!(cfg.dimensions.len(), 2);
        assert_eq!(cfg.dimensions[0].name(), "Location");
        assert_eq!(cfg.dimensions[0].height(), 3);
        assert_eq!(cfg.series.len(), 3);
        assert_eq!(cfg.series[0].source, "t9632.gz");
        assert_eq!(cfg.series[0].sampling_interval, 100);
        assert_eq!(cfg.series[0].members.len(), 2);
        assert_eq!(cfg.correlation.clauses.len(), 1);
        assert_eq!(cfg.correlation.weight("Location"), 2.0);
        assert_eq!(cfg.correlation.scaling.len(), 1);
    }

    #[test]
    fn sample_file_builds_a_working_engine() {
        let mut db = ConfigFile::parse(SAMPLE)
            .unwrap()
            .into_builder()
            .unwrap()
            .build()
            .unwrap();
        // "Location 2": LCA ≥ 2 = same park → 9632+9634 share a group.
        assert_eq!(db.catalog().groups.len(), 2);
        assert_eq!(db.catalog().gid_of(1), db.catalog().gid_of(2));
        assert_eq!(db.catalog().scaling_of(3), 4.75);
        for t in 0..300i64 {
            db.ingest_row(t * 100, &[Some(55.0), Some(55.1), Some(11.6)])
                .unwrap();
        }
        db.flush().unwrap();
        let r = db
            .sql("SELECT Park, COUNT_S(*) FROM Segment GROUP BY Park ORDER BY Park")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn comments_blank_lines_and_case_are_tolerated() {
        let cfg = ConfigFile::parse("\n# only a comment\nMODELARDB.ERROR_BOUND = 1.0 # inline\n")
            .unwrap();
        assert_eq!(cfg.error_bound_percent, 1.0);
    }

    #[test]
    fn memory_budget_parses_bytes_and_unbounded() {
        let cfg = ConfigFile::parse("modelardb.memory_budget = unbounded").unwrap();
        assert_eq!(cfg.memory_budget_bytes, Some(None));
        let cfg = ConfigFile::parse("modelardb.memory_budget = 1024").unwrap();
        assert_eq!(cfg.memory_budget_bytes, Some(Some(1024)));
        assert!(ConfigFile::parse("modelardb.memory_budget = lots").is_err());
    }

    #[test]
    fn tuning_keys_land_in_common_options() {
        let cfg = ConfigFile::parse(SAMPLE).unwrap();
        let options = cfg.common_options();
        assert_eq!(options.query_parallelism, 2);
        assert_eq!(options.ingest_queue_depth, 16);
        assert_eq!(options.bulk_write_size, 1000);
        assert_eq!(options.memory_budget_bytes, Some(8 << 20));
        // max_connections is server-only: not a CommonOptions knob.
        assert!(ConfigFile::parse("modelardb.max_connections = many").is_err());
        assert!(ConfigFile::parse("modelardb.query_parallelism = -1").is_err());
        assert!(ConfigFile::parse("modelardb.ingest_queue_depth = none").is_err());
    }

    #[test]
    fn rollup_keys_parse_and_land_in_common_options() {
        let cfg =
            ConfigFile::parse("modelardb.rollup_levels = day, hour\nmodelardb.rollup_serve = off")
                .unwrap();
        assert_eq!(
            cfg.rollup_levels,
            Some(vec![TimeLevel::Day, TimeLevel::Hour])
        );
        assert_eq!(cfg.rollup_serve, Some(false));
        let options = cfg.common_options();
        assert_eq!(options.rollup_levels, vec![TimeLevel::Day, TimeLevel::Hour]);
        assert!(!options.rollup_serve);
        // "none" disables rollups; absent keys keep the defaults.
        let cfg = ConfigFile::parse("modelardb.rollup_levels = none").unwrap();
        assert_eq!(cfg.rollup_levels, Some(Vec::new()));
        assert!(cfg.common_options().rollup_levels.is_empty());
        let defaults = ConfigFile::parse("").unwrap().common_options();
        assert_eq!(
            defaults.rollup_levels,
            CommonOptions::default().rollup_levels
        );
        assert!(ConfigFile::parse("modelardb.rollup_levels = fortnight").is_err());
    }

    #[test]
    fn prefetch_and_block_format_parse() {
        let cfg = ConfigFile::parse("modelardb.prefetch_depth = 0").unwrap();
        assert_eq!(cfg.prefetch_depth, Some(0));
        let cfg = ConfigFile::parse("modelardb.block_format = v1").unwrap();
        assert_eq!(cfg.block_format, Some(BlockFormat::V1));
        assert!(ConfigFile::parse("modelardb.block_format = v3").is_err());
        assert!(ConfigFile::parse("modelardb.prefetch_depth = deep").is_err());
    }

    #[test]
    fn disk_storage_paths_parse() {
        let cfg = ConfigFile::parse("modelardb.storage = /var/lib/modelardb").unwrap();
        assert!(matches!(cfg.storage, Some(StorageSpec::Disk(p)) if p.ends_with("modelardb")));
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for (bad, needle) in [
            ("modelardb.unknown = 1", "unknown key"),
            ("just some text", "expected key = value"),
            ("modelardb.error_bound = high", "bad error bound"),
            ("modelardb.source = only_name", "sampling interval"),
            (
                "modelardb.source = s, 100, NoEquals",
                "expected Dimension=member",
            ),
            ("modelardb.dimension = ", "dimension needs a name"),
            ("modelardb.correlation = @@@", "correlation"),
        ] {
            let err = ConfigFile::parse(bad).unwrap_err().to_string();
            assert!(
                err.contains(needle) || err.contains("line 1"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn load_reads_from_disk() {
        let dir = mdb_testutil::TempDir::new("configfile");
        let path = dir.join("modelardb.conf");
        std::fs::write(&path, SAMPLE).unwrap();
        let cfg = ConfigFile::load(&path).unwrap();
        assert_eq!(cfg.series.len(), 3);
    }
}

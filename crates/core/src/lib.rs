//! # ModelarDB+ (reproduction)
//!
//! A model-based time series management system for *correlated dimensional
//! time series*, reproducing "Scalable Model-Based Management of Correlated
//! Dimensional Time Series in ModelarDB" (Jensen, Pedersen, Thomsen).
//!
//! The system compresses groups of correlated time series with **Multi-Model
//! Group Compression (MMGC)**: an extensible set of models (constant
//! PMC-Mean, linear Swing, lossless Gorilla, plus user-defined ones) is
//! fitted online to dynamically sized sub-sequences of each group within a
//! user-defined error bound (possibly 0 %), and multi-dimensional aggregate
//! queries execute directly on the stored models.
//!
//! ## Quick start
//!
//! ```
//! use modelardb::{DimensionSchema, ModelarDbBuilder, SeriesSpec};
//!
//! // Two co-located wind turbines sampling every 100 ms.
//! let mut builder = ModelarDbBuilder::new();
//! builder.config_mut().compression.error_bound = modelardb::ErrorBound::relative(5.0);
//! builder
//!     .add_dimension(DimensionSchema::from_leaf_up(
//!         "Location",
//!         vec!["Turbine".into(), "Park".into()],
//!     ).unwrap())
//!     .add_series(SeriesSpec::new("t9632", 100).with_members("Location", &["Aalborg", "9632"]))
//!     .add_series(SeriesSpec::new("t9634", 100).with_members("Location", &["Aalborg", "9634"]))
//!     .correlate("Location 1"); // same park ⇒ correlated
//! let mut db = builder.build().unwrap();
//!
//! for tick in 0..600i64 {
//!     let v = (tick as f32 * 0.01).sin() * 10.0 + 180.0;
//!     db.ingest_row(tick * 100, &[Some(v), Some(v + 0.05)]).unwrap();
//! }
//! db.flush().unwrap();
//!
//! let result = db.sql("SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid").unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

pub mod builder;
pub mod configfile;
pub mod engine;

pub use builder::{ModelarDbBuilder, SeriesSpec};
pub use configfile::ConfigFile;
pub use engine::{value_bounds_fn, ModelarDb, StorageSpec};

// Re-export the public surface of the component crates.
pub use mdb_cluster::{Cluster, ClusterConfig, ClusterHealth, WorkerHealth, WorkerState};
pub use mdb_compression::{CompressionConfig, CompressionStats, GroupIngestor, SegmentGenerator};
pub use mdb_models::{
    Fitter, ModelRegistry, ModelType, SegmentAgg, MID_GORILLA, MID_PMC_MEAN, MID_SWING,
};
pub use mdb_partitioner::{
    assign_replicas, assign_workers, group_load, lowest_distance, partition, CorrelationClause,
    CorrelationPrimitive, CorrelationSpec, Partitioning, ScalingHint,
};
pub use mdb_query::{
    parse, rollup_feed, scan_shape, sketch_feed, Cell, CommonOptions, CommonOptionsBuilder,
    Datastore, DatastoreHealth, Query, QueryEngine, QueryResult, ScanShape, SketchFunc,
};
pub use mdb_server::{Client, Server, ServerOptions, SharedDatastore};
pub use mdb_storage::{
    checksum_v2, scan_to_vec, CacheStats, Catalog, DiskStore, DiskStoreOptions, MemoryStore,
    RollupAcc, RollupCells, RollupDelta, RollupFeed, RollupFeedFn, SegmentPredicate, SegmentStore,
    SketchFeedFn, ValueBoundsFn, ZoneMap,
};
pub use mdb_types::{
    BatchView, BlockFormat, BlockMeta, BlockSketch, DataPoint, DimensionSchema, Dimensions,
    ErrorBound, GapsMask, Gid, GroupMeta, MdbError, Result, RowBatch, SegmentRecord, SegmentView,
    Tid, TimeLevel, TimeSeriesMeta, Timestamp, Value, ValueInterval,
};

/// The full system configuration; defaults mirror Table 1 of the paper.
///
/// The knobs every deployment shares (compression, bulk write size, cache
/// budget, prefetch depth, scan parallelism, queue depths) live in the
/// embedded [`CommonOptions`]; `Config` adds the engine-only knobs. The
/// struct derefs to [`CommonOptions`], so the historical field paths
/// (`config.compression`, `config.bulk_write_size`, …) keep working.
#[derive(Debug, Clone)]
pub struct Config {
    /// The knobs shared with [`ClusterConfig`] — compression, bulk write
    /// size, block-cache budget, prefetch depth, scan parallelism, queue
    /// depths — reachable directly on `Config` through `Deref`.
    ///
    /// The embedded engine ignores `common.storage_dir`; its persistence
    /// location is [`Config::storage`] (see [`Config::from_common`], which
    /// maps one onto the other).
    pub common: CommonOptions,
    /// Where segments are persisted.
    pub storage: StorageSpec,
    /// Whether scans consult the store's zone map to skip segment runs
    /// outside a query's time range or value predicate. Disabling yields
    /// the plain sequential scan (the `repro query` baseline).
    pub zone_pruning: bool,
    /// On-disk layout for newly written blocks: the zero-copy columnar v2
    /// layout by default; v1 for writing logs older builds can read.
    /// Existing blocks are read in whichever format they were written.
    pub block_format: BlockFormat,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            common: CommonOptions::default(),
            storage: StorageSpec::Memory,
            zone_pruning: true,
            block_format: BlockFormat::V2,
        }
    }
}

impl std::ops::Deref for Config {
    type Target = CommonOptions;

    fn deref(&self) -> &CommonOptions {
        &self.common
    }
}

impl std::ops::DerefMut for Config {
    fn deref_mut(&mut self) -> &mut CommonOptions {
        &mut self.common
    }
}

impl Config {
    /// Builds an engine config from shared options: `storage_dir` becomes
    /// the engine's [`StorageSpec`] (`None` = in-memory), everything else
    /// carries over; the engine-only knobs take their defaults.
    pub fn from_common(common: CommonOptions) -> Self {
        let storage = match &common.storage_dir {
            Some(dir) => StorageSpec::Disk(dir.clone()),
            None => StorageSpec::Memory,
        };
        Self {
            common,
            storage,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_follow_table1() {
        let c = Config::default();
        assert_eq!(c.bulk_write_size, 50_000);
        assert_eq!(c.compression.length_limit, 50);
        assert_eq!(c.compression.split_fraction, 10.0);
        assert!(matches!(c.storage, StorageSpec::Memory));
    }
}

//! Declarative construction of a ModelarDB+ instance: declare dimensions,
//! series, correlation hints, and models; the builder runs the partitioner
//! (Algorithm 1) and produces a ready [`crate::ModelarDb`].

use std::collections::HashMap;
use std::sync::Arc;

use mdb_models::ModelRegistry;
use mdb_partitioner::{partition, CorrelationSpec};
use mdb_storage::Catalog;
use mdb_types::{
    DimensionSchema, Dimensions, Gid, GroupMeta, MdbError, Result, Tid, TimeSeriesMeta,
};

use crate::engine::ModelarDb;
use crate::Config;

/// Declaration of one time series.
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// The source name (file/socket in the paper); used by `series …`
    /// correlation primitives and scaling hints.
    pub source: String,
    /// Sampling interval in milliseconds.
    pub sampling_interval: i64,
    /// Member paths per dimension name, most general level first.
    pub members: Vec<(String, Vec<String>)>,
}

impl SeriesSpec {
    /// A series named `source` sampling every `sampling_interval` ms.
    pub fn new(source: impl Into<String>, sampling_interval: i64) -> Self {
        Self {
            source: source.into(),
            sampling_interval,
            members: Vec::new(),
        }
    }

    /// Attaches the member path for one dimension (general → detailed).
    pub fn with_members(mut self, dimension: impl Into<String>, path: &[&str]) -> Self {
        self.members.push((
            dimension.into(),
            path.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }
}

/// Builds a [`ModelarDb`].
pub struct ModelarDbBuilder {
    config: Config,
    dimensions: Dimensions,
    series: Vec<SeriesSpec>,
    spec: CorrelationSpec,
    registry: ModelRegistry,
}

impl Default for ModelarDbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelarDbBuilder {
    /// A builder with the standard model registry (PMC-Mean, Swing, Gorilla)
    /// and Table 1 defaults.
    pub fn new() -> Self {
        Self {
            config: Config::default(),
            dimensions: Dimensions::new(),
            series: Vec::new(),
            spec: CorrelationSpec::none(),
            registry: ModelRegistry::standard(),
        }
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut Config {
        &mut self.config
    }

    /// Registers a dimension.
    pub fn add_dimension(&mut self, schema: DimensionSchema) -> &mut Self {
        // Defer errors to build() so calls chain fluently.
        if let Err(e) = self.dimensions.add_dimension(schema) {
            self.series.push(SeriesSpec::new(format!("!error:{e}"), -1));
        }
        self
    }

    /// Declares a time series.
    pub fn add_series(&mut self, spec: SeriesSpec) -> &mut Self {
        self.series.push(spec);
        self
    }

    /// Adds a `modelardb.correlation` clause (Section 4.1 syntax).
    pub fn correlate(&mut self, clause: &str) -> &mut Self {
        if let Err(e) = self.spec.add_clause(clause) {
            self.series.push(SeriesSpec::new(format!("!error:{e}"), -1));
        }
        self
    }

    /// Sets the full correlation spec (weights, scaling hints, clauses).
    pub fn with_correlation(&mut self, spec: CorrelationSpec) -> &mut Self {
        self.spec = spec;
        self
    }

    /// Replaces the model registry (the extension API of Section 3.1: add
    /// user-defined models without touching the system).
    pub fn with_registry(&mut self, registry: ModelRegistry) -> &mut Self {
        self.registry = registry;
        self
    }

    /// Runs the partitioner and assembles the engine.
    pub fn build(&self) -> Result<ModelarDb> {
        if let Some(bad) = self.series.iter().find(|s| s.source.starts_with("!error:")) {
            return Err(MdbError::Config(
                bad.source.trim_start_matches("!error:").to_string(),
            ));
        }
        if self.series.is_empty() {
            return Err(MdbError::Config("declare at least one time series".into()));
        }
        let mut dimensions = self.dimensions.clone();
        let mut metas = Vec::with_capacity(self.series.len());
        let mut sources: HashMap<Tid, String> = HashMap::new();
        for (i, spec) in self.series.iter().enumerate() {
            let tid = (i + 1) as Tid;
            if spec.sampling_interval <= 0 {
                return Err(MdbError::Config(format!(
                    "series {} has non-positive sampling interval",
                    spec.source
                )));
            }
            for (dim_name, path) in &spec.members {
                let dim = dimensions
                    .dimension_id(dim_name)
                    .ok_or_else(|| MdbError::Config(format!("unknown dimension {dim_name}")))?;
                let refs: Vec<&str> = path.iter().map(String::as_str).collect();
                dimensions.set_members(tid, dim, &refs)?;
            }
            metas.push(TimeSeriesMeta::new(tid, spec.sampling_interval));
            sources.insert(tid, spec.source.clone());
        }

        let parts = partition(&metas, &dimensions, &self.spec, &sources)?;

        let mut catalog = Catalog::new();
        catalog.dimensions = dimensions;
        for (i, group_tids) in parts.groups.iter().enumerate() {
            let gid = (i + 1) as Gid;
            catalog
                .groups
                .push(GroupMeta::new(gid, group_tids.clone(), &metas)?);
            for (j, tid) in group_tids.iter().enumerate() {
                let mut meta = metas.iter().find(|m| m.tid == *tid).unwrap().clone();
                meta.gid = gid;
                meta.scaling = parts.scaling[i][j];
                catalog.series.push(meta);
            }
        }
        catalog.series.sort_by_key(|m| m.tid);
        catalog.model_names = self
            .registry
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();

        ModelarDb::from_catalog(
            Arc::new(catalog),
            Arc::new(self.registry.clone()),
            self.config.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_types::ErrorBound;

    fn turbines() -> ModelarDbBuilder {
        let mut b = ModelarDbBuilder::new();
        b.config_mut().compression.error_bound = ErrorBound::relative(5.0);
        b.add_dimension(
            DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()])
                .unwrap(),
        )
        .add_series(SeriesSpec::new("t1", 100).with_members("Location", &["Aalborg", "9632"]))
        .add_series(SeriesSpec::new("t2", 100).with_members("Location", &["Aalborg", "9634"]))
        .add_series(SeriesSpec::new("t3", 100).with_members("Location", &["Farsø", "9572"]));
        b
    }

    #[test]
    fn builder_partitions_by_correlation_clause() {
        let mut b = turbines();
        b.correlate("Location 1");
        let db = b.build().unwrap();
        // Same park ⇒ grouped: tids 1,2 share a gid; tid 3 is alone.
        let catalog = db.catalog();
        assert_eq!(catalog.groups.len(), 2);
        assert_eq!(catalog.gid_of(1), catalog.gid_of(2));
        assert_ne!(catalog.gid_of(1), catalog.gid_of(3));
    }

    #[test]
    fn builder_without_hints_gives_singletons() {
        let db = turbines().build().unwrap();
        assert_eq!(db.catalog().groups.len(), 3);
    }

    #[test]
    fn builder_validates_input() {
        assert!(ModelarDbBuilder::new().build().is_err(), "no series");
        let mut b = ModelarDbBuilder::new();
        b.add_series(SeriesSpec::new("x", 0));
        assert!(b.build().is_err(), "bad SI");
        let mut b = ModelarDbBuilder::new();
        b.add_series(SeriesSpec::new("x", 100).with_members("Ghost", &["a"]));
        assert!(b.build().is_err(), "unknown dimension");
        let mut b = turbines();
        b.correlate("not a ; valid @ clause ->");
        assert!(b.build().is_err(), "bad clause surfaces at build()");
    }

    #[test]
    fn scaling_hints_reach_the_catalog() {
        let mut b = turbines();
        let mut spec = CorrelationSpec::none();
        spec.add_clause("Location 1").unwrap();
        spec.scaling.push(mdb_partitioner::ScalingHint::Series {
            name: "t2".into(),
            factor: 4.75,
        });
        b.with_correlation(spec);
        let db = b.build().unwrap();
        assert_eq!(db.catalog().scaling_of(2), 4.75);
        assert_eq!(db.catalog().scaling_of(1), 1.0);
    }
}

//! The embedded single-process engine: ingestion → MMGC → segment store →
//! SQL, the "ModelarDB+ Core as a portable library" deployment of
//! Section 3.1 (the cluster deployment lives in `mdb-cluster`).

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use mdb_compression::{CompressionStats, GroupIngestor};
use mdb_models::ModelRegistry;
use mdb_query::{QueryEngine, QueryResult, ScanPool};
use mdb_storage::{
    Catalog, DiskStore, DiskStoreOptions, MemoryStore, SegmentPredicate, SegmentStore,
    ValueBoundsFn, ZoneMap,
};
use mdb_types::{Gid, MdbError, Result, RowBatch, SegmentRecord, Tid, Timestamp, Value};

use crate::Config;

/// Where segments live.
#[derive(Debug, Clone)]
pub enum StorageSpec {
    /// Volatile, heap-backed (tests, benchmarks).
    Memory,
    /// Persistent block log + catalog under this directory.
    Disk(PathBuf),
}

/// An embedded ModelarDB+ instance.
pub struct ModelarDb {
    catalog: Arc<Catalog>,
    registry: Arc<ModelRegistry>,
    config: Config,
    store: Box<dyn SegmentStore>,
    ingestors: Vec<(Gid, GroupIngestor)>,
    /// Per ingestor: the row indexes of its group's member series.
    row_indices: Vec<Vec<usize>>,
    /// gid → index into `ingestors`/`row_indices`, so hot-path group lookups
    /// are O(1) instead of a linear scan.
    gid_index: HashMap<Gid, usize>,
    /// Out-of-band point ingestion: per group, rows being assembled per
    /// timestamp until every (non-gapped) member has reported.
    pending: BTreeMap<Gid, BTreeMap<Timestamp, Vec<Option<Value>>>>,
    /// Single-row batch backing [`ModelarDb::ingest_row`] (a batch of one on
    /// the [`ModelarDb::ingest_batch`] path), reused across calls.
    scratch_row: RowBatch,
    /// Persistent scan workers for parallel aggregate queries; `None` when
    /// [`Config::query_parallelism`](mdb_query::CommonOptions::query_parallelism)
    /// resolves to a single worker.
    scan_pool: Option<ScanPool>,
    /// Whether whole-bucket aggregates are answered from rollup cells
    /// (initialized from [`Config::rollup_serve`]
    /// (mdb_query::CommonOptions::rollup_serve); toggleable at runtime so
    /// benchmarks can measure the served and scanned paths on one engine —
    /// the two are bit-identical by construction).
    rollup_serve: bool,
}

impl ModelarDb {
    /// Assembles an engine from a finished catalog (the builder's job).
    pub fn from_catalog(
        catalog: Arc<Catalog>,
        registry: Arc<ModelRegistry>,
        config: Config,
    ) -> Result<Self> {
        // Both stores maintain a zone map fed by the models' closed-form
        // value ranges, so scans can prune segment runs before decoding,
        // plus per-group sketches so P50_S/COUNT_DISTINCT/TOP_K_S queries
        // resolve from metadata alone.
        let bounds = value_bounds_fn(&catalog, &registry);
        let sketch_feed = mdb_query::sketch_feed(&catalog, &registry);
        let rollup_feed = (!config.rollup_levels.is_empty())
            .then(|| mdb_query::rollup_feed(&catalog, &registry, &config.rollup_levels));
        let store: Box<dyn SegmentStore> = match &config.storage {
            StorageSpec::Memory => {
                let mut store =
                    MemoryStore::with_value_bounds(bounds).with_sketch_feed(sketch_feed);
                if let Some(feed) = rollup_feed {
                    store = store.with_rollup_feed(feed);
                }
                store.set_pruning(config.zone_pruning);
                Box::new(store)
            }
            StorageSpec::Disk(dir) => {
                catalog.save(dir)?;
                let mut store = DiskStore::open_with(
                    dir,
                    DiskStoreOptions {
                        bulk_write_size: config.bulk_write_size,
                        memory_budget_bytes: config.memory_budget_bytes,
                        value_bounds: Some(bounds),
                        sketch_feed: Some(sketch_feed),
                        rollup_feed,
                        prefetch_depth: config.prefetch_depth,
                        write_format: config.block_format,
                    },
                )?;
                store.set_pruning(config.zone_pruning);
                Box::new(store)
            }
        };
        let mut ingestors = Vec::new();
        let tid_to_row: std::collections::HashMap<Tid, usize> = catalog
            .series
            .iter()
            .enumerate()
            .map(|(i, m)| (m.tid, i))
            .collect();
        let mut row_indices = Vec::new();
        for group in &catalog.groups {
            let scaling: Vec<f64> = group.tids.iter().map(|t| catalog.scaling_of(*t)).collect();
            ingestors.push((
                group.gid,
                GroupIngestor::new(
                    group.clone(),
                    scaling,
                    Arc::clone(&registry),
                    config.compression.clone(),
                )?,
            ));
            row_indices.push(group.tids.iter().map(|t| tid_to_row[t]).collect());
        }
        let gid_index = ingestors
            .iter()
            .enumerate()
            .map(|(i, (g, _))| (*g, i))
            .collect();
        let scratch_row = RowBatch::with_capacity(catalog.series.len(), 1);
        let resolved_workers = match config.query_parallelism {
            0 => std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
            n => n,
        };
        let scan_pool = (resolved_workers > 1).then(|| {
            ScanPool::new(
                Arc::clone(&catalog),
                Arc::clone(&registry),
                resolved_workers,
            )
        });
        let rollup_serve = config.rollup_serve;
        Ok(Self {
            catalog,
            registry,
            config,
            store,
            ingestors,
            row_indices,
            gid_index,
            pending: BTreeMap::new(),
            scratch_row,
            scan_pool,
            rollup_serve,
        })
    }

    /// Reopens a disk-backed instance: catalog and segments are recovered
    /// from the directory.
    pub fn reopen(
        dir: &std::path::Path,
        registry: Arc<ModelRegistry>,
        config: Config,
    ) -> Result<Self> {
        let mut catalog = Catalog::load(dir)?;
        catalog.dimensions.rebuild_indexes();
        let config = Config {
            storage: StorageSpec::Disk(dir.to_path_buf()),
            ..config
        };
        Self::from_catalog(Arc::new(catalog), registry, config)
    }

    /// The metadata catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Ingests one full tick: `row[i]` belongs to `catalog.series[i]`
    /// (tid order), `None` meaning the series is in a gap.
    ///
    /// This is a batch of one on the [`ModelarDb::ingest_batch`] path; bulk
    /// ingestion should build a [`RowBatch`] and call that directly.
    pub fn ingest_row(&mut self, timestamp: Timestamp, row: &[Option<Value>]) -> Result<()> {
        if row.len() != self.catalog.series.len() {
            return Err(MdbError::Ingestion(format!(
                "row has {} values for {} series",
                row.len(),
                self.catalog.series.len()
            )));
        }
        let mut batch = std::mem::take(&mut self.scratch_row);
        batch.clear();
        batch.push_row(timestamp, row);
        let result = self.ingest_batch(&batch);
        self.scratch_row = batch;
        result
    }

    /// Ingests a columnar batch of ticks: column `i` of `batch` belongs to
    /// `catalog.series[i]` (tid order), with the validity bitmap marking
    /// gaps. Each group receives a borrowed column view of the batch — the
    /// per-group slicing allocates nothing per tick.
    pub fn ingest_batch(&mut self, batch: &RowBatch) -> Result<()> {
        if batch.n_series() != self.catalog.series.len() {
            return Err(MdbError::Ingestion(format!(
                "batch has {} columns for {} series",
                batch.n_series(),
                self.catalog.series.len()
            )));
        }
        for ((_, ingestor), indices) in self.ingestors.iter_mut().zip(&self.row_indices) {
            for segment in ingestor.push_batch(batch.select(indices))? {
                self.store.insert(segment)?;
            }
        }
        Ok(())
    }

    /// Ingests a single data point. Points are buffered per group until all
    /// members have reported a timestamp (or a newer timestamp arrives, at
    /// which point missing members are treated as gaps).
    pub fn ingest_point(&mut self, tid: Tid, timestamp: Timestamp, value: Value) -> Result<()> {
        let gid = self
            .catalog
            .gid_of(tid)
            .ok_or_else(|| MdbError::NotFound(format!("time series {tid}")))?;
        let group = self.catalog.group(gid).unwrap();
        let position = group.position(tid).unwrap();
        let size = group.size();
        let pending = self.pending.entry(gid).or_default();
        let row = pending.entry(timestamp).or_insert_with(|| vec![None; size]);
        row[position] = Some(value);
        let complete = row.iter().all(Option::is_some);
        if complete {
            // Flush every assembled row up to and including this timestamp;
            // older incomplete rows become rows with gaps.
            let rest = pending.split_off(&(timestamp + 1));
            let ready = std::mem::replace(pending, rest);
            self.push_group_rows(gid, size, ready)?;
        }
        Ok(())
    }

    /// Assembles drained pending point-rows into one group-width batch and
    /// ingests it through the batch path.
    fn push_group_rows(
        &mut self,
        gid: Gid,
        size: usize,
        rows: BTreeMap<Timestamp, Vec<Option<Value>>>,
    ) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let idx = *self
            .gid_index
            .get(&gid)
            .ok_or_else(|| MdbError::NotFound(format!("group {gid}")))?;
        let mut batch = RowBatch::with_capacity(size, rows.len());
        for (ts, row) in rows {
            batch.push_row(ts, &row);
        }
        let (_, ingestor) = &mut self.ingestors[idx];
        for segment in ingestor.push_batch(batch.view())? {
            self.store.insert(segment)?;
        }
        Ok(())
    }

    /// Drains all buffers: pending point-rows, group ingestors, and the
    /// store's write buffer.
    pub fn flush(&mut self) -> Result<()> {
        for (gid, rows) in std::mem::take(&mut self.pending) {
            let size = rows.values().next().map(Vec::len).unwrap_or(0);
            self.push_group_rows(gid, size, rows)?;
        }
        for (_, ingestor) in &mut self.ingestors {
            for segment in ingestor.flush()? {
                self.store.insert(segment)?;
            }
        }
        self.store.flush()
    }

    /// Executes a SQL query (Section 6's Segment View and Data Point View).
    /// Aggregate scans run on the engine's persistent pool of
    /// [`Config::query_parallelism`](mdb_query::CommonOptions::query_parallelism)
    /// workers over the zone-map-pruned
    /// segment list; results are bit-identical to a sequential scan.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        let mut engine = QueryEngine::new(&self.catalog, &self.registry, self.store.as_ref())
            .with_parallelism(self.config.query_parallelism)
            .with_rollups(&self.config.rollup_levels, self.rollup_serve);
        if let Some(pool) = &self.scan_pool {
            engine = engine.with_scan_pool(pool);
        }
        engine.sql(text)
    }

    /// Enables or disables answering whole-bucket aggregates from the
    /// materialized rollup cells. Results are bit-identical either way
    /// (scanning keeps the bucketed association); the toggle exists so the
    /// `repro rollup` benchmark can time both paths on the same engine.
    pub fn set_rollup_serve(&mut self, serve: bool) {
        self.rollup_serve = serve;
    }

    /// Merged compression statistics across all groups.
    pub fn stats(&self) -> CompressionStats {
        let mut stats = CompressionStats::default();
        for (_, ingestor) in &self.ingestors {
            stats.merge(ingestor.stats());
        }
        stats
    }

    /// Logical stored bytes (the Figures 14–15 metric).
    pub fn storage_bytes(&self) -> u64 {
        self.store.logical_bytes()
    }

    /// Stored segment count.
    pub fn segment_count(&self) -> usize {
        self.store.len()
    }

    /// All stored segments in the store's deterministic scan order (key
    /// order for memory storage, log order for disk storage) — the raw
    /// material for equivalence tests and offline analysis.
    pub fn segments(&self) -> Result<Vec<SegmentRecord>> {
        mdb_storage::scan_to_vec(self.store.as_ref(), &SegmentPredicate::all())
    }

    /// The store's zone map (both built-in stores maintain one) — compared
    /// across restarts by the restart-equivalence suite.
    pub fn zones(&self) -> Option<&ZoneMap> {
        self.store.zones()
    }

    /// Segments currently resident in memory (see
    /// [`SegmentStore::resident_segments`]).
    pub fn resident_segments(&self) -> usize {
        self.store.resident_segments()
    }

    /// High-water mark of resident segments — the `repro storage` metric
    /// that shows a bounded `memory_budget_bytes` (reachable as
    /// `config.memory_budget_bytes` through [`CommonOptions`]) holds.
    ///
    /// [`CommonOptions`]: mdb_query::CommonOptions
    pub fn resident_segment_peak(&self) -> usize {
        self.store.resident_segment_peak()
    }

    /// Block-cache counters of the underlying store (all zeros for the
    /// in-memory store) — bytes read, prefetches issued and hit, decode
    /// validations, and owned decodes on the scan path.
    pub fn cache_stats(&self) -> mdb_storage::CacheStats {
        self.store.cache_stats()
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

impl mdb_query::Datastore for ModelarDb {
    fn backend(&self) -> &'static str {
        "engine"
    }

    fn ingest_batch(&mut self, batch: &RowBatch) -> Result<()> {
        ModelarDb::ingest_batch(self, batch)
    }

    fn ingest_points(&mut self, points: &[(Tid, Timestamp, Value)]) -> Result<()> {
        for &(tid, timestamp, value) in points {
            self.ingest_point(tid, timestamp, value)?;
        }
        Ok(())
    }

    fn sql(&self, query: &str) -> Result<QueryResult> {
        ModelarDb::sql(self, query)
    }

    fn flush(&mut self) -> Result<()> {
        ModelarDb::flush(self)
    }

    fn health(&self) -> Result<mdb_query::DatastoreHealth> {
        Ok(mdb_query::DatastoreHealth {
            backend: "engine".to_string(),
            degraded: false,
            lost_gids: Vec::new(),
            detail: format!(
                "{} groups, {} segments stored",
                self.catalog.groups.len(),
                self.segment_count()
            ),
        })
    }
}

/// The zone map's stored-value statistic provider: the models' constant-time
/// aggregate over a segment's full range, closed over the registry and the
/// catalog's group sizes.
pub fn value_bounds_fn(catalog: &Arc<Catalog>, registry: &Arc<ModelRegistry>) -> ValueBoundsFn {
    let sizes: HashMap<Gid, usize> = catalog.groups.iter().map(|g| (g.gid, g.size())).collect();
    let registry = Arc::clone(registry);
    Arc::new(move |segment| {
        mdb_models::segment_value_range(&registry, segment, *sizes.get(&segment.gid)?)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModelarDbBuilder, SeriesSpec};
    use mdb_types::{DimensionSchema, ErrorBound};

    fn db(error_pct: f64) -> ModelarDb {
        let mut b = ModelarDbBuilder::new();
        b.config_mut().compression.error_bound = ErrorBound::relative(error_pct);
        b.add_dimension(
            DimensionSchema::from_leaf_up("Location", vec!["Turbine".into(), "Park".into()])
                .unwrap(),
        )
        .add_series(SeriesSpec::new("t1", 100).with_members("Location", &["Aalborg", "9632"]))
        .add_series(SeriesSpec::new("t2", 100).with_members("Location", &["Aalborg", "9634"]))
        .correlate("Location 1");
        b.build().unwrap()
    }

    #[test]
    fn ingest_and_query_round_trip() {
        let mut db = db(5.0);
        for t in 0..500i64 {
            let v = (t as f32 * 0.02).sin() * 10.0 + 100.0;
            db.ingest_row(t * 100, &[Some(v), Some(v * 1.001)]).unwrap();
        }
        db.flush().unwrap();
        let r = db.sql("SELECT COUNT_S(*) FROM Segment").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(1000));
        let r = db
            .sql("SELECT Park, AVG_S(*) FROM Segment GROUP BY Park")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let avg = r.rows[0][1].as_f64().unwrap();
        assert!((90.0..110.0).contains(&avg), "{avg}");
        assert!(db.storage_bytes() > 0);
        assert!(db.segment_count() > 0);
        assert_eq!(db.stats().rows, 500);
    }

    #[test]
    fn point_ingestion_assembles_rows_and_handles_stragglers() {
        let mut db = db(5.0);
        // Interleaved arrival order within each tick.
        for t in 0..10i64 {
            db.ingest_point(2, t * 100, 2.0).unwrap();
            db.ingest_point(1, t * 100, 1.0).unwrap();
        }
        // Tick 10: only series 1 reports (series 2 begins a gap), then both
        // report tick 11 — the incomplete older row flushes as a gap row.
        db.ingest_point(1, 1_000, 1.0).unwrap();
        db.ingest_point(1, 1_100, 1.0).unwrap();
        db.ingest_point(2, 1_100, 2.0).unwrap();
        db.flush().unwrap();
        let r = db
            .sql("SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
            .unwrap();
        assert_eq!(r.rows[0][1].as_i64(), Some(12)); // tid 1: ticks 0..=11
        assert_eq!(r.rows[1][1].as_i64(), Some(11)); // tid 2: missing tick 10
    }

    #[test]
    fn batch_ingestion_matches_row_at_a_time() {
        let mut by_row = db(5.0);
        let mut by_batch = db(5.0);
        let mut batch = RowBatch::with_capacity(2, 128);
        for chunk in 0..4i64 {
            batch.clear();
            for t in chunk * 125..(chunk + 1) * 125 {
                let v = (t as f32 * 0.02).sin() * 10.0 + 100.0;
                let row = [
                    (t % 37 != 0).then_some(v),
                    (t % 53 != 0).then_some(v * 1.001),
                ];
                by_row.ingest_row(t * 100, &row).unwrap();
                batch.push_row(t * 100, &row);
            }
            by_batch.ingest_batch(&batch).unwrap();
        }
        by_row.flush().unwrap();
        by_batch.flush().unwrap();
        assert_eq!(by_row.segments().unwrap(), by_batch.segments().unwrap());
        for q in [
            "SELECT COUNT_S(*) FROM Segment",
            "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid ORDER BY Tid",
        ] {
            assert_eq!(
                by_row.sql(q).unwrap().rows,
                by_batch.sql(q).unwrap().rows,
                "{q}"
            );
        }
    }

    #[test]
    fn batch_width_is_validated() {
        let mut db = db(1.0);
        let batch = RowBatch::new(3);
        assert!(db.ingest_batch(&batch).is_err());
    }

    #[test]
    fn disk_storage_survives_reopen() {
        let case = mdb_testutil::TempDir::new("core-reopen");
        let dir = case.path().to_path_buf();
        let registry = Arc::new(ModelRegistry::standard());
        {
            let mut b = ModelarDbBuilder::new();
            b.config_mut().storage = StorageSpec::Disk(dir.clone());
            b.config_mut().compression.error_bound = ErrorBound::relative(1.0);
            b.add_series(SeriesSpec::new("a", 100))
                .add_series(SeriesSpec::new("b", 100));
            let mut db = b.build().unwrap();
            for t in 0..200i64 {
                db.ingest_row(t * 100, &[Some(1.0), Some(t as f32)])
                    .unwrap();
            }
            db.flush().unwrap();
        }
        let db = ModelarDb::reopen(&dir, registry, Config::default()).unwrap();
        let r = db
            .sql("SELECT Tid, COUNT_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1].as_i64(), Some(200));
        assert_eq!(r.rows[1][1].as_i64(), Some(200));
    }

    #[test]
    fn unknown_tid_rejected_for_point_ingestion() {
        let mut db = db(1.0);
        assert!(db.ingest_point(99, 0, 1.0).is_err());
        assert!(db.ingest_row(0, &[Some(1.0)]).is_err());
    }

    #[test]
    fn error_bound_reduces_storage() {
        let sizes: Vec<u64> = [0.0, 10.0]
            .iter()
            .map(|pct| {
                let mut db = db(*pct);
                for t in 0..2_000i64 {
                    let v = (t as f32 * 0.01).sin() * 50.0 + 100.0;
                    db.ingest_row(t * 100, &[Some(v), Some(v * 1.002)]).unwrap();
                }
                db.flush().unwrap();
                db.storage_bytes()
            })
            .collect();
        assert!(
            sizes[1] < sizes[0],
            "10% bound {} must beat lossless {}",
            sizes[1],
            sizes[0]
        );
    }
}

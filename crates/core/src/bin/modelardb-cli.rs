//! `modelardb-cli` — load a configuration file, ingest CSV data, run SQL,
//! serve the store over TCP, or drive a remote server.
//!
//! ```text
//! modelardb-cli <config.conf> ingest <data.csv> [query…]
//! modelardb-cli <config.conf> demo   <ticks>    [query…]
//! modelardb-cli <config.conf> serve  <addr>
//! modelardb-cli --connect <host:port> ingest <data.csv> [query…]
//! modelardb-cli --connect <host:port> sql    <query…>
//! modelardb-cli --connect <host:port> health
//! ```
//!
//! The CSV format is `source,timestamp_ms,value` (header optional), matching
//! how the paper's system ingests per-series files: the `source` column is
//! resolved to a Tid through the configured `modelardb.source` entries.
//! Queries given on the command line run after ingestion; with none, a
//! default summary query runs.
//!
//! `--connect` speaks the same wire protocol as `modelardb-cli … serve`, so
//! one CLI drives local and remote stores with identical commands and
//! bit-identical results.

use std::collections::HashMap;

use modelardb::{Client, ConfigFile, MdbError, ModelarDb, Result, Tid};

const SUMMARY_QUERY: &str =
    "SELECT Tid, COUNT_S(*), AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid";

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() -> MdbError {
    MdbError::Config(
        "usage: modelardb-cli <config.conf> (ingest <data.csv> | demo <ticks> | serve <addr>) [query…]\n       modelardb-cli --connect <host:port> (ingest <data.csv> | sql | health) [query…]"
            .into(),
    )
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--connect") => {
            let addr = args.get(1).ok_or_else(usage)?;
            run_remote(addr, &args[2..])
        }
        Some(config_path) => run_local(config_path, &args[1..]),
        None => Err(usage()),
    }
}

fn run_local(config_path: &str, args: &[String]) -> Result<()> {
    let mode = args.first().ok_or_else(usage)?;
    let target = args.get(1).ok_or_else(usage)?;

    let config = ConfigFile::load(std::path::Path::new(config_path))?;
    let mut server_options = modelardb::ServerOptions::from_common(&config.common_options());
    if let Some(n) = config.max_connections {
        server_options.max_connections = n;
    }
    let mut db = config.into_builder()?.build()?;
    let sources: HashMap<String, Tid> = source_map(&db);
    println!(
        "configured {} series in {} groups",
        db.catalog().series.len(),
        db.catalog().groups.len()
    );

    match mode.as_str() {
        "ingest" => {
            let text = std::fs::read_to_string(target)?;
            let mut n = 0u64;
            for point in parse_csv(&text, &sources)? {
                db.ingest_point(point.0, point.1, point.2)?;
                n += 1;
            }
            db.flush()?;
            println!(
                "ingested {n} data points -> {} segments, {} bytes",
                db.segment_count(),
                db.storage_bytes()
            );
        }
        "demo" => {
            // Synthetic sine data so the CLI is testable without data files.
            let ticks: i64 = target
                .parse()
                .map_err(|_| MdbError::Config(format!("bad tick count {target:?}")))?;
            let n_series = db.catalog().series.len();
            let si = db
                .catalog()
                .series
                .first()
                .map(|m| m.sampling_interval)
                .unwrap_or(100);
            for t in 0..ticks {
                let row: Vec<Option<f32>> = (0..n_series)
                    .map(|s| Some((t as f32 * 0.01).sin() * 10.0 + 100.0 + s as f32 * 0.1))
                    .collect();
                db.ingest_row(t * si, &row)?;
            }
            db.flush()?;
            println!(
                "generated {ticks} ticks -> {} segments, {} bytes",
                db.segment_count(),
                db.storage_bytes()
            );
        }
        "serve" => {
            server_options.addr = target.to_string();
            return serve(db, server_options);
        }
        other => return Err(MdbError::Config(format!("unknown mode {other}"))),
    }

    let queries = &args[2..];
    if queries.is_empty() {
        println!("\n{}", db.sql(SUMMARY_QUERY)?.to_table());
    } else {
        for q in queries {
            println!("\n> {q}");
            println!("{}", db.sql(q)?.to_table());
        }
    }
    Ok(())
}

/// Serves the configured store until the process is killed.
fn serve(db: ModelarDb, options: modelardb::ServerOptions) -> Result<()> {
    use modelardb::{Server, SharedDatastore};
    let server = Server::start(SharedDatastore::new(db), options)?;
    println!("serving on {}", server.local_addr());
    loop {
        std::thread::park();
    }
}

/// Drives a remote server over the wire protocol.
fn run_remote(addr: &str, args: &[String]) -> Result<()> {
    let mode = args.first().ok_or_else(usage)?;
    let mut client = Client::connect(addr)?;
    match mode.as_str() {
        "ingest" => {
            let path = args.get(1).ok_or_else(usage)?;
            let text = std::fs::read_to_string(path)?;
            // No local catalog: `tidN` and raw-number sources only.
            let points = parse_csv(&text, &HashMap::new())?;
            let info = client.ingest_points(&points)?;
            client.flush()?;
            println!("{info}");
            run_remote_queries(&mut client, &args[2..])?;
        }
        "sql" => run_remote_queries(&mut client, &args[1..])?,
        "health" => {
            let health = client.health()?;
            println!(
                "{}{}: {}",
                health.backend,
                if health.degraded { " (degraded)" } else { "" },
                health.detail
            );
        }
        other => return Err(MdbError::Config(format!("unknown remote mode {other}"))),
    }
    client.close()
}

fn run_remote_queries(client: &mut Client, queries: &[String]) -> Result<()> {
    if queries.is_empty() {
        println!("\n{}", client.sql(SUMMARY_QUERY)?.to_table());
    } else {
        for q in queries {
            println!("\n> {q}");
            println!("{}", client.sql(q)?.to_table());
        }
    }
    Ok(())
}

fn source_map(db: &ModelarDb) -> HashMap<String, Tid> {
    // SeriesSpec order equals tid order in the builder.
    db.catalog()
        .series
        .iter()
        .map(|m| (format!("tid{}", m.tid), m.tid))
        .collect()
}

/// Parses `source,timestamp,value` CSV; `source` may be `tidN` or a raw tid.
fn parse_csv(text: &str, sources: &HashMap<String, Tid>) -> Result<Vec<(Tid, i64, f32)>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (i == 0 && line.to_ascii_lowercase().starts_with("source")) {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let bad = || MdbError::Ingestion(format!("csv line {}: {line:?}", i + 1));
        let source = parts.next().ok_or_else(bad)?;
        let tid = sources
            .get(source)
            .copied()
            .or_else(|| source.parse::<Tid>().ok())
            .or_else(|| source.strip_prefix("tid").and_then(|n| n.parse().ok()))
            .ok_or_else(|| {
                MdbError::Ingestion(format!("csv line {}: unknown source {source:?}", i + 1))
            })?;
        let ts: i64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let value: f32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        out.push((tid, ts, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_parses_with_and_without_header() {
        let sources: HashMap<String, Tid> = [("tid1".to_string(), 1)].into();
        let with_header = "source,timestamp,value\ntid1,100,1.5\n1,200,2.5\n";
        let rows = parse_csv(with_header, &sources).unwrap();
        assert_eq!(rows, vec![(1, 100, 1.5), (1, 200, 2.5)]);
        let no_header = "tid1,100,1.5\n\n   \n";
        assert_eq!(parse_csv(no_header, &sources).unwrap().len(), 1);
    }

    #[test]
    fn csv_resolves_tid_names_without_a_catalog() {
        // The --connect path has no source map; `tidN` still resolves.
        let rows = parse_csv("tid7,100,1.0\n7,200,2.0", &HashMap::new()).unwrap();
        assert_eq!(rows, vec![(7, 100, 1.0), (7, 200, 2.0)]);
    }

    #[test]
    fn csv_rejects_garbage() {
        let sources = HashMap::new();
        assert!(parse_csv("ghost,100,1.0", &sources).is_err());
        assert!(parse_csv("1,notatime,1.0", &sources).is_err());
        assert!(parse_csv("1,100", &sources).is_err());
    }
}

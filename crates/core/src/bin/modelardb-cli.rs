//! `modelardb-cli` — load a configuration file, ingest CSV data, run SQL.
//!
//! ```text
//! modelardb-cli <config.conf> ingest <data.csv> [query…]
//! modelardb-cli <config.conf> demo   <ticks>    [query…]
//! ```
//!
//! The CSV format is `source,timestamp_ms,value` (header optional), matching
//! how the paper's system ingests per-series files: the `source` column is
//! resolved to a Tid through the configured `modelardb.source` entries.
//! Queries given on the command line run after ingestion; with none, a
//! default summary query runs.

use std::collections::HashMap;

use modelardb::{ConfigFile, MdbError, ModelarDb, Result, Tid};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        MdbError::Config(
            "usage: modelardb-cli <config.conf> (ingest <data.csv> | demo <ticks>) [query…]".into(),
        )
    };
    let config_path = args.first().ok_or_else(usage)?;
    let mode = args.get(1).ok_or_else(usage)?;
    let target = args.get(2).ok_or_else(usage)?;

    let config = ConfigFile::load(std::path::Path::new(config_path))?;
    let mut db = config.into_builder()?.build()?;
    let sources: HashMap<String, Tid> = source_map(&db);
    println!(
        "configured {} series in {} groups",
        db.catalog().series.len(),
        db.catalog().groups.len()
    );

    match mode.as_str() {
        "ingest" => {
            let text = std::fs::read_to_string(target)?;
            let mut n = 0u64;
            for point in parse_csv(&text, &sources)? {
                db.ingest_point(point.0, point.1, point.2)?;
                n += 1;
            }
            db.flush()?;
            println!(
                "ingested {n} data points -> {} segments, {} bytes",
                db.segment_count(),
                db.storage_bytes()
            );
        }
        "demo" => {
            // Synthetic sine data so the CLI is testable without data files.
            let ticks: i64 = target
                .parse()
                .map_err(|_| MdbError::Config(format!("bad tick count {target:?}")))?;
            let n_series = db.catalog().series.len();
            let si = db
                .catalog()
                .series
                .first()
                .map(|m| m.sampling_interval)
                .unwrap_or(100);
            for t in 0..ticks {
                let row: Vec<Option<f32>> = (0..n_series)
                    .map(|s| Some((t as f32 * 0.01).sin() * 10.0 + 100.0 + s as f32 * 0.1))
                    .collect();
                db.ingest_row(t * si, &row)?;
            }
            db.flush()?;
            println!(
                "generated {ticks} ticks -> {} segments, {} bytes",
                db.segment_count(),
                db.storage_bytes()
            );
        }
        other => return Err(MdbError::Config(format!("unknown mode {other}"))),
    }

    let queries: Vec<&String> = args.iter().skip(3).collect();
    if queries.is_empty() {
        let r =
            db.sql("SELECT Tid, COUNT_S(*), AVG_S(*) FROM Segment GROUP BY Tid ORDER BY Tid")?;
        println!("\n{}", r.to_table());
    } else {
        for q in queries {
            println!("\n> {q}");
            println!("{}", db.sql(q)?.to_table());
        }
    }
    Ok(())
}

fn source_map(db: &ModelarDb) -> HashMap<String, Tid> {
    // SeriesSpec order equals tid order in the builder.
    db.catalog()
        .series
        .iter()
        .map(|m| (format!("tid{}", m.tid), m.tid))
        .collect()
}

/// Parses `source,timestamp,value` CSV; `source` may be `tidN` or a raw tid.
fn parse_csv(text: &str, sources: &HashMap<String, Tid>) -> Result<Vec<(Tid, i64, f32)>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (i == 0 && line.to_ascii_lowercase().starts_with("source")) {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let bad = || MdbError::Ingestion(format!("csv line {}: {line:?}", i + 1));
        let source = parts.next().ok_or_else(bad)?;
        let tid = sources
            .get(source)
            .copied()
            .or_else(|| source.parse::<Tid>().ok())
            .ok_or_else(|| {
                MdbError::Ingestion(format!("csv line {}: unknown source {source:?}", i + 1))
            })?;
        let ts: i64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let value: f32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        out.push((tid, ts, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_parses_with_and_without_header() {
        let sources: HashMap<String, Tid> = [("tid1".to_string(), 1)].into();
        let with_header = "source,timestamp,value\ntid1,100,1.5\n1,200,2.5\n";
        let rows = parse_csv(with_header, &sources).unwrap();
        assert_eq!(rows, vec![(1, 100, 1.5), (1, 200, 2.5)]);
        let no_header = "tid1,100,1.5\n\n   \n";
        assert_eq!(parse_csv(no_header, &sources).unwrap().len(), 1);
    }

    #[test]
    fn csv_rejects_garbage() {
        let sources = HashMap::new();
        assert!(parse_csv("ghost,100,1.0", &sources).is_err());
        assert!(parse_csv("1,notatime,1.0", &sources).is_err());
        assert!(parse_csv("1,100", &sources).is_err());
    }
}

//! The model registry: the Model table of Figure 6 (`Mid → Classpath`) plus
//! the extension API of Section 3.1 — "users can optionally implement more
//! models through an extension API without recompiling".

use std::sync::Arc;

use crate::gorilla::Gorilla;
use crate::multi::PerSeries;
use crate::pmc::PmcMean;
use crate::swing::Swing;
use crate::ModelType;

/// Mid of the constant PMC-Mean model.
pub const MID_PMC_MEAN: u8 = 0;
/// Mid of the linear Swing model.
pub const MID_SWING: u8 = 1;
/// Mid of the lossless Gorilla model.
pub const MID_GORILLA: u8 = 2;

/// Maps Mids to model types, in fitting order: during ingestion the segment
/// generator tries models in registry order (Section 3.2, step ii), so cheap
/// constant models come first and the lossless fallback last.
#[derive(Clone)]
pub struct ModelRegistry {
    types: Vec<Arc<dyn ModelType>>,
}

impl ModelRegistry {
    /// The three models distributed with ModelarDB+ Core: PMC-Mean, Swing,
    /// Gorilla (Section 3.1), in that fitting order.
    pub fn standard() -> Self {
        Self {
            types: vec![Arc::new(PmcMean), Arc::new(Swing), Arc::new(Gorilla)],
        }
    }

    /// The Section 5.1 baseline configuration: the same three models wrapped
    /// so each series in a group gets its own sub-model inside one segment.
    /// Used by the MGC-ablation benchmarks.
    pub fn per_series_baseline() -> Self {
        Self {
            types: vec![
                Arc::new(PerSeries::new(Arc::new(PmcMean))),
                Arc::new(PerSeries::new(Arc::new(Swing))),
                Arc::new(PerSeries::new(Arc::new(Gorilla))),
            ],
        }
    }

    /// An empty registry for fully custom model sets.
    pub fn empty() -> Self {
        Self { types: Vec::new() }
    }

    /// Registers a user-defined model type and returns its Mid.
    ///
    /// # Panics
    /// Panics if more than 256 model types are registered (Mids are `u8`).
    pub fn register(&mut self, model: Arc<dyn ModelType>) -> u8 {
        assert!(self.types.len() < 256, "mid space exhausted");
        self.types.push(model);
        (self.types.len() - 1) as u8
    }

    /// The model type with the given Mid.
    pub fn get(&self, mid: u8) -> Option<&Arc<dyn ModelType>> {
        self.types.get(mid as usize)
    }

    /// The Mid of the model type called `name`.
    pub fn mid_of(&self, name: &str) -> Option<u8> {
        self.types
            .iter()
            .position(|t| t.name() == name)
            .map(|i| i as u8)
    }

    /// All registered model types with their Mids, in fitting order.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &Arc<dyn ModelType>)> {
        self.types.iter().enumerate().map(|(i, t)| (i as u8, t))
    }

    /// Number of registered model types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The names of all models, by Mid — the Model table of Figure 6.
    pub fn names(&self) -> Vec<&str> {
        self.types.iter().map(|t| t.name()).collect()
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fitter, SegmentAgg};
    use mdb_types::{ErrorBound, Timestamp, Value};

    #[test]
    fn standard_registry_matches_figure6_model_table() {
        let r = ModelRegistry::standard();
        assert_eq!(r.names(), vec!["PMC-Mean", "Swing", "Gorilla"]);
        assert_eq!(r.get(MID_PMC_MEAN).unwrap().name(), "PMC-Mean");
        assert_eq!(r.get(MID_SWING).unwrap().name(), "Swing");
        assert_eq!(r.get(MID_GORILLA).unwrap().name(), "Gorilla");
        assert!(r.get(3).is_none());
        assert_eq!(r.mid_of("Swing"), Some(MID_SWING));
        assert_eq!(r.mid_of("nope"), None);
    }

    /// A trivial user-defined model: stores the first value, represents
    /// everything after as that value with unbounded error — only usable at
    /// enormous error bounds, but exactly what the extension API allows.
    struct FirstValue;

    struct FirstValueFitter {
        bound: ErrorBound,
        first: Option<Value>,
        len: usize,
        limit: usize,
    }

    impl crate::ModelType for FirstValue {
        fn name(&self) -> &str {
            "FirstValue"
        }
        fn fitter(&self, bound: ErrorBound, _n: usize, limit: usize) -> Box<dyn Fitter> {
            Box::new(FirstValueFitter {
                bound,
                first: None,
                len: 0,
                limit,
            })
        }
        fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>> {
            let v = Value::from_le_bytes(params.get(..4)?.try_into().ok()?);
            Some(vec![v; n_series * count])
        }
        fn agg(
            &self,
            _p: &[u8],
            _n: usize,
            _c: usize,
            _r: (usize, usize),
            _s: usize,
        ) -> Option<SegmentAgg> {
            None
        }
    }

    impl Fitter for FirstValueFitter {
        fn append(&mut self, _t: Timestamp, values: &[Value]) -> bool {
            if self.len >= self.limit {
                return false;
            }
            match self.first {
                None => self.first = Some(values[0]),
                Some(f) => {
                    if !values.iter().all(|&v| self.bound.within(f, v)) {
                        return false;
                    }
                }
            }
            self.len += 1;
            true
        }
        fn len(&self) -> usize {
            self.len
        }
        fn params(&self) -> Vec<u8> {
            self.first.unwrap_or(0.0).to_le_bytes().to_vec()
        }
        fn byte_size(&self) -> usize {
            4
        }
    }

    #[test]
    fn user_defined_models_can_be_registered_and_used() {
        let mut r = ModelRegistry::standard();
        let mid = r.register(Arc::new(FirstValue));
        assert_eq!(mid, 3);
        let model = r.get(mid).unwrap();
        let mut f = model.fitter(ErrorBound::absolute(100.0), 1, 50);
        assert!(f.append(0, &[5.0]));
        assert!(f.append(100, &[55.0]));
        let grid = model.grid(&f.params(), 1, 2).unwrap();
        assert_eq!(grid, vec![5.0, 5.0]);
    }

    #[test]
    fn per_series_baseline_wraps_all_three() {
        let r = ModelRegistry::per_series_baseline();
        assert_eq!(
            r.names(),
            vec!["PMC-Mean/PerSeries", "Swing/PerSeries", "Gorilla/PerSeries"]
        );
    }
}

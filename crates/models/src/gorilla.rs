//! Gorilla: lossless XOR float compression (Pelkonen et al., reference
//! \[28\]), extended for group compression per Section 5.2.
//!
//! "For Gorilla, values from data points with the same time stamp are stored
//! in blocks. As the time series in a group are correlated, n − 1 values in
//! each block will have only a small delta compared to the first value and
//! only require a few bits to encode" (Figure 10). The fitter therefore
//! pushes the group's values timestamp-major into one XOR stream.
//!
//! Gorilla accepts any values (it is lossless), so it is the fallback model
//! that guarantees ingestion always progresses; the Model Length Limit of
//! Table 1 bounds how many timestamps one instance may absorb.

use mdb_types::{ErrorBound, Timestamp, Value};

use crate::{Fitter, ModelType, SegmentAgg};

/// The Gorilla model type. Parameters: the XOR-compressed value stream.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gorilla;

impl ModelType for Gorilla {
    fn name(&self) -> &str {
        "Gorilla"
    }

    fn fitter(&self, _bound: ErrorBound, n_series: usize, length_limit: usize) -> Box<dyn Fitter> {
        Box::new(GorillaFitter {
            n_series,
            length_limit,
            values: Vec::new(),
            encoder: mdb_encoding::xor::XorEncoder::new(),
            len: 0,
        })
    }

    fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>> {
        mdb_encoding::xor::decode_all(params, count * n_series)
    }

    fn agg(
        &self,
        _params: &[u8],
        _n_series: usize,
        _count: usize,
        _range: (usize, usize),
        _series: usize,
    ) -> Option<SegmentAgg> {
        // No closed form: the query engine reconstructs the values.
        None
    }
}

struct GorillaFitter {
    n_series: usize,
    length_limit: usize,
    /// Raw values, timestamp-major, kept so `params()` can re-encode a
    /// prefix; the multi-model adapter of Section 5.1 relies on truncation
    /// ("the leftover parameters should be deleted", Figure 9 case III).
    values: Vec<Value>,
    /// Streaming encoder mirroring `values`, for O(1) `byte_size`.
    encoder: mdb_encoding::xor::XorEncoder,
    len: usize,
}

impl Fitter for GorillaFitter {
    fn append(&mut self, _timestamp: Timestamp, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.n_series);
        if self.len >= self.length_limit {
            return false;
        }
        for &v in values {
            self.values.push(v);
            self.encoder.push(v);
        }
        self.len += 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn params(&self) -> Vec<u8> {
        mdb_encoding::xor::encode_all(&self.values[..self.len * self.n_series])
    }

    fn byte_size(&self) -> usize {
        self.encoder.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_types::ErrorBound;

    #[test]
    fn lossless_round_trip_of_arbitrary_rows() {
        let rows = [
            vec![187.5f32, 175.5, 189.7],
            vec![-182.8, 0.0, 184.0],
            vec![f32::MAX, f32::MIN, 1e-30],
        ];
        let mut f = Gorilla.fitter(ErrorBound::Lossless, 3, 50);
        for (t, row) in rows.iter().enumerate() {
            assert!(f.append(t as i64 * 100, row));
        }
        let grid = Gorilla.grid(&f.params(), 3, 3).unwrap();
        for (t, row) in rows.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert_eq!(grid[t * 3 + s].to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn length_limit_stops_acceptance() {
        let mut f = Gorilla.fitter(ErrorBound::Lossless, 1, 2);
        assert!(f.append(0, &[1.0]));
        assert!(f.append(100, &[2.0]));
        assert!(!f.append(200, &[3.0]));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn byte_size_tracks_stream_growth() {
        let mut f = Gorilla.fitter(ErrorBound::Lossless, 2, 50);
        assert!(f.append(0, &[1.0, 1.0]));
        let s1 = f.byte_size();
        assert!(f.append(100, &[500.0, -500.0]));
        assert!(f.byte_size() > s1);
        // Estimate matches the serialized prefix when nothing is truncated.
        assert_eq!(f.byte_size(), f.params().len());
    }

    #[test]
    fn correlated_groups_encode_smaller_than_uncorrelated() {
        let mut correlated = Gorilla.fitter(ErrorBound::Lossless, 4, 50);
        let mut uncorrelated = Gorilla.fitter(ErrorBound::Lossless, 4, 50);
        for t in 0..50i64 {
            let base = (t as f32 * 0.1).sin() * 10.0 + 100.0;
            correlated.append(t * 100, &[base, base + 0.01, base + 0.02, base - 0.01]);
            uncorrelated.append(
                t * 100,
                &[
                    base,
                    base * -37.3 + 11.1,
                    (t as f32).exp().fract() * 1e6,
                    1.0 / (t as f32 + 0.7),
                ],
            );
        }
        assert!(correlated.byte_size() < uncorrelated.byte_size());
    }

    #[test]
    fn agg_defers_to_grid() {
        assert!(Gorilla.agg(&[], 1, 10, (0, 9), 0).is_none());
    }

    proptest::proptest! {
        #[test]
        fn grid_round_trips_any_values(
            rows in proptest::collection::vec(proptest::collection::vec(proptest::num::f32::ANY, 3), 1..40)
        ) {
            let mut f = Gorilla.fitter(ErrorBound::Lossless, 3, 100);
            for (t, row) in rows.iter().enumerate() {
                proptest::prop_assert!(f.append(t as i64, row));
            }
            let grid = Gorilla.grid(&f.params(), 3, rows.len()).unwrap();
            for (t, row) in rows.iter().enumerate() {
                for (s, &v) in row.iter().enumerate() {
                    proptest::prop_assert_eq!(grid[t * 3 + s].to_bits(), v.to_bits());
                }
            }
        }
    }
}

//! Model types for Multi-Model Group Compression (Sections 3.2, 5).
//!
//! A *model* (Definition 4) is a pair of functions `(mest, merr)` from which
//! the data points of a bounded time series — here, a time series *group* —
//! can be reconstructed within a known error bound. ModelarDB+ treats models
//! as black boxes behind a common interface so user-defined models can be
//! added without recompiling the system (Section 3.1); this crate defines
//! that interface and the three models distributed with ModelarDB+ Core,
//! extended for group compression as described in Section 5.2:
//!
//! * [`pmc::PmcMean`] — constant functions (Lazaridis & Mehrotra, \[25\]).
//!   For a group, the set of values `V` at each timestamp collapses to
//!   `(min(V), max(V))`; the model stores one average within `ε` of both.
//! * [`swing::Swing`] — linear functions (Elmeleegy et al., \[15\]). The
//!   initial point is computed like PMC; afterwards each timestamp appends
//!   the interval all group values allow, swinging the slope bounds.
//! * [`gorilla::Gorilla`] — lossless XOR compression (Pelkonen et al.,
//!   \[28\]), storing the group's values in time-ordered blocks so
//!   correlated series XOR into few bits.
//!
//! [`multi::PerSeries`] is the baseline method of Section 5.1 that upgrades
//! *any* single-series model to group compression by fitting one sub-model
//! per series inside a single segment (including the `te` truncation of
//! Figure 9, case III).

pub mod gorilla;
pub mod multi;
pub mod pmc;
pub mod registry;
pub mod swing;

use mdb_types::{ErrorBound, SegmentRecord, Timestamp, Value, ValueInterval};

pub use registry::{ModelRegistry, MID_GORILLA, MID_PMC_MEAN, MID_SWING};

/// The size in bytes a raw data point is accounted as when computing
/// compression ratios: 8-byte timestamp + 4-byte value + 4-byte tid, the
/// uncompressed layout of the Data Point View.
pub const RAW_DATA_POINT_BYTES: usize = 16;

/// The fixed per-segment header the storage layer adds around the model
/// parameters (see `SegmentRecord::storage_bytes`).
pub const SEGMENT_HEADER_BYTES: usize = 25;

/// An online fitter for one model type over one time series group.
///
/// The ingestion loop of Section 3.2 appends the group's values one sampling
/// interval at a time. `append` is atomic: it either extends the model by one
/// timestamp and returns `true`, or returns `false` and leaves the fitter
/// representing exactly the previously accepted timestamps (so `params` stays
/// valid after a failed append — the Figure 9 contract).
///
/// Fitters are `Send + Sync` so an engine owning them can be driven from a
/// network server's sessions; the built-in fitters are plain value structs,
/// and user-defined ones should be too (interior shared state belongs in
/// the [`ModelType`], which is already shared).
pub trait Fitter: Send + Sync {
    /// Tries to extend the model with the group's values at `timestamp`
    /// (`values[i]` belongs to the `i`-th series represented by the segment).
    fn append(&mut self, timestamp: Timestamp, values: &[Value]) -> bool;

    /// The number of timestamps currently represented.
    fn len(&self) -> usize;

    /// True before anything was accepted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the model parameters representing the accepted timestamps.
    fn params(&self) -> Vec<u8>;

    /// The (possibly estimated) size of `params()` in bytes, used to select
    /// the model with the best compression ratio without serializing all
    /// candidates.
    fn byte_size(&self) -> usize;
}

/// Constant-time aggregate values over a slice of a segment, produced without
/// reconstructing data points (Section 6.1: "SUM on a linear model uses
/// constant time").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentAgg {
    /// Sum of the values in the range.
    pub sum: f64,
    /// Minimum value in the range.
    pub min: Value,
    /// Maximum value in the range.
    pub max: Value,
}

/// A model type: a factory for fitters plus the decoding half of the black
/// box. Implement this trait (and register it) to add a user-defined model.
pub trait ModelType: Send + Sync {
    /// A short stable name (the `Classpath` column of the Model table in
    /// Figure 6 plays this role in the paper).
    fn name(&self) -> &str;

    /// Creates a fitter for a group segment of `n_series` series under
    /// `bound`. `length_limit` is the Model Length Limit of Table 1: the
    /// maximum number of timestamps one model may represent.
    fn fitter(&self, bound: ErrorBound, n_series: usize, length_limit: usize) -> Box<dyn Fitter>;

    /// Reconstructs all values of a segment with the given `params`:
    /// the result is timestamp-major, `out[t * n_series + s]` being the value
    /// of the `s`-th represented series at the `t`-th timestamp.
    fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>>;

    /// Constant-time aggregation over the timestamp indexes
    /// `range.0 ..= range.1` for the series at `series` position, if this
    /// model supports it. Returning `None` makes the query engine fall back
    /// to [`ModelType::grid`].
    fn agg(
        &self,
        params: &[u8],
        n_series: usize,
        count: usize,
        range: (usize, usize),
        series: usize,
    ) -> Option<SegmentAgg>;
}

/// Intersects the intervals of acceptable approximations for all values of a
/// group at one timestamp: a single representative value `r` can stand in for
/// every `v` in `values` iff `lo ≤ r ≤ hi`.
///
/// This is the reduction of Section 5.2: only the extreme values can
/// invalidate a model, so the set `V` collapses to a range — here generalized
/// to relative bounds by intersecting per-value intervals. Returns `None`
/// when no single value can represent them all (or any value is non-finite).
pub fn allowed_interval(bound: &ErrorBound, values: &[Value]) -> Option<(f64, f64)> {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for &v in values {
        if !v.is_finite() {
            return None;
        }
        let (l, h) = bound.interval_for(v);
        lo = lo.max(l);
        hi = hi.min(h);
        if lo > hi {
            return None;
        }
    }
    if values.is_empty() {
        None
    } else {
        Some((lo, hi))
    }
}

/// The stored-value range a segment is known to cover, computed in constant
/// time from the model's closed-form aggregate over the full timestamp range
/// — the statistic the storage layer's zone map records per segment run.
///
/// Returns `None` when the model has no closed form (e.g. Gorilla, whose
/// values would have to be reconstructed — too expensive on the write path)
/// or when the parameters cannot be evaluated; zone maps treat `None` as
/// "unbounded" and never prune such runs, so the statistic is always sound.
pub fn segment_value_range(
    registry: &ModelRegistry,
    segment: &SegmentRecord,
    group_size: usize,
) -> Option<ValueInterval> {
    let model = registry.get(segment.mid)?;
    let n_series = segment.gaps.count_present(group_size);
    if n_series == 0 {
        return None;
    }
    let count = segment.len();
    let mut range = ValueInterval::EMPTY;
    for series in 0..n_series {
        let agg = model.agg(&segment.params, n_series, count, (0, count - 1), series)?;
        range = range.union(&ValueInterval::new(f64::from(agg.min), f64::from(agg.max)));
    }
    Some(range)
}

/// The compression ratio used for model selection (step iii of Section 3.2):
/// raw bytes represented divided by stored bytes.
pub fn compression_ratio(timestamps: usize, n_series: usize, stored_bytes: usize) -> f64 {
    if stored_bytes == 0 {
        return 0.0;
    }
    (timestamps * n_series * RAW_DATA_POINT_BYTES) as f64 / stored_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_interval_intersects_per_value_bounds() {
        let b = ErrorBound::absolute(1.0);
        // [9, 11] ∩ [10, 12] = [10, 11].
        let (lo, hi) = allowed_interval(&b, &[10.0, 11.0]).unwrap();
        assert_eq!((lo, hi), (10.0, 11.0));
        // Exactly 2ε apart: a single representative remains (§5.2's
        // max(V) − min(V) = 2ε maximum range).
        let (lo, hi) = allowed_interval(&b, &[10.0, 12.0]).unwrap();
        assert_eq!((lo, hi), (11.0, 11.0));
        // Values further apart than 2ε: no representative exists.
        assert!(allowed_interval(&b, &[10.0, 12.5]).is_none());
    }

    #[test]
    fn allowed_interval_relative_bound() {
        let b = ErrorBound::relative(10.0);
        let (lo, hi) = allowed_interval(&b, &[100.0, 110.0]).unwrap();
        assert!(lo <= hi);
        assert!(lo >= 99.0 && hi <= 110.0 + 11.0);
    }

    #[test]
    fn allowed_interval_rejects_non_finite_and_empty() {
        let b = ErrorBound::relative(10.0);
        assert!(allowed_interval(&b, &[f32::NAN]).is_none());
        assert!(allowed_interval(&b, &[1.0, f32::INFINITY]).is_none());
        assert!(allowed_interval(&b, &[]).is_none());
    }

    #[test]
    fn allowed_interval_lossless_requires_equality() {
        let b = ErrorBound::Lossless;
        assert!(allowed_interval(&b, &[5.0, 5.0]).is_some());
        assert!(allowed_interval(&b, &[5.0, 5.000001]).is_none());
    }

    #[test]
    fn compression_ratio_scales_with_group_size() {
        // One 25+4 byte PMC segment representing 50 timestamps of 3 series.
        let one = compression_ratio(50, 1, 29);
        let three = compression_ratio(50, 3, 29);
        assert!((three / one - 3.0).abs() < 1e-9);
        assert_eq!(compression_ratio(10, 1, 0), 0.0);
    }

    #[test]
    fn segment_value_range_uses_closed_forms_only() {
        use bytes::Bytes;
        use mdb_types::GapsMask;
        let registry = ModelRegistry::standard();
        // A PMC-Mean segment stores one value; its range is that point.
        let pmc = SegmentRecord {
            gid: 1,
            start_time: 0,
            end_time: 900,
            sampling_interval: 100,
            mid: MID_PMC_MEAN,
            params: Bytes::from(2.5f32.to_le_bytes().to_vec()),
            gaps: GapsMask::EMPTY,
        };
        let range = segment_value_range(&registry, &pmc, 2).unwrap();
        assert_eq!(range, ValueInterval::new(2.5, 2.5));
        // Gorilla has no closed form: the write path must not decode, so the
        // statistic is "unbounded" (None).
        let gorilla = SegmentRecord {
            mid: MID_GORILLA,
            ..pmc.clone()
        };
        assert!(segment_value_range(&registry, &gorilla, 2).is_none());
        // A segment representing no series yields no statistic.
        let empty = SegmentRecord {
            gaps: GapsMask::from_positions(&[0, 1]),
            ..pmc
        };
        assert!(segment_value_range(&registry, &empty, 2).is_none());
    }
}

//! Swing: linear-function compression with precision guarantees (Elmeleegy
//! et al., reference \[15\]), extended for group compression per Section 5.2.
//!
//! The model is a linear function guaranteed to pass through an initial
//! point; the fitter maintains the interval of slopes that keeps the line
//! within the error bound of every later point ("swinging" the upper and
//! lower bound lines of Figure 10). The group extension follows the paper:
//! the initial point is computed like PMC from the first timestamp's values,
//! and each later timestamp contributes the interval that all of the group's
//! values allow — only the minimum and maximum value at each timestamp can
//! tighten the slope bounds.
//!
//! Parameters: 8 bytes — the value at the first and at the last represented
//! timestamp as `f32` (the form ModelarDB stores; slope and intercept follow
//! from the segment's start time, end time and sampling interval).

use mdb_types::{ErrorBound, Timestamp, Value};

use crate::{allowed_interval, Fitter, ModelType, SegmentAgg};

/// The Swing model type.
#[derive(Debug, Default, Clone, Copy)]
pub struct Swing;

impl ModelType for Swing {
    fn name(&self) -> &str {
        "Swing"
    }

    fn fitter(&self, bound: ErrorBound, n_series: usize, length_limit: usize) -> Box<dyn Fitter> {
        Box::new(SwingFitter {
            bound,
            n_series,
            length_limit,
            first: None,
            slope_lo: f64::NEG_INFINITY,
            slope_hi: f64::INFINITY,
            last_dt: 0.0,
            len: 0,
        })
    }

    fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>> {
        let (first, last) = decode(params)?;
        let mut out = Vec::with_capacity(count * n_series);
        for t in 0..count {
            let v = value_at(first, last, t, count);
            for _ in 0..n_series {
                out.push(v);
            }
        }
        Some(out)
    }

    fn agg(
        &self,
        params: &[u8],
        _n_series: usize,
        count: usize,
        range: (usize, usize),
        _series: usize,
    ) -> Option<SegmentAgg> {
        let (first, last) = decode(params)?;
        let (a, b) = range;
        if a > b || b >= count {
            return None;
        }
        // The values form an arithmetic sequence, so the sum over the range
        // is the average of the endpoints times the count, and the extremes
        // sit at the endpoints (Section 6.1's constant-time SUM example,
        // Figure 11).
        let va = value_at(first, last, a, count);
        let vb = value_at(first, last, b, count);
        let n = (b - a + 1) as f64;
        // Sum the f32-rounded per-timestamp values exactly as the Data Point
        // View would produce them is O(n); the O(1) closed form over the
        // ideal line differs from it by strictly less than the reconstruction
        // rounding, which is what the paper accepts for queries on models.
        let sum = (f64::from(va) + f64::from(vb)) / 2.0 * n;
        Some(SegmentAgg {
            sum,
            min: va.min(vb),
            max: va.max(vb),
        })
    }
}

fn decode(params: &[u8]) -> Option<(Value, Value)> {
    if params.len() < 8 {
        return None;
    }
    let first = Value::from_le_bytes(params[0..4].try_into().ok()?);
    let last = Value::from_le_bytes(params[4..8].try_into().ok()?);
    Some((first, last))
}

/// The model's value at timestamp index `t` of `count` (linear interpolation
/// between the stored endpoint values; `count == 1` degenerates to `first`).
fn value_at(first: Value, last: Value, t: usize, count: usize) -> Value {
    if count <= 1 {
        return first;
    }
    let frac = t as f64 / (count - 1) as f64;
    (f64::from(first) + (f64::from(last) - f64::from(first)) * frac) as Value
}

struct SwingFitter {
    bound: ErrorBound,
    n_series: usize,
    length_limit: usize,
    /// `(t0, v0)`: the initial point, fixed after the first append. `v0` is
    /// quantized to `f32` immediately so the stored anchor is the one the
    /// slope bounds are computed against.
    first: Option<(Timestamp, f32)>,
    slope_lo: f64,
    slope_hi: f64,
    /// Time offset of the last accepted point, in ms since `t0`.
    last_dt: f64,
    len: usize,
}

impl SwingFitter {
    fn slope(&self) -> f64 {
        if self.slope_lo == f64::NEG_INFINITY || self.slope_hi == f64::INFINITY {
            return 0.0;
        }
        (self.slope_lo + self.slope_hi) / 2.0
    }
}

impl Fitter for SwingFitter {
    fn append(&mut self, timestamp: Timestamp, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.n_series);
        if self.len >= self.length_limit {
            return false;
        }
        let (lo, hi) = match allowed_interval(&self.bound, values) {
            Some(iv) => iv,
            None => return false,
        };
        match self.first {
            None => {
                // Initial point via PMC: the average of the first timestamp's
                // values, clamped into the interval they all allow.
                let mean = values.iter().map(|&v| f64::from(v)).sum::<f64>() / values.len() as f64;
                let v0 = mean.clamp(lo, hi) as f32;
                if f64::from(v0) < lo || f64::from(v0) > hi {
                    return false;
                }
                self.first = Some((timestamp, v0));
                self.len = 1;
                true
            }
            Some((t0, v0)) => {
                let dt = (timestamp - t0) as f64;
                if dt <= 0.0 {
                    return false;
                }
                let lo_slope = (lo - f64::from(v0)) / dt;
                let hi_slope = (hi - f64::from(v0)) / dt;
                let new_lo = self.slope_lo.max(lo_slope);
                let new_hi = self.slope_hi.min(hi_slope);
                if new_lo > new_hi {
                    return false;
                }
                self.slope_lo = new_lo;
                self.slope_hi = new_hi;
                self.last_dt = dt;
                self.len += 1;
                true
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn params(&self) -> Vec<u8> {
        let (first, last) = match self.first {
            None => (0.0f32, 0.0f32),
            Some((_, v0)) if self.len <= 1 => (v0, v0),
            Some((_, v0)) => {
                let last = f64::from(v0) + self.slope() * self.last_dt;
                (v0, last as f32)
            }
        };
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&first.to_le_bytes());
        out.extend_from_slice(&last.to_le_bytes());
        out
    }

    fn byte_size(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_within(bound: &ErrorBound, params: &[u8], rows: &[Vec<Value>]) {
        let n_series = rows[0].len();
        let grid = Swing.grid(params, n_series, rows.len()).unwrap();
        for (t, row) in rows.iter().enumerate() {
            for (s, &orig) in row.iter().enumerate() {
                let approx = grid[t * n_series + s];
                assert!(
                    bound.within(approx, orig),
                    "t={t} s={s}: {approx} vs {orig}"
                );
            }
        }
    }

    #[test]
    fn exact_line_fits_losslessly_when_representable() {
        // v = 2t with f32-exact values.
        let bound = ErrorBound::Lossless;
        let mut f = Swing.fitter(bound, 1, 50);
        let rows: Vec<Vec<Value>> = (0..10).map(|t| vec![(2 * t) as f32]).collect();
        for (t, row) in rows.iter().enumerate() {
            assert!(f.append(t as i64 * 100, row), "failed at {t}");
        }
        check_within(&bound, &f.params(), &rows);
    }

    #[test]
    fn paper_example_three_series_within_ten() {
        // Section 2: TS1/TS2/TS3's first four timestamps fit one line under
        // ε = 10, but the fifth (183.7/179.1/172.9) breaks it.
        let bound = ErrorBound::absolute(10.0);
        let rows = [
            vec![187.5f32, 175.5, 189.7],
            vec![182.8, 170.9, 184.0],
            vec![178.1, 166.3, 178.3],
            vec![173.4, 161.7, 174.6],
            vec![183.7, 179.1, 172.9],
        ];
        let mut f = Swing.fitter(bound, 3, 50);
        let mut accepted = 0;
        for (t, row) in rows.iter().enumerate() {
            if f.append(100 + t as i64 * 100, row) {
                accepted += 1;
            } else {
                break;
            }
        }
        assert_eq!(
            accepted, 4,
            "the segment of Section 2 covers timestamps 100–400"
        );
        check_within(&bound, &f.params(), &rows[..4]);
    }

    #[test]
    fn noisy_line_fits_within_relative_bound() {
        let bound = ErrorBound::relative(5.0);
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|t| {
                let base = 100.0 + t as f32 * 0.5;
                vec![base * 1.01, base * 0.99]
            })
            .collect();
        let mut f = Swing.fitter(bound, 2, 50);
        for (t, row) in rows.iter().enumerate() {
            assert!(f.append(t as i64 * 1000, row), "failed at {t}");
        }
        check_within(&bound, &f.params(), &rows);
    }

    #[test]
    fn level_shift_breaks_the_line() {
        let bound = ErrorBound::absolute(1.0);
        let mut f = Swing.fitter(bound, 1, 50);
        for t in 0..5 {
            assert!(f.append(t * 100, &[10.0]));
        }
        assert!(!f.append(500, &[50.0]));
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn incompatible_first_row_fails_to_start() {
        // First values further apart than 2ε: no initial point exists.
        let bound = ErrorBound::absolute(1.0);
        let mut f = Swing.fitter(bound, 2, 50);
        assert!(!f.append(0, &[0.0, 10.0]));
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn singleton_model_stores_flat_line() {
        let bound = ErrorBound::absolute(1.0);
        let mut f = Swing.fitter(bound, 1, 50);
        assert!(f.append(0, &[5.0]));
        let (first, last) = decode(&f.params()).unwrap();
        assert_eq!(first, last);
        assert!(bound.within(first, 5.0));
    }

    #[test]
    fn non_monotonic_timestamps_rejected() {
        let mut f = Swing.fitter(ErrorBound::absolute(1.0), 1, 50);
        assert!(f.append(100, &[1.0]));
        assert!(!f.append(100, &[1.0]));
        assert!(!f.append(50, &[1.0]));
    }

    #[test]
    fn length_limit_enforced() {
        let mut f = Swing.fitter(ErrorBound::absolute(100.0), 1, 3);
        for t in 0..3 {
            assert!(f.append(t * 100, &[1.0]));
        }
        assert!(!f.append(300, &[1.0]));
    }

    #[test]
    fn agg_matches_grid_sum() {
        let bound = ErrorBound::absolute(0.1);
        let rows: Vec<Vec<Value>> = (0..20).map(|t| vec![10.0 + t as f32]).collect();
        let mut f = Swing.fitter(bound, 1, 50);
        for (t, row) in rows.iter().enumerate() {
            assert!(f.append(t as i64 * 100, row));
        }
        let params = f.params();
        let agg = Swing.agg(&params, 1, 20, (0, 19), 0).unwrap();
        let grid = Swing.grid(&params, 1, 20).unwrap();
        let grid_sum: f64 = grid.iter().map(|&v| f64::from(v)).sum();
        assert!(
            (agg.sum - grid_sum).abs() < 1e-3 * grid_sum.abs(),
            "{} vs {}",
            agg.sum,
            grid_sum
        );
        assert!(agg.min <= grid.iter().cloned().fold(f32::INFINITY, f32::min) + 1e-3);
        assert!(agg.max >= grid.iter().cloned().fold(f32::NEG_INFINITY, f32::max) - 1e-3);
        // Sub-ranges too.
        let sub = Swing.agg(&params, 1, 20, (5, 9), 0).unwrap();
        let sub_sum: f64 = grid[5..=9].iter().map(|&v| f64::from(v)).sum();
        assert!((sub.sum - sub_sum).abs() < 1e-3 * sub_sum.abs());
    }

    #[test]
    fn figure11_sum_example() {
        // Figure 11: Sum over −0.0465t + 186.1 from t=100 to t=2300 at
        // SI=100: ((181.45 + 79.15) / 2) × 23 = 2996.9.
        let first = -0.0465f32 * 100.0 + 186.1;
        let last = -0.0465f32 * 2300.0 + 186.1;
        let mut params = Vec::new();
        params.extend_from_slice(&first.to_le_bytes());
        params.extend_from_slice(&last.to_le_bytes());
        let agg = Swing.agg(&params, 3, 23, (0, 22), 0).unwrap();
        assert!((agg.sum - 2996.9).abs() < 0.1, "{}", agg.sum);
    }

    proptest::proptest! {
        #[test]
        fn reconstruction_is_within_bound(
            base in -500.0f32..500.0,
            slope in -2.0f32..2.0,
            noise in proptest::collection::vec(-0.2f32..0.2, 2..60),
            pct in 1.0f64..20.0,
        ) {
            let bound = ErrorBound::relative(pct);
            let mut f = Swing.fitter(bound, 1, 100);
            let mut rows = Vec::new();
            for (t, n) in noise.iter().enumerate() {
                let v = base + slope * t as f32 + n;
                if f.append(t as i64 * 1000, &[v]) {
                    rows.push(vec![v]);
                } else {
                    break;
                }
            }
            if !rows.is_empty() {
                let params = f.params();
                let grid = Swing.grid(&params, 1, rows.len()).unwrap();
                for (t, row) in rows.iter().enumerate() {
                    // Allow one f32 ULP of slack for the quantized endpoints.
                    let approx = grid[t];
                    let tolerance = pct / 100.0 * f64::from(row[0].abs()) + f64::from(row[0].abs()) * 1e-5 + 1e-6;
                    proptest::prop_assert!(
                        (f64::from(approx) - f64::from(row[0])).abs() <= tolerance,
                        "t={} {} vs {}", t, approx, row[0]
                    );
                }
            }
        }
    }
}

//! PMC-Mean: constant-function compression (reference \[25\]), extended for
//! group compression per Section 5.2.
//!
//! The model stores one `f32`: an average within the error bound of every
//! value it represents. "PMC requires no changes as the model only tracks the
//! current minimum, maximum and average value" — the fitter below folds all
//! values of the group at each timestamp into one feasible interval plus a
//! running mean, so single-series and group fitting are the same code.

use mdb_types::{ErrorBound, Timestamp, Value};

use crate::{allowed_interval, Fitter, ModelType, SegmentAgg};

/// The PMC-Mean model type. Parameters: 4 bytes (the average as `f32`).
#[derive(Debug, Default, Clone, Copy)]
pub struct PmcMean;

impl ModelType for PmcMean {
    fn name(&self) -> &str {
        "PMC-Mean"
    }

    fn fitter(&self, bound: ErrorBound, n_series: usize, length_limit: usize) -> Box<dyn Fitter> {
        Box::new(PmcFitter {
            bound,
            n_series,
            length_limit,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            sum: 0.0,
            value_count: 0,
            len: 0,
        })
    }

    fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>> {
        let value = decode(params)?;
        Some(vec![value; count * n_series])
    }

    fn agg(
        &self,
        params: &[u8],
        _n_series: usize,
        count: usize,
        range: (usize, usize),
        _series: usize,
    ) -> Option<SegmentAgg> {
        let value = decode(params)?;
        let (a, b) = range;
        if a > b || b >= count {
            return None;
        }
        let n = (b - a + 1) as f64;
        Some(SegmentAgg {
            sum: f64::from(value) * n,
            min: value,
            max: value,
        })
    }
}

fn decode(params: &[u8]) -> Option<Value> {
    Some(Value::from_le_bytes(params.get(..4)?.try_into().ok()?))
}

struct PmcFitter {
    bound: ErrorBound,
    n_series: usize,
    length_limit: usize,
    /// Intersection of the acceptable intervals of every value seen.
    lo: f64,
    hi: f64,
    /// Running mean over all values (the "Mean" of PMC-Mean).
    sum: f64,
    value_count: usize,
    len: usize,
}

impl PmcFitter {
    fn representative(&self) -> Value {
        // The mean, clamped into the feasible interval (with a degenerate
        // interval the midpoint is the only choice).
        let mean = if self.value_count > 0 {
            self.sum / self.value_count as f64
        } else {
            0.0
        };
        let clamped = mean.clamp(self.lo, self.hi);
        clamped as Value
    }
}

impl Fitter for PmcFitter {
    fn append(&mut self, _timestamp: Timestamp, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.n_series);
        if self.len >= self.length_limit {
            return false;
        }
        let (vlo, vhi) = match allowed_interval(&self.bound, values) {
            Some(iv) => iv,
            None => return false,
        };
        let lo = self.lo.max(vlo);
        let hi = self.hi.min(vhi);
        if lo > hi {
            return false;
        }
        // The candidate representative must itself survive the f32 rounding.
        let sum = self.sum + values.iter().map(|&v| f64::from(v)).sum::<f64>();
        let value_count = self.value_count + values.len();
        let candidate = (sum / value_count as f64).clamp(lo, hi) as Value;
        if f64::from(candidate) < lo || f64::from(candidate) > hi {
            return false;
        }
        self.lo = lo;
        self.hi = hi;
        self.sum = sum;
        self.value_count = value_count;
        self.len += 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn params(&self) -> Vec<u8> {
        self.representative().to_le_bytes().to_vec()
    }

    fn byte_size(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(bound: ErrorBound, n_series: usize, rows: &[&[Value]]) -> (usize, Vec<u8>) {
        let mut f = PmcMean.fitter(bound, n_series, 50);
        let mut accepted = 0;
        for (i, row) in rows.iter().enumerate() {
            if f.append(i as i64 * 100, row) {
                accepted += 1;
            } else {
                break;
            }
        }
        assert_eq!(f.len(), accepted);
        (accepted, f.params())
    }

    #[test]
    fn constant_series_fits_up_to_length_limit() {
        let mut f = PmcMean.fitter(ErrorBound::Lossless, 1, 50);
        let mut n = 0;
        for i in 0..100 {
            if f.append(i * 100, &[42.0]) {
                n += 1;
            }
        }
        assert_eq!(n, 50, "length limit caps the model");
        assert_eq!(decode(&f.params()), Some(42.0));
    }

    #[test]
    fn lossless_bound_rejects_first_deviation() {
        let (len, params) = fit(ErrorBound::Lossless, 1, &[&[5.0], &[5.0], &[5.1]]);
        assert_eq!(len, 2);
        assert_eq!(decode(&params), Some(5.0));
    }

    #[test]
    fn absolute_bound_accepts_small_drift() {
        let (len, params) = fit(
            ErrorBound::absolute(1.0),
            1,
            &[&[10.0], &[10.5], &[11.0], &[12.5]],
        );
        // 10.0 and 12.5 cannot share one value under ε = 1.
        assert_eq!(len, 3);
        let v = decode(&params).unwrap();
        for orig in [10.0f32, 10.5, 11.0] {
            assert!(ErrorBound::absolute(1.0).within(v, orig), "{v} vs {orig}");
        }
    }

    #[test]
    fn group_rows_reduce_to_min_max() {
        // Section 5.2: a group's values at one timestamp act via min/max.
        let bound = ErrorBound::absolute(1.0);
        let (len, params) = fit(bound, 3, &[&[10.0, 10.5, 11.0], &[10.2, 10.8, 10.4]]);
        assert_eq!(len, 2);
        let v = decode(&params).unwrap();
        for orig in [10.0f32, 10.5, 11.0, 10.2, 10.8, 10.4] {
            assert!(bound.within(v, orig));
        }
        // A group whose own values span more than 2ε can never start.
        let (len, _) = fit(bound, 2, &[&[10.0, 12.5]]);
        assert_eq!(len, 0);
    }

    #[test]
    fn paper_example_pmc_range() {
        // max(V) − min(V) = 2ε is the maximum representable range (§5.2).
        let bound = ErrorBound::absolute(1.0);
        let (len, _) = fit(bound, 2, &[&[10.0, 12.0]]);
        assert_eq!(len, 1);
    }

    #[test]
    fn params_after_failed_append_cover_prefix_only() {
        let bound = ErrorBound::absolute(0.5);
        let mut f = PmcMean.fitter(bound, 1, 50);
        assert!(f.append(0, &[1.0]));
        assert!(!f.append(100, &[5.0]));
        assert_eq!(f.len(), 1);
        let v = decode(&f.params()).unwrap();
        assert!(bound.within(v, 1.0));
    }

    #[test]
    fn grid_replicates_value_across_series_and_time() {
        let params = 7.5f32.to_le_bytes().to_vec();
        let grid = PmcMean.grid(&params, 3, 4).unwrap();
        assert_eq!(grid.len(), 12);
        assert!(grid.iter().all(|&v| v == 7.5));
    }

    #[test]
    fn agg_is_constant_time_arithmetic() {
        let params = 2.0f32.to_le_bytes().to_vec();
        let agg = PmcMean.agg(&params, 3, 10, (2, 5), 0).unwrap();
        assert_eq!(agg.sum, 8.0);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 2.0);
        assert!(PmcMean.agg(&params, 3, 10, (5, 2), 0).is_none());
        assert!(PmcMean.agg(&params, 3, 10, (0, 10), 0).is_none());
    }

    #[test]
    fn non_finite_values_rejected() {
        let (len, _) = fit(ErrorBound::relative(10.0), 1, &[&[f32::NAN]]);
        assert_eq!(len, 0);
    }

    proptest::proptest! {
        #[test]
        fn reconstruction_is_within_bound(
            base in -1000.0f32..1000.0,
            drift in proptest::collection::vec(-0.5f32..0.5, 1..60),
            pct in 0.5f64..20.0,
        ) {
            let bound = ErrorBound::relative(pct);
            let mut f = PmcMean.fitter(bound, 1, 100);
            let mut accepted = Vec::new();
            for (i, d) in drift.iter().enumerate() {
                let v = base + d;
                if f.append(i as i64, &[v]) {
                    accepted.push(v);
                } else {
                    break;
                }
            }
            if !accepted.is_empty() {
                let v = decode(&f.params()).unwrap();
                for orig in accepted {
                    proptest::prop_assert!(bound.within(v, orig), "{} vs {}", v, orig);
                }
            }
        }
    }
}

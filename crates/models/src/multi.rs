//! Multiple models per segment (Section 5.1): the baseline method that adds
//! group support to *any* single-series model by fitting one sub-model per
//! series and storing them together in one segment.
//!
//! The update cases of Figure 9 are implemented as follows: an append only
//! counts when **all** sub-models accept the timestamp (cases I/II). In case
//! III — some sub-models accept, a later one rejects — the segment's end time
//! is simply not incremented: the accepting sub-models keep the extra
//! constraint in their state (which only narrows what they emit; a *prefix*
//! of any model's reconstruction is still within bound), and the adapter
//! records each sub-model's own fitted length so decoding can cut the grid
//! back to the segment's length. For models whose parameter count grows with
//! the data points, e.g. Gorilla, the leftover parameters are deleted because
//! serialization happens from the fitted prefix.
//!
//! As the paper notes, this reduces duplicated metadata from `n` segments to
//! one but does not share parameters across series — Section 5.2's native
//! group models remain the interesting case, and `benches/mgc_ablation`
//! quantifies the difference.

use std::sync::Arc;

use mdb_types::{ErrorBound, Timestamp, Value};

use crate::{Fitter, ModelType, SegmentAgg};

/// Wraps a single-series model type into a group-capable one.
pub struct PerSeries {
    inner: Arc<dyn ModelType>,
    name: String,
}

impl PerSeries {
    /// A per-series adapter around `inner`.
    pub fn new(inner: Arc<dyn ModelType>) -> Self {
        let name = format!("{}/PerSeries", inner.name());
        Self { inner, name }
    }
}

impl ModelType for PerSeries {
    fn name(&self) -> &str {
        &self.name
    }

    fn fitter(&self, bound: ErrorBound, n_series: usize, length_limit: usize) -> Box<dyn Fitter> {
        let children = (0..n_series)
            .map(|_| self.inner.fitter(bound, 1, length_limit + 1))
            .collect();
        Box::new(PerSeriesFitter {
            children,
            len: 0,
            closed: false,
            length_limit,
        })
    }

    fn grid(&self, params: &[u8], n_series: usize, count: usize) -> Option<Vec<Value>> {
        let children = split_params(params, n_series)?;
        let mut per_series = Vec::with_capacity(n_series);
        for (child_count, child_params) in &children {
            if *child_count < count {
                return None;
            }
            let g = self.inner.grid(child_params, 1, *child_count)?;
            per_series.push(g);
        }
        let mut out = Vec::with_capacity(count * n_series);
        for t in 0..count {
            for series in &per_series {
                out.push(*series.get(t)?);
            }
        }
        Some(out)
    }

    fn agg(
        &self,
        params: &[u8],
        n_series: usize,
        count: usize,
        range: (usize, usize),
        series: usize,
    ) -> Option<SegmentAgg> {
        if range.1 >= count {
            return None;
        }
        let children = split_params(params, n_series)?;
        let (child_count, child_params) = children.get(series)?;
        self.inner.agg(child_params, 1, *child_count, range, 0)
    }
}

/// Parses the adapter's parameter layout: per child, varint fitted-count,
/// varint byte length, then the child's own parameters.
fn split_params(params: &[u8], n_series: usize) -> Option<Vec<(usize, Vec<u8>)>> {
    let mut slice = params;
    let mut out = Vec::with_capacity(n_series);
    for _ in 0..n_series {
        let count = mdb_encoding::varint::read_u64(&mut slice)? as usize;
        let len = mdb_encoding::varint::read_u64(&mut slice)? as usize;
        if len > slice.len() {
            return None;
        }
        let (head, rest) = slice.split_at(len);
        out.push((count, head.to_vec()));
        slice = rest;
    }
    Some(out)
}

struct PerSeriesFitter {
    children: Vec<Box<dyn Fitter>>,
    len: usize,
    closed: bool,
    length_limit: usize,
}

impl Fitter for PerSeriesFitter {
    fn append(&mut self, timestamp: Timestamp, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.children.len());
        if self.closed || self.len >= self.length_limit {
            return false;
        }
        for (child, &v) in self.children.iter_mut().zip(values) {
            if !child.append(timestamp, &[v]) {
                // Case III of Figure 9: earlier children keep the extra
                // value; the segment's end time is not incremented.
                self.closed = true;
                return false;
            }
        }
        self.len += 1;
        true
    }

    fn len(&self) -> usize {
        self.len
    }

    fn params(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for child in &self.children {
            let p = child.params();
            mdb_encoding::varint::write_u64(&mut out, child.len() as u64);
            mdb_encoding::varint::write_u64(&mut out, p.len() as u64);
            out.extend_from_slice(&p);
        }
        out
    }

    fn byte_size(&self) -> usize {
        self.children.iter().map(|c| c.byte_size() + 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gorilla::Gorilla;
    use crate::pmc::PmcMean;
    use crate::swing::Swing;

    fn adapter(inner: Arc<dyn ModelType>) -> PerSeries {
        PerSeries::new(inner)
    }

    #[test]
    fn name_reflects_inner_model() {
        assert_eq!(adapter(Arc::new(PmcMean)).name(), "PMC-Mean/PerSeries");
    }

    #[test]
    fn independent_constants_fit_where_the_group_model_cannot() {
        // Two series far apart in value: the native group PMC fails on the
        // first row, but one PMC per series fits fine — the §5.1 trade-off.
        let bound = ErrorBound::absolute(1.0);
        let rows = [[10.0f32, 500.0], [10.1, 500.2], [9.9, 499.8]];
        let mut group = PmcMean.fitter(bound, 2, 50);
        assert!(!group.append(0, &rows[0]));
        let ps = adapter(Arc::new(PmcMean));
        let mut f = ps.fitter(bound, 2, 50);
        for (t, row) in rows.iter().enumerate() {
            assert!(f.append(t as i64 * 100, row));
        }
        let grid = ps.grid(&f.params(), 2, 3).unwrap();
        for (t, row) in rows.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert!(bound.within(grid[t * 2 + s], v));
            }
        }
    }

    #[test]
    fn case_iii_truncates_end_time() {
        // Series 0 accepts the last row, series 1 rejects it: the adapter's
        // length stays put and its parameters still reconstruct the prefix.
        let bound = ErrorBound::absolute(1.0);
        let ps = adapter(Arc::new(PmcMean));
        let mut f = ps.fitter(bound, 2, 50);
        assert!(f.append(0, &[10.0, 20.0]));
        assert!(f.append(100, &[10.5, 20.5]));
        // Series 0 stays at ~10 (fits); series 1 jumps to 90 (rejected).
        assert!(!f.append(200, &[10.2, 90.0]));
        assert_eq!(f.len(), 2);
        let grid = ps.grid(&f.params(), 2, 2).unwrap();
        for (t, row) in [[10.0f32, 20.0], [10.5, 20.5]].iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert!(
                    bound.within(grid[t * 2 + s], v),
                    "{} vs {}",
                    grid[t * 2 + s],
                    v
                );
            }
        }
        // Once closed, later appends are rejected outright.
        assert!(!f.append(300, &[10.0, 20.0]));
    }

    #[test]
    fn gorilla_children_delete_leftover_parameters() {
        // Figure 9 case III for parameter-per-point models: child 0 absorbs
        // the extra value, but serialization only covers the prefix.
        let ps = adapter(Arc::new(Gorilla));
        let mut f = ps.fitter(ErrorBound::Lossless, 2, 2);
        assert!(f.append(0, &[1.0, 2.0]));
        assert!(f.append(100, &[3.0, 4.0]));
        assert!(!f.append(200, &[5.0, 6.0]));
        let grid = ps.grid(&f.params(), 2, 2).unwrap();
        assert_eq!(grid, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn swing_children_reconstruct_their_own_lines() {
        let bound = ErrorBound::relative(5.0);
        let ps = adapter(Arc::new(Swing));
        let mut f = ps.fitter(bound, 2, 50);
        let rows: Vec<[f32; 2]> = (0..20)
            .map(|t| [100.0 + t as f32, 500.0 - 2.0 * t as f32])
            .collect();
        for (t, row) in rows.iter().enumerate() {
            assert!(f.append(t as i64 * 1000, row), "failed at {t}");
        }
        let grid = ps.grid(&f.params(), 2, 20).unwrap();
        for (t, row) in rows.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                assert!(bound.within(grid[t * 2 + s], v), "t={t} s={s}");
            }
        }
    }

    #[test]
    fn agg_delegates_to_the_right_child() {
        let bound = ErrorBound::absolute(0.01);
        let ps = adapter(Arc::new(PmcMean));
        let mut f = ps.fitter(bound, 2, 50);
        for t in 0..10 {
            assert!(f.append(t * 100, &[1.0, 5.0]));
        }
        let params = f.params();
        let a0 = ps.agg(&params, 2, 10, (0, 9), 0).unwrap();
        let a1 = ps.agg(&params, 2, 10, (0, 9), 1).unwrap();
        assert!((a0.sum - 10.0).abs() < 0.2);
        assert!((a1.sum - 50.0).abs() < 0.2);
        assert!(ps.agg(&params, 2, 10, (0, 10), 0).is_none());
    }

    #[test]
    fn params_are_larger_than_native_group_models() {
        // The motivation for Section 5.2: per-series parameters do not share.
        let bound = ErrorBound::absolute(1.0);
        let rows: Vec<[f32; 4]> = (0..30).map(|_| [10.0, 10.1, 9.9, 10.05]).collect();
        let mut native = PmcMean.fitter(bound, 4, 50);
        let ps = adapter(Arc::new(PmcMean));
        let mut per_series = ps.fitter(bound, 4, 50);
        for (t, row) in rows.iter().enumerate() {
            assert!(native.append(t as i64, row));
            assert!(per_series.append(t as i64, row));
        }
        assert!(native.params().len() < per_series.params().len());
    }

    #[test]
    fn malformed_params_rejected() {
        let ps = adapter(Arc::new(PmcMean));
        assert!(ps.grid(&[1, 200], 2, 1).is_none());
        assert!(ps.grid(&[], 1, 1).is_none());
    }
}

//! The ORC-like baseline: stripes with run-length-encoded integer streams.
//!
//! ORC organizes rows into stripes; integer columns use RLE (v2), and the
//! general-purpose codec compresses the streams. Timestamps are stored as
//! deltas (constant for regular series, so the RLE collapses them), values
//! as an LZSS-compressed float stream, and dimensions as a dictionary —
//! the same architecture as the Parquet-like store with ORC's encoder mix.

use std::collections::BTreeMap;

use mdb_encoding::{dict, lzss, rle};
use mdb_types::{MdbError, Result, Tid, Timestamp, Value};

use crate::{Accum, TimeSeriesStore};

/// Rows per stripe.
const STRIPE_ROWS: usize = 5_000;

#[derive(Debug)]
struct Stripe {
    min_ts: Timestamp,
    max_ts: Timestamp,
    rows: usize,
    first_ts: Timestamp,
    /// RLE over timestamp deltas.
    ts_deltas: Vec<u8>,
    value_stream: Vec<u8>,
    dims_stream: Vec<u8>,
}

#[derive(Debug, Default)]
struct SeriesStripes {
    stripes: Vec<Stripe>,
    pending_ts: Vec<Timestamp>,
    pending_values: Vec<Value>,
    pending_dims: Vec<String>,
}

impl SeriesStripes {
    fn seal(&mut self) {
        if self.pending_ts.is_empty() {
            return;
        }
        let deltas: Vec<i64> = self.pending_ts.windows(2).map(|w| w[1] - w[0]).collect();
        let raw_values: Vec<u8> = self
            .pending_values
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let mut dims = dict::DictEncoder::new();
        for d in &self.pending_dims {
            dims.push(d);
        }
        self.stripes.push(Stripe {
            min_ts: self.pending_ts[0],
            max_ts: *self.pending_ts.last().unwrap(),
            rows: self.pending_ts.len(),
            first_ts: self.pending_ts[0],
            ts_deltas: rle::encode(&deltas),
            value_stream: lzss::compress(&raw_values),
            dims_stream: dims.finish(),
        });
        self.pending_ts.clear();
        self.pending_values.clear();
        self.pending_dims.clear();
    }

    fn for_each(
        &self,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        for stripe in &self.stripes {
            if stripe.max_ts < from || stripe.min_ts > to {
                continue;
            }
            let deltas = rle::decode(&mut stripe.ts_deltas.as_slice())
                .ok_or_else(|| MdbError::Corrupt("bad ts stream".into()))?;
            let raw = lzss::decompress(&stripe.value_stream)
                .ok_or_else(|| MdbError::Corrupt("bad value stream".into()))?;
            if raw.len() != stripe.rows * 4 || deltas.len() + 1 != stripe.rows {
                return Err(MdbError::Corrupt("stripe shape mismatch".into()));
            }
            let mut ts = stripe.first_ts;
            for i in 0..stripe.rows {
                if i > 0 {
                    ts += deltas[i - 1];
                }
                if ts >= from && ts <= to {
                    let v = Value::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
                    f(ts, v);
                }
            }
        }
        Ok(())
    }
}

/// The ORC-like store.
#[derive(Debug, Default)]
pub struct OrcLike {
    files: BTreeMap<Tid, SeriesStripes>,
}

impl OrcLike {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TimeSeriesStore for OrcLike {
    fn name(&self) -> &'static str {
        "ORC-like"
    }

    fn ingest(&mut self, tid: Tid, ts: Timestamp, value: Value, dims: &[&str]) -> Result<()> {
        let file = self.files.entry(tid).or_default();
        file.pending_ts.push(ts);
        file.pending_values.push(value);
        file.pending_dims.push(dims.join(","));
        if file.pending_ts.len() >= STRIPE_ROWS {
            file.seal();
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        for file in self.files.values_mut() {
            file.seal();
        }
        Ok(())
    }

    fn size_bytes(&self) -> u64 {
        self.files
            .values()
            .flat_map(|f| &f.stripes)
            .map(|s| (s.ts_deltas.len() + s.value_stream.len() + s.dims_stream.len() + 32) as u64)
            .sum()
    }

    fn supports_online_analytics(&self) -> bool {
        false
    }

    fn aggregate(&self, tids: Option<&[Tid]>, from: Timestamp, to: Timestamp) -> Result<Accum> {
        let mut acc = Accum::default();
        match tids {
            Some(list) => {
                for tid in list {
                    if let Some(file) = self.files.get(tid) {
                        file.for_each(from, to, &mut |_, v| acc.add(v))?;
                    }
                }
            }
            None => {
                for file in self.files.values() {
                    file.for_each(from, to, &mut |_, v| acc.add(v))?;
                }
            }
        }
        Ok(acc)
    }

    fn scan_points(
        &self,
        tid: Tid,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        if let Some(file) = self.files.get(&tid) {
            file.for_each(from, to, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        let mut store = OrcLike::new();
        conformance::run_all(&mut store);
        assert!(!store.supports_online_analytics());
    }

    #[test]
    fn regular_deltas_collapse_under_rle() {
        let mut store = OrcLike::new();
        for i in 0..5_000i64 {
            store.ingest(1, i * 60_000, 1.5, &["d"]).unwrap();
        }
        store.flush().unwrap();
        let s = &store.files[&1].stripes[0];
        assert!(
            s.ts_deltas.len() < 32,
            "RLE timestamp stream: {}",
            s.ts_deltas.len()
        );
    }

    #[test]
    fn irregular_timestamps_still_round_trip() {
        let mut store = OrcLike::new();
        let ts = [100i64, 250, 260, 9_000, 9_100, 12_345];
        for (i, &t) in ts.iter().enumerate() {
            store.ingest(2, t, i as f32, &["d"]).unwrap();
        }
        store.flush().unwrap();
        let mut got = Vec::new();
        store
            .scan_points(2, 0, i64::MAX, &mut |t, v| got.push((t, v)))
            .unwrap();
        assert_eq!(got.iter().map(|p| p.0).collect::<Vec<_>>(), ts);
        assert_eq!(got[3].1, 3.0);
    }

    #[test]
    fn stripes_seal_at_capacity() {
        let mut store = OrcLike::new();
        for i in 0..12_000i64 {
            store.ingest(1, i * 100, i as f32, &["d"]).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.files[&1].stripes.len(), 3);
    }
}

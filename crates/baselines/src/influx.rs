//! The InfluxDB-like baseline: a TSM-tree-style storage engine.
//!
//! InfluxDB v1 stores each series as compressed blocks of (timestamps,
//! values) — timestamps delta-of-delta encoded, float values XOR-compressed
//! (the Gorilla scheme InfluxDB adopted) — with the tag set (here: the
//! denormalized dimensions) stored once per series in the series index.

use std::collections::BTreeMap;

use mdb_encoding::{delta, xor};
use mdb_types::{MdbError, Result, Tid, Timestamp, Value};

use crate::{Accum, TimeSeriesStore};

/// Points per TSM block (InfluxDB caps blocks at 1000 points by default).
const BLOCK_POINTS: usize = 1000;

#[derive(Debug, Default)]
struct Block {
    min_ts: Timestamp,
    max_ts: Timestamp,
    count: usize,
    timestamps: Vec<u8>,
    values: Vec<u8>,
}

#[derive(Debug, Default)]
struct Series {
    /// The series key: measurement + tags, stored once.
    key: String,
    blocks: Vec<Block>,
    pending_ts: Vec<Timestamp>,
    pending_values: Vec<Value>,
}

impl Series {
    fn seal(&mut self) {
        if self.pending_ts.is_empty() {
            return;
        }
        let block = Block {
            min_ts: self.pending_ts[0],
            max_ts: *self.pending_ts.last().unwrap(),
            count: self.pending_ts.len(),
            timestamps: delta::encode(&self.pending_ts),
            values: xor::encode_all(&self.pending_values),
        };
        self.blocks.push(block);
        self.pending_ts.clear();
        self.pending_values.clear();
    }

    fn for_each(
        &self,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        for block in &self.blocks {
            if block.max_ts < from || block.min_ts > to {
                continue; // block-level time pruning
            }
            let ts = delta::decode(&mut block.timestamps.as_slice())
                .ok_or_else(|| MdbError::Corrupt("bad timestamp block".into()))?;
            let values = xor::decode_all(&block.values, block.count)
                .ok_or_else(|| MdbError::Corrupt("bad value block".into()))?;
            for (t, v) in ts.into_iter().zip(values) {
                if t >= from && t <= to {
                    f(t, v);
                }
            }
        }
        for (&t, &v) in self.pending_ts.iter().zip(&self.pending_values) {
            if t >= from && t <= to {
                f(t, v);
            }
        }
        Ok(())
    }
}

/// The InfluxDB-like store.
#[derive(Debug, Default)]
pub struct InfluxLike {
    series: BTreeMap<Tid, Series>,
}

impl InfluxLike {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TimeSeriesStore for InfluxLike {
    fn name(&self) -> &'static str {
        "InfluxDB-like"
    }

    fn ingest(&mut self, tid: Tid, ts: Timestamp, value: Value, dims: &[&str]) -> Result<()> {
        let series = self.series.entry(tid).or_default();
        if series.key.is_empty() {
            // Tags once per series, like the TSM series index.
            series.key = format!("measurement,tid={tid},{}", dims.join(","));
        }
        series.pending_ts.push(ts);
        series.pending_values.push(value);
        if series.pending_ts.len() >= BLOCK_POINTS {
            series.seal();
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        for series in self.series.values_mut() {
            series.seal();
        }
        Ok(())
    }

    fn size_bytes(&self) -> u64 {
        self.series
            .values()
            .map(|s| {
                let blocks: usize = s
                    .blocks
                    .iter()
                    // 8+8+4 block index entry per block.
                    .map(|b| b.timestamps.len() + b.values.len() + 20)
                    .sum();
                (s.key.len() + blocks + s.pending_ts.len() * 12) as u64
            })
            .sum()
    }

    fn supports_online_analytics(&self) -> bool {
        true
    }

    fn aggregate(&self, tids: Option<&[Tid]>, from: Timestamp, to: Timestamp) -> Result<Accum> {
        let mut acc = Accum::default();
        match tids {
            Some(list) => {
                for tid in list {
                    if let Some(series) = self.series.get(tid) {
                        series.for_each(from, to, &mut |_, v| acc.add(v))?;
                    }
                }
            }
            None => {
                for series in self.series.values() {
                    series.for_each(from, to, &mut |_, v| acc.add(v))?;
                }
            }
        }
        Ok(acc)
    }

    fn scan_points(
        &self,
        tid: Tid,
        from: Timestamp,
        to: Timestamp,
        f: &mut dyn FnMut(Timestamp, Value),
    ) -> Result<()> {
        if let Some(series) = self.series.get(&tid) {
            series.for_each(from, to, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        let mut store = InfluxLike::new();
        conformance::run_all(&mut store);
        assert_eq!(store.name(), "InfluxDB-like");
        assert!(store.supports_online_analytics());
    }

    #[test]
    fn queries_see_unsealed_points() {
        // Online analytics: points are visible before a block is sealed.
        let mut store = InfluxLike::new();
        store.ingest(1, 100, 5.0, &["a"]).unwrap();
        let acc = store.aggregate(Some(&[1]), 0, 1_000).unwrap();
        assert_eq!(acc.count, 1);
    }

    #[test]
    fn blocks_seal_at_capacity_and_prune_by_time() {
        let mut store = InfluxLike::new();
        for i in 0..2_500i64 {
            store.ingest(1, i * 100, i as f32, &["a"]).unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.series[&1].blocks.len(), 3);
        let mut seen = 0;
        store
            .scan_points(1, 0, 99_900, &mut |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 1000);
    }

    #[test]
    fn tags_are_stored_once_per_series() {
        let mut store = InfluxLike::new();
        for i in 0..100i64 {
            store
                .ingest(
                    7,
                    i * 100,
                    1.0,
                    &["WindTurbine", "entity7", "ProductionMWh"],
                )
                .unwrap();
        }
        store.flush().unwrap();
        // Size must be far below 100 × tag-length.
        let tag_len = "WindTurbine,entity7,ProductionMWh".len() as u64;
        assert!(store.size_bytes() < 100 * tag_len);
    }
}
